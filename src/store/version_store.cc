#include "store/version_store.h"

#include <utility>

#include "core/script_io.h"

namespace treediff {

VersionStore::VersionStore(Tree base, DiffOptions options)
    : base_(base.Clone()), head_(std::move(base)), options_(options) {
  full_sizes_.push_back(base_.ToDebugString().size());
}

StatusOr<int> VersionStore::Commit(const Tree& new_version) {
  if (new_version.label_table().get() != base_.label_table().get()) {
    return Status::InvalidArgument(
        "committed versions must share the store's LabelTable");
  }
  StatusOr<DiffResult> diff = DiffTrees(head_, new_version, options_);
  if (!diff.ok()) return diff.status();

  // Apply the delta to the head; the head's id space (not the snapshot's)
  // is what subsequent scripts address, so replay from the base stays
  // deterministic.
  Tree next = head_.Clone();
  TREEDIFF_RETURN_IF_ERROR(diff->script.ApplyTo(&next));
  if (!Tree::Isomorphic(next, new_version)) {
    return Status::Internal("delta replay does not reproduce the snapshot");
  }

  VersionInfo info;
  info.inserts = diff->script.num_inserts();
  info.deletes = diff->script.num_deletes();
  info.updates = diff->script.num_updates();
  info.moves = diff->script.num_moves();
  info.cost = diff->script.TotalCost();
  info.nodes = next.size();

  head_ = std::move(next);
  scripts_.push_back(std::move(diff->script));
  infos_.push_back(info);
  full_sizes_.push_back(new_version.ToDebugString().size());
  return VersionCount() - 1;
}

StatusOr<Tree> VersionStore::Materialize(int v) const {
  if (v < 0 || v >= VersionCount()) {
    return Status::OutOfRange("no such version: " + std::to_string(v));
  }
  Tree tree = base_.Clone();
  for (int i = 0; i < v; ++i) {
    TREEDIFF_RETURN_IF_ERROR(scripts_[static_cast<size_t>(i)].ApplyTo(&tree));
  }
  return tree;
}

StatusOr<int> VersionStore::RollbackHead() {
  if (scripts_.empty()) {
    return Status::FailedPrecondition("cannot roll back the base version");
  }
  // The inverse must be computed against the pre-state of the last delta,
  // which replaying the chain up to the previous version reproduces with
  // the exact node ids the head evolved from.
  StatusOr<Tree> prev = Materialize(VersionCount() - 2);
  if (!prev.ok()) return prev.status();
  StatusOr<EditScript> inverse = InvertScript(scripts_.back(), *prev);
  if (!inverse.ok()) return inverse.status();
  TREEDIFF_RETURN_IF_ERROR(inverse->ApplyTo(&head_));
  if (!Tree::Isomorphic(head_, *prev)) {
    return Status::Internal("inverse delta did not restore the head");
  }
  // The rolled-back head still carries dead id slots from the dropped
  // delta's inserts; adopt the replayed tree so the id space matches what
  // future commits' scripts will see when materialized from the base.
  head_ = std::move(*prev);
  scripts_.pop_back();
  infos_.pop_back();
  full_sizes_.pop_back();
  return VersionCount() - 1;
}

VersionStore::StorageStats VersionStore::Storage() const {
  StorageStats stats;
  const LabelTable& labels = base_.labels();
  for (const EditScript& script : scripts_) {
    stats.delta_bytes += FormatEditScript(script, labels).size();
  }
  // The base is stored in full either way; count the subsequent versions.
  for (size_t i = 1; i < full_sizes_.size(); ++i) {
    stats.full_copy_bytes += full_sizes_[i];
  }
  return stats;
}

}  // namespace treediff
