#ifndef TREEDIFF_STORE_LOG_H_
#define TREEDIFF_STORE_LOG_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "util/io.h"
#include "util/status.h"

namespace treediff {

/// The VersionStore commit log: an append-only file of length-prefixed,
/// CRC32C-checksummed records behind an 8-byte magic header. Two framing
/// formats exist; the magic selects one per file (all integers
/// little-endian):
///
/// Format 1 (pre-replication, still read and appended to in place):
///
///   "TDIFLOG1"                                   file magic, 8 bytes
///   repeated records:
///     u32  payload length                        (type byte not included)
///     u32  masked CRC32C over [type, payload]    (see Crc32cMask)
///     u8   record type                           (LogRecordType)
///     payload bytes
///
/// Format 2 (replication-aware) widens the record header with a fencing
/// epoch so a replica can reject records shipped by a deposed primary:
///
///   "TDIFLOG2"                                   file magic, 8 bytes
///   repeated records:
///     u32  payload length
///     u32  masked CRC32C over [type, epoch, payload]
///     u8   record type                           (LogRecordType)
///     u32  epoch the record was written under
///     payload bytes
///
/// A record is valid only if it is fully present and its checksum matches;
/// recovery accepts the longest prefix of valid records and truncates the
/// rest (a torn tail after a crash, or any bit flip — the CRC catches both;
/// a flipped length field reads as a torn or implausible record, which the
/// same truncation policy handles).

inline constexpr char kLogMagic[8] = {'T', 'D', 'I', 'F', 'L', 'O', 'G', '1'};
inline constexpr char kLogMagicV2[8] = {'T', 'D', 'I', 'F', 'L', 'O', 'G', '2'};
inline constexpr size_t kLogMagicSize = 8;
inline constexpr size_t kLogRecordHeaderSize = 9;  // u32 len + u32 crc + u8 type
inline constexpr size_t kLogRecordHeaderSizeV2 = 13;  // v1 header + u32 epoch

/// The two on-disk framings. kV1 files carry no epochs (every record reads
/// back as epoch 0); kV2 files stamp the writer's epoch into each record.
enum class LogFormat : uint8_t { kV1 = 1, kV2 = 2 };

/// Header size for a given framing.
inline constexpr size_t LogRecordHeaderSize(LogFormat format) {
  return format == LogFormat::kV1 ? kLogRecordHeaderSize
                                  : kLogRecordHeaderSizeV2;
}

/// Upper bound on a single record's payload; a length beyond it is treated
/// as corruption rather than an allocation request.
inline constexpr uint32_t kLogMaxRecordSize = 1u << 30;

enum class LogRecordType : uint8_t {
  kSnapshot = 1,    // codec-encoded tree: version 0 (first record only)
  kDelta = 2,       // stats header + serialized edit script: one commit
  kCheckpoint = 3,  // varint version + codec-encoded tree of that version
  kRollback = 4,    // varint of the version RollbackHead dropped
  kEpoch = 5,       // varint new epoch: fencing bump (format 2 only)
};

/// Appends records to an open log file. The writer formats and appends;
/// durability is the caller's call (Sync after each commit record is the
/// store's protocol).
class LogWriter {
 public:
  /// Takes an already positioned append-mode file; `offset` is the current
  /// file size (records land at and beyond it). `format` must match the
  /// magic already at the head of the file.
  LogWriter(std::unique_ptr<WritableFile> file, uint64_t offset,
            LogFormat format = LogFormat::kV1, uint64_t epoch = 0)
      : file_(std::move(file)),
        offset_(offset),
        format_(format),
        epoch_(epoch) {}

  /// Appends one record (header + payload). Not durable until Sync().
  /// Format-2 records are stamped with the writer's current epoch.
  Status AppendRecord(LogRecordType type, std::string_view payload);

  /// Forces appended records to stable storage.
  Status Sync() { return file_->Sync(); }

  /// Closes the underlying file.
  Status Close() { return file_->Close(); }

  /// Byte offset the next record would start at.
  uint64_t offset() const { return offset_; }

  LogFormat format() const { return format_; }

  /// Epoch stamped into subsequent format-2 records (ignored for v1).
  uint64_t epoch() const { return epoch_; }
  void set_epoch(uint64_t epoch) { epoch_ = epoch; }

 private:
  std::unique_ptr<WritableFile> file_;
  uint64_t offset_;
  LogFormat format_;
  uint64_t epoch_;
};

/// Formats one format-1 record (header + payload) in the exact wire format
/// a v1 LogWriter writes. Log rotation uses it to build a full replacement
/// log image in memory before publishing it atomically.
std::string EncodeLogRecord(LogRecordType type, std::string_view payload);

/// Formats one format-2 record with an explicit epoch stamp.
std::string EncodeLogRecordV2(LogRecordType type, std::string_view payload,
                              uint64_t epoch);

/// One record surfaced by ScanLog.
struct LogScanRecord {
  LogRecordType type;
  std::string payload;
  uint64_t offset = 0;  // File offset of the record header.

  /// Epoch stamped in the record header (always 0 in format-1 logs).
  uint64_t epoch = 0;

  /// True if this record was reached by resynchronizing past corrupt bytes
  /// (salvage mode only): the records before the gap and this one are both
  /// valid, but an unknown number of records between them are gone.
  bool resynced = false;
};

/// A damaged byte range the salvage scan skipped: [begin, end) in file
/// offsets. The bytes are unparseable; whatever records they held are lost.
struct SkippedRange {
  uint64_t begin = 0;
  uint64_t end = 0;
};

/// How ScanLog treats the first invalid record.
struct LogScanOptions {
  /// Default: stop at the first invalid record and report everything after
  /// it as garbage (the conservative crash-recovery posture — a torn tail
  /// is by far the common case and truncation is always safe for it).
  ///
  /// Salvage: skip forward byte by byte until the next verifiable record
  /// header (plausible type and length, checksum over the full payload
  /// matches) and resume there, recording the skipped range. A mid-log bit
  /// flip then costs the records inside the damaged range instead of every
  /// record after it. A 32-bit CRC plus type/length plausibility makes a
  /// false resync on garbage bytes a ~2^-32 event per candidate offset.
  bool salvage = false;
};

/// Result of scanning a log: the valid records and how the scan ended.
struct LogScanResult {
  std::vector<LogScanRecord> records;

  /// Framing the magic selected.
  LogFormat format = LogFormat::kV1;

  /// End offset of the last valid record; everything at and beyond this
  /// offset is garbage to be truncated. (Salvage gaps *before* this offset
  /// are listed in `skipped`, not covered by truncation.)
  uint64_t durable_prefix = 0;

  uint64_t file_size = 0;

  /// Invalid-record events. Without salvage the scan stops at the first,
  /// so this is 0 or 1; with salvage each skipped range counts one.
  size_t checksum_failures = 0;

  /// True if the scan ended on a partial record (torn write) or an
  /// implausible length field with no valid record after it.
  bool torn_tail = false;

  /// Damaged ranges the salvage scan stepped over (empty without salvage).
  std::vector<SkippedRange> skipped;
};

/// Scans `file` from the start: validates the magic (either format), then
/// accepts records until the first invalid one (or past it, with
/// `options.salvage`). Corrupt or torn data is reported, not an error —
/// only unreadable files and a bad magic fail. A read that returns fewer
/// bytes than Size() promised fails with kUnavailable so the caller retries
/// instead of mistaking the missing suffix for a torn tail.
StatusOr<LogScanResult> ScanLog(RandomAccessFile* file,
                                const LogScanOptions& options = {});

}  // namespace treediff

#endif  // TREEDIFF_STORE_LOG_H_
