#ifndef TREEDIFF_STORE_THREE_WAY_H_
#define TREEDIFF_STORE_THREE_WAY_H_

#include <string>
#include <vector>

#include "core/diff.h"
#include "tree/tree.h"
#include "util/status.h"

namespace treediff {

/// The configuration-management scenario of the paper's introduction: "the
/// databases are updated independently. However, periodic consistent
/// configurations of the entire design must be produced. This can be done
/// by computing the deltas with respect to the last configuration and
/// highlighting any conflicts that have arisen [HKG+94]."
///
/// ThreeWayMerge computes the two deltas (base -> ours, base -> theirs)
/// with the paper's pipeline, detects conflicting operations on the same
/// base nodes, and produces a merged tree containing both sides'
/// non-conflicting changes. On conflicts, "ours" wins in the merged tree
/// and the conflict is reported for review.

/// Why two concurrent operations clash.
enum class ConflictKind {
  kUpdateUpdate,  // Both sides updated the node to different values.
  kUpdateDelete,  // Ours updated, theirs deleted (or vice versa).
  kMoveMove,      // Both sides moved the node to different places.
  kMoveDelete,    // One side moved a subtree the other deleted (a node of).
  kDeleteEdit,    // Theirs edited inside a subtree ours deleted.
};

/// Returns "update/update", "update/delete", ...
const char* ConflictKindName(ConflictKind kind);

/// One detected conflict, anchored at a base-version node.
struct MergeConflict {
  ConflictKind kind = ConflictKind::kUpdateUpdate;
  NodeId base_node = kInvalidNode;
  std::string description;
};

/// Result of a three-way merge.
struct ThreeWayResult {
  /// Base with ours applied in full, plus theirs' non-conflicting,
  /// still-applicable operations. Note the standard three-way caveat:
  /// sibling positions of concurrent inserts/moves are best-effort (clamped
  /// into range) — concurrent edits to one child list cannot both keep
  /// their exact offsets.
  Tree merged;

  std::vector<MergeConflict> conflicts;

  /// Operations applied from each side, and theirs' operations skipped
  /// (conflicting or no longer applicable).
  size_t ops_from_ours = 0;
  size_t ops_from_theirs = 0;
  size_t skipped_theirs = 0;
};

/// Merges `ours` and `theirs`, both derived independently from `base`. All
/// three trees must share one LabelTable. `options` controls the two
/// underlying diffs.
StatusOr<ThreeWayResult> ThreeWayMerge(const Tree& base, const Tree& ours,
                                       const Tree& theirs,
                                       const DiffOptions& options = {});

}  // namespace treediff

#endif  // TREEDIFF_STORE_THREE_WAY_H_
