#ifndef TREEDIFF_STORE_CODEC_H_
#define TREEDIFF_STORE_CODEC_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>

#include "tree/tree.h"
#include "util/status.h"

namespace treediff {

/// Binary tree codec for the durable VersionStore (store/log.h): snapshot
/// and checkpoint records carry a tree encoded by EncodeTree. Unlike the
/// s-expression debug form, the encoding is *arena-exact*: node ids, dead
/// slots, and child order are preserved bit-for-bit, so a decoded snapshot
/// replays the stored edit scripts with the same deterministic ids the
/// original store produced. Integrity against disk corruption is the log's
/// job (CRC32C per record); DecodeTree still bounds-checks everything and
/// returns ParseError rather than crashing on arbitrary bytes.

// --- Little-endian fixed and varint coding helpers (shared with the log) ---

void PutFixed32(std::string* dst, uint32_t v);
void PutFixed64(std::string* dst, uint64_t v);
uint32_t DecodeFixed32(const char* p);
uint64_t DecodeFixed64(const char* p);

/// LEB128 unsigned varint.
void PutVarint64(std::string* dst, uint64_t v);

/// Consumes a varint from the front of `*input`. Returns false on
/// truncation or overlong (> 10 byte) encodings.
bool GetVarint64(std::string_view* input, uint64_t* v);

/// varint length + raw bytes.
void PutLengthPrefixed(std::string* dst, std::string_view s);
bool GetLengthPrefixed(std::string_view* input, std::string_view* out);

// --- Tree codec ---

/// Serializes `tree` (arena-exact; see above). The shared LabelTable is not
/// serialized wholesale — only the names the tree references.
std::string EncodeTree(const Tree& tree);

/// Decodes a tree produced by EncodeTree, interning its labels into
/// `labels` (fresh table when null). Validates structural invariants
/// (parent/child symmetry, single root, acyclicity) before returning; any
/// violation or malformed byte yields kParseError, never a crash or an
/// invalid tree.
StatusOr<Tree> DecodeTree(std::string_view data,
                          std::shared_ptr<LabelTable> labels = nullptr);

}  // namespace treediff

#endif  // TREEDIFF_STORE_CODEC_H_
