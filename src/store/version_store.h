#ifndef TREEDIFF_STORE_VERSION_STORE_H_
#define TREEDIFF_STORE_VERSION_STORE_H_

#include <memory>
#include <string>
#include <vector>

#include "core/diff.h"
#include "core/edit_script.h"
#include "store/log.h"
#include "tree/tree.h"
#include "util/io.h"
#include "util/metrics.h"
#include "util/mutex.h"
#include "util/retry.h"
#include "util/status.h"
#include "util/thread_annotations.h"

namespace treediff {

/// How VersionStore::Open treats corruption found *before* the log tail.
enum class RecoveryMode {
  /// Stop at the first invalid record and truncate it plus everything
  /// after — the conservative posture, and always correct for the common
  /// failure (a torn tail after a crash). Mid-log bit rot costs every
  /// version after the damage.
  kTruncate,

  /// Scan past damaged ranges (store/log.h salvage), re-anchor the version
  /// chain on the next checkpoint, and quarantine the damaged original by
  /// rotating it aside — one flipped byte costs the versions inside the
  /// damaged range, not the rest of the log. Versions lost to a gap fail
  /// Materialize with kDataLoss instead of silently vanishing.
  kSalvage,
};

/// Durability knobs for a file-backed VersionStore.
struct StoreOptions {
  /// File-system implementation; null means Env::Default() (POSIX). Tests
  /// substitute MemEnv / FaultInjectingEnv (util/fault_env.h).
  Env* env = nullptr;

  /// Append a checkpoint record (full snapshot of the head) every this many
  /// commits, bounding how many deltas recovery must replay to rebuild the
  /// head. 0 disables checkpoints (recovery replays from the base).
  /// Checkpoints are also what salvage recovery re-anchors on: a log
  /// without them can only be recovered up to its first damaged byte.
  int checkpoint_interval = 16;

  /// Recovery posture for Open (see RecoveryMode).
  RecoveryMode recovery = RecoveryMode::kTruncate;

  /// Retry budget for transient I/O faults (kUnavailable) on the append,
  /// sync, and recovery-scan paths. Permanent errors are never retried.
  RetryPolicy retry;

  /// Replaces the real backoff sleep (tests pass a no-op or recorder);
  /// null means a real clock wait.
  std::function<void(double seconds)> sleep;

  /// Optional registry mirroring the store's fault counters as
  /// `store_retries_total`, `store_rotations_total`, `store_scrubs_total`,
  /// `store_scrub_corruption_total`, `store_salvage_records_skipped_total`.
  /// Must outlive the store. Null disables the mirror.
  MetricsRegistry* metrics = nullptr;

  /// Label table Open recovers into; null means a fresh table per store.
  /// A replication group passes one shared table to every member so trees
  /// materialized from different replicas stay diff-compatible (DiffTrees
  /// requires both trees to share a LabelTable; the table itself is fully
  /// synchronized, so sharing across stores is safe).
  std::shared_ptr<LabelTable> labels;
};

/// What VersionStore::Open found and did while recovering a commit log,
/// mirroring the DiffResult::report idiom: the caller can log it, alert on
/// truncation, or assert cleanliness in tests.
struct RecoveryReport {
  uint64_t bytes_total = 0;      // Log size before recovery.
  uint64_t bytes_truncated = 0;  // Corrupt/torn tail discarded.
  size_t records_scanned = 0;    // Valid records accepted.
  size_t checksum_failures = 0;  // Corruption events (0/1 when truncating;
                                 // one per damaged range when salvaging).
  bool torn_tail = false;        // Partial record at the tail.
  size_t versions_recovered = 0;
  size_t deltas_replayed = 0;    // Scripts applied to rebuild the head.
  int checkpoint_version = -1;   // Checkpoint the head was rebuilt from.

  // Salvage-mode outcomes (all zero/empty under RecoveryMode::kTruncate).
  size_t records_skipped = 0;  // Records lost inside damaged/unusable spans.
  size_t versions_lost = 0;    // Versions no longer materializable.
  bool rotated = false;        // Log was rewritten; original quarantined.
  /// Damaged byte ranges of the *original* log that salvage stepped over
  /// (offsets refer to the quarantined file once `rotated`).
  std::vector<SkippedRange> salvage_ranges;

  /// True if the log was fully intact (nothing truncated, skipped, or
  /// corrupt).
  bool clean() const {
    return bytes_truncated == 0 && checksum_failures == 0 && !torn_tail &&
           records_skipped == 0 && versions_lost == 0 && !rotated &&
           salvage_ranges.empty();
  }

  std::string ToString() const;
};

/// Post-hoc integrity check of the cold log (VersionStore::Scrub).
struct ScrubReport {
  uint64_t bytes_verified = 0;  // Prefix re-read and CRC-checked.
  size_t records_verified = 0;
  bool corruption_found = false;
  bool repaired = false;  // A rotation rewrote the log from memory.
};

/// A delta-compressed version store for hierarchical data — the version and
/// configuration management application of the paper's introduction
/// ([HKG+94], and the C3 project of [WU95] that Section 9 points to).
///
/// The store keeps the base version in full and each subsequent version as
/// the minimum-cost edit script against its predecessor (computed with the
/// paper's pipeline). Any version can be materialized by replaying the
/// script chain; scripts address nodes by the deterministic ids the replay
/// itself produces, so materialization is exact (isomorphic to the
/// committed snapshot).
///
/// Two modes:
///  * **In-memory** (the constructor): nothing touches disk.
///  * **Durable** (Create/Open): every commit is appended to a checksummed
///    commit log (store/log.h) and fsync'd *before* the in-memory state
///    advances — write-ahead semantics, so an acknowledged commit survives
///    a crash and a failed commit leaves the store unchanged. Open recovers
///    by scanning the log, dropping any torn or corrupt tail, and
///    rebuilding the head from the latest checkpoint.
///
/// Fault handling in durable mode, from least to most severe:
///  * **Transient faults** (kUnavailable — flaky medium, interrupted
///    syscall) are retried under StoreOptions::retry with exponential
///    backoff. A failed *sync* is never naively re-issued — an fsync that
///    reported failure may have dropped its dirty pages, so a second OK
///    proves nothing. Instead the store **rotates**: it rewrites its full
///    state to a fresh log, quarantines the old file as `path + ".N"`, and
///    atomically swaps the new one into place.
///  * **Permanent faults** (disk full, unknown errors) *poison* the store:
///    mutations fail fast with kFailedPrecondition, reads still work, and
///    Repair() (or reopening) restores service by the same rotation.
///  * **Bit rot** is caught by Scrub(), which re-verifies the checksums of
///    everything already on disk and repairs by rotation, and by Open's
///    salvage mode (RecoveryMode::kSalvage), which recovers everything
///    outside the damaged ranges.
///
/// Salvage can leave *holes* in the version history: a version lost to a
/// damaged range fails Materialize with kDataLoss (and Info/DeltaFor report
/// it as absent) while every version outside the hole stays available.
/// RollbackHead cannot cross a hole.
///
/// Thread-safety: every method serializes on an internal Mutex (checked by
/// the thread-safety analysis), so concurrent Commit/Materialize/accessor
/// calls from different threads are safe. Multi-step protocols that span
/// calls — parsing a document into the store's LabelTable and then
/// committing it — still need external serialization, which DiffService
/// provides per attached store. Moving a store concurrently with any other
/// use is (as for any type) undefined.
class VersionStore {
 public:
  /// Creates an in-memory store whose version 0 is `base`.
  explicit VersionStore(Tree base, DiffOptions options = {});

  // The store owns a log writer in durable mode; it moves but does not
  // copy. Moves transfer the logical state but not the mutex (each store
  // owns its own); they are excluded from the analysis since the moved-from
  // store's lock is not held.
  VersionStore(VersionStore&& other) NO_THREAD_SAFETY_ANALYSIS;
  VersionStore& operator=(VersionStore&& other) NO_THREAD_SAFETY_ANALYSIS;
  VersionStore(const VersionStore&) = delete;
  VersionStore& operator=(const VersionStore&) = delete;

  /// Creates a durable store at `path` (a single log file) with version 0 =
  /// `base`. The file is built as `path + ".tmp"`, synced, and atomically
  /// renamed into place, so a crash mid-create leaves no half-written
  /// store at `path`. Fails if `path` already exists.
  static StatusOr<VersionStore> Create(const std::string& path, Tree base,
                                       DiffOptions options = {},
                                       StoreOptions store_options = {});

  /// Opens and recovers a durable store from `path`. The log is scanned
  /// front to back; the longest prefix of checksum-valid records wins, and
  /// a torn or corrupt tail is physically truncated so the next commit
  /// appends to a clean log. Under RecoveryMode::kSalvage, mid-log damage
  /// is skipped instead of truncated (see RecoveryMode). Recovered state
  /// always equals the state after some acknowledged commit — never a torn
  /// mix. `report`, when non-null, receives what recovery found.
  static StatusOr<VersionStore> Open(const std::string& path,
                                     DiffOptions options = {},
                                     StoreOptions store_options = {},
                                     RecoveryReport* report = nullptr);

  /// True when backed by a commit log.
  bool durable() const { return durable_; }

  /// The label table shared by the base, the head, and every materialized
  /// version. Trees passed to Commit must use this table — note that Open
  /// recovers into a *fresh* table, not the one the original snapshots were
  /// built with.
  const std::shared_ptr<LabelTable>& label_table() const {
    return base_.label_table();
  }

  /// OK unless an I/O failure has poisoned the store (durable mode only).
  Status io_status() const EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    return io_status_;
  }

  /// Commits `new_version` (same LabelTable as the base) as the next
  /// version, storing only its delta against the current head. In durable
  /// mode the delta record is appended and fsync'd before the in-memory
  /// head advances; on any failure the store is observably unchanged.
  /// Returns the new version number.
  StatusOr<int> Commit(const Tree& new_version) EXCLUDES(mu_);

  /// Number of versions in the numbering space (>= 1; version 0 is the
  /// base, VersionCount()-1 is the head). After a salvage with holes, some
  /// versions inside the range are lost — VersionAvailable tells them
  /// apart.
  int VersionCount() const EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    return VersionCountLocked();
  }

  /// True if version `v` can be materialized (in range and not lost to a
  /// salvage hole).
  bool VersionAvailable(int v) const EXCLUDES(mu_);

  /// Rebuilds version `v` (0 = base, VersionCount()-1 = head) by replaying
  /// the stored scripts. Fails with kOutOfRange outside [0, VersionCount())
  /// and kDataLoss for a version lost to a salvage hole.
  StatusOr<Tree> Materialize(int v) const EXCLUDES(mu_);

  /// Discards the newest version: the head is rolled back to the previous
  /// version by applying the inverse of the last stored delta
  /// (InvertScript), and the delta is dropped. In durable mode a rollback
  /// record is appended and fsync'd first. Returns the new head version
  /// number; fails (leaving the store unchanged) if only the base remains
  /// or the previous version lies across a salvage hole.
  StatusOr<int> RollbackHead() EXCLUDES(mu_);

  /// The stored delta that takes version v-1 to version v (1-based v), or
  /// null if `v` is out of range [1, VersionCount()-1] or either endpoint
  /// was lost to a salvage hole. The pointer stays valid until the next
  /// Commit or RollbackHead — hold the result across mutations and it
  /// dangles, so don't.
  const EditScript* DeltaFor(int v) const EXCLUDES(mu_);

  /// Aggregate per-version change counters, the "querying over changes"
  /// facility a warehouse needs.
  struct VersionInfo {
    size_t inserts = 0;
    size_t deletes = 0;
    size_t updates = 0;
    size_t moves = 0;
    double cost = 0.0;
    size_t nodes = 0;  // Size of the version after the delta.
  };

  /// Info for version `v`, or a zero VersionInfo when `v` is the base, out
  /// of range, lost to a salvage hole, or a salvage re-anchor (whose delta
  /// stats did not survive).
  VersionInfo Info(int v) const EXCLUDES(mu_);

  /// Storage accounting: serialized bytes of all stored scripts versus what
  /// storing every version in full (as s-expressions) would take — the
  /// delta-compression argument for shipping scripts.
  struct StorageStats {
    size_t delta_bytes = 0;
    size_t full_copy_bytes = 0;

    double CompressionRatio() const {
      return delta_bytes == 0
                 ? 0.0
                 : static_cast<double>(full_copy_bytes) /
                       static_cast<double>(delta_bytes);
    }
  };
  StorageStats Storage() const EXCLUDES(mu_);

  // --- Self-healing (durable mode) ---

  /// Rewrites the full in-memory state to a fresh log, quarantines the old
  /// file as `path + ".N"` (first free N), atomically swaps the new log
  /// into place, and clears the poison. This is how the store recovers
  /// from a failed fsync (whose covered bytes have unknown durability) and
  /// from scrub-detected bit rot without losing any acknowledged commit —
  /// the in-memory state *is* the acknowledged state. Fails (store stays
  /// poisoned, if it was) when the environment itself cannot complete the
  /// rewrite.
  Status Repair() EXCLUDES(mu_);

  /// Re-reads the cold log (everything appended before the scrub started)
  /// and re-verifies every checksum — the background defense against bit
  /// rot that would otherwise surface only at the next Open. On corruption
  /// the store repairs itself by rotation (see Repair). Cheap enough to
  /// run periodically; DiffService schedules it.
  StatusOr<ScrubReport> Scrub() EXCLUDES(mu_);

  /// Cumulative fault-handling activity, for tests and service metrics.
  struct FaultCounters {
    uint64_t transient_retries = 0;   // Append/sync attempts retried.
    uint64_t rotations = 0;           // Log rewrites (Repair + self-heal).
    uint64_t scrubs = 0;              // Scrub passes completed.
    uint64_t scrub_corruption = 0;    // Scrubs that found corruption.
    uint64_t salvage_skipped = 0;     // Records skipped by salvage Open.
  };
  FaultCounters fault_counters() const EXCLUDES(mu_);

  // --- Replication hooks (durable mode) ---

  /// The log path this store appends to (empty for in-memory stores).
  /// Replication tails these bytes directly.
  const std::string& log_path() const { return path_; }

  /// The environment the log lives in (null for in-memory stores).
  Env* env() const { return env_; }

  /// Framing of the live log. Freshly created stores write format 2;
  /// Open preserves whatever format it found (so pre-replication logs are
  /// not rewritten just for being opened), and any rotation upgrades the
  /// file to format 2.
  LogFormat log_format() const EXCLUDES(mu_);

  /// Byte offset one past the last appended record — the durable prefix a
  /// follower may ship up to. 0 for in-memory stores.
  uint64_t DurableOffset() const EXCLUDES(mu_);

  /// Number of log rewrites so far (Repair, self-heal, scrub repair). A
  /// follower that cached this count can detect that the primary's log was
  /// rewritten underneath its cursor and must resync from scratch.
  uint64_t rotations() const EXCLUDES(mu_);

  /// The fencing epoch stamped into every appended format-2 record. 0
  /// until the first BumpEpoch (and for format-1 logs).
  uint64_t epoch() const EXCLUDES(mu_);

  /// Durably raises the fencing epoch: appends a kEpoch record (rotating a
  /// format-1 log up to format 2 first) and stamps all subsequent records
  /// with the new value. Fails with kInvalidArgument unless `new_epoch` is
  /// strictly greater than the current epoch, and with kFailedPrecondition
  /// on in-memory or poisoned stores. Promotion is the only caller.
  Status BumpEpoch(uint64_t new_epoch) EXCLUDES(mu_);

 private:
  VersionStore() = default;  // Assembled field-by-field in Create/Open.

  /// A contiguous run of versions: `anchor` is the materialized tree of
  /// version `first`, and scripts[i] takes version first+i to first+i+1.
  /// A healthy store has exactly one segment (first = 0, anchor = base);
  /// salvage recovery adds one segment per re-anchoring checkpoint, with
  /// the versions between two segments lost to the damage.
  struct Segment {
    int first = 0;
    Tree anchor;
    std::vector<EditScript> scripts;
    std::vector<VersionInfo> infos;          // Aligned with scripts.
    std::vector<size_t> full_sizes;          // Aligned with scripts.
    size_t anchor_full_size = 0;             // Snapshot bytes of `first`.
  };

  int VersionCountLocked() const REQUIRES(mu_) {
    const Segment& last = segments_.back();
    return last.first + static_cast<int>(last.scripts.size()) + 1;
  }

  /// The segment owning version `v`, or null when `v` is out of range or
  /// lost in a gap between segments.
  const Segment* FindSegment(int v) const REQUIRES(mu_);

  /// Materialize with the lock already held (RollbackHead's replay).
  StatusOr<Tree> MaterializeLocked(int v) const REQUIRES(mu_);

  /// Appends `payload` as a `type` record and fsyncs, retrying transient
  /// faults and self-healing by rotation when the log file itself has
  /// become untrustworthy (failed sync). On permanent failure poisons the
  /// store and returns the error; the in-memory state must not have been
  /// touched yet (write-ahead ordering).
  Status AppendDurable(LogRecordType type, std::string_view payload)
      REQUIRES(mu_);

  /// One append+sync attempt, no retry or healing.
  Status AppendOnce(LogRecordType type, std::string_view payload)
      REQUIRES(mu_);

  /// Appends a checkpoint record if the interval policy says so.
  /// Best-effort: a failure poisons the store (future commits fail fast)
  /// but does not undo the already durable commit.
  void MaybeCheckpoint() REQUIRES(mu_);

  /// Serializes the in-memory state into fresh log bytes (magic, snapshot,
  /// segment-0 deltas, then per later segment a re-anchoring checkpoint
  /// and its deltas).
  std::string EncodeStateLocked() const REQUIRES(mu_);

  /// Rotation: writes EncodeStateLocked() to `path.tmp`, moves the current
  /// log aside to `path.N`, and atomically renames the new log into place.
  /// On success the store appends to the fresh log and is not poisoned.
  Status RotateLocked() REQUIRES(mu_);

  void BumpCounter(const char* name, uint64_t n) REQUIRES(mu_);

  /// Serializes every method; guards the mutable version/log state below.
  /// Immutable-after-construction members (base_, options_, env_, path_,
  /// store_options_) are read without it.
  mutable Mutex mu_;

  Tree base_;
  DiffOptions options_;

  // Materialized head, kept for diffing the next commit.
  Tree head_ GUARDED_BY(mu_);
  // Never empty: segments_[0].first == 0 and its anchor is the base.
  std::vector<Segment> segments_ GUARDED_BY(mu_);

  // Durable mode (false/null/empty in memory-only stores). The writer is
  // replaced on rotation; all access is under the lock.
  bool durable_ = false;
  std::unique_ptr<LogWriter> writer_ PT_GUARDED_BY(mu_);
  Env* env_ = nullptr;
  std::string path_;
  StoreOptions store_options_;
  Status io_status_ GUARDED_BY(mu_);
  int commits_since_checkpoint_ GUARDED_BY(mu_) = 0;
  FaultCounters faults_ GUARDED_BY(mu_);
  LogFormat log_format_ GUARDED_BY(mu_) = LogFormat::kV2;
  uint64_t epoch_ GUARDED_BY(mu_) = 0;
};

}  // namespace treediff

#endif  // TREEDIFF_STORE_VERSION_STORE_H_
