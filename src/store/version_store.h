#ifndef TREEDIFF_STORE_VERSION_STORE_H_
#define TREEDIFF_STORE_VERSION_STORE_H_

#include <string>
#include <vector>

#include "core/diff.h"
#include "core/edit_script.h"
#include "tree/tree.h"
#include "util/status.h"

namespace treediff {

/// A delta-compressed version store for hierarchical data — the version and
/// configuration management application of the paper's introduction
/// ([HKG+94], and the C3 project of [WU95] that Section 9 points to).
///
/// The store keeps the base version in full and each subsequent version as
/// the minimum-cost edit script against its predecessor (computed with the
/// paper's pipeline). Any version can be materialized by replaying the
/// script chain; scripts address nodes by the deterministic ids the replay
/// itself produces, so materialization is exact (isomorphic to the
/// committed snapshot).
class VersionStore {
 public:
  /// Creates a store whose version 0 is `base`.
  explicit VersionStore(Tree base, DiffOptions options = {});

  /// Commits `new_version` (same LabelTable as the base) as the next
  /// version, storing only its delta against the current head. Returns the
  /// new version number.
  StatusOr<int> Commit(const Tree& new_version);

  /// Number of versions stored (>= 1; version 0 is the base).
  int VersionCount() const { return static_cast<int>(scripts_.size()) + 1; }

  /// Rebuilds version `v` (0 = base, VersionCount()-1 = head) by replaying
  /// the stored scripts.
  StatusOr<Tree> Materialize(int v) const;

  /// Discards the newest version: the head is rolled back to the previous
  /// version by applying the inverse of the last stored delta
  /// (InvertScript), and the delta is dropped. Returns the new head version
  /// number; fails if only the base remains.
  StatusOr<int> RollbackHead();

  /// The stored delta that takes version v-1 to version v (1-based v).
  const EditScript& DeltaFor(int v) const {
    return scripts_[static_cast<size_t>(v - 1)];
  }

  /// Aggregate per-version change counters, the "querying over changes"
  /// facility a warehouse needs.
  struct VersionInfo {
    size_t inserts = 0;
    size_t deletes = 0;
    size_t updates = 0;
    size_t moves = 0;
    double cost = 0.0;
    size_t nodes = 0;  // Size of the version after the delta.
  };
  const VersionInfo& Info(int v) const {
    return infos_[static_cast<size_t>(v - 1)];
  }

  /// Storage accounting: serialized bytes of all stored scripts versus what
  /// storing every version in full (as s-expressions) would take — the
  /// delta-compression argument for shipping scripts.
  struct StorageStats {
    size_t delta_bytes = 0;
    size_t full_copy_bytes = 0;

    double CompressionRatio() const {
      return delta_bytes == 0
                 ? 0.0
                 : static_cast<double>(full_copy_bytes) /
                       static_cast<double>(delta_bytes);
    }
  };
  StorageStats Storage() const;

 private:
  Tree base_;
  Tree head_;  // Materialized head, kept for diffing the next commit.
  DiffOptions options_;
  std::vector<EditScript> scripts_;
  std::vector<VersionInfo> infos_;
  std::vector<size_t> full_sizes_;  // Serialized size of every version.
};

}  // namespace treediff

#endif  // TREEDIFF_STORE_VERSION_STORE_H_
