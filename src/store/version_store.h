#ifndef TREEDIFF_STORE_VERSION_STORE_H_
#define TREEDIFF_STORE_VERSION_STORE_H_

#include <memory>
#include <string>
#include <vector>

#include "core/diff.h"
#include "core/edit_script.h"
#include "store/log.h"
#include "tree/tree.h"
#include "util/io.h"
#include "util/mutex.h"
#include "util/status.h"
#include "util/thread_annotations.h"

namespace treediff {

/// Durability knobs for a file-backed VersionStore.
struct StoreOptions {
  /// File-system implementation; null means Env::Default() (POSIX). Tests
  /// substitute MemEnv / FaultInjectingEnv (util/fault_env.h).
  Env* env = nullptr;

  /// Append a checkpoint record (full snapshot of the head) every this many
  /// commits, bounding how many deltas recovery must replay to rebuild the
  /// head. 0 disables checkpoints (recovery replays from the base).
  int checkpoint_interval = 16;
};

/// What VersionStore::Open found and did while recovering a commit log,
/// mirroring the DiffResult::report idiom: the caller can log it, alert on
/// truncation, or assert cleanliness in tests.
struct RecoveryReport {
  uint64_t bytes_total = 0;      // Log size before recovery.
  uint64_t bytes_truncated = 0;  // Corrupt/torn tail discarded.
  size_t records_scanned = 0;    // Valid records accepted.
  size_t checksum_failures = 0;  // 0 or 1: scan stops at the first.
  bool torn_tail = false;        // Partial record at the tail.
  size_t versions_recovered = 0;
  size_t deltas_replayed = 0;    // Scripts applied to rebuild the head.
  int checkpoint_version = -1;   // Checkpoint the head was rebuilt from.

  /// True if the log was fully intact (nothing truncated or corrupt).
  bool clean() const {
    return bytes_truncated == 0 && checksum_failures == 0 && !torn_tail;
  }

  std::string ToString() const;
};

/// A delta-compressed version store for hierarchical data — the version and
/// configuration management application of the paper's introduction
/// ([HKG+94], and the C3 project of [WU95] that Section 9 points to).
///
/// The store keeps the base version in full and each subsequent version as
/// the minimum-cost edit script against its predecessor (computed with the
/// paper's pipeline). Any version can be materialized by replaying the
/// script chain; scripts address nodes by the deterministic ids the replay
/// itself produces, so materialization is exact (isomorphic to the
/// committed snapshot).
///
/// Two modes:
///  * **In-memory** (the constructor): nothing touches disk.
///  * **Durable** (Create/Open): every commit is appended to a checksummed
///    commit log (store/log.h) and fsync'd *before* the in-memory state
///    advances — write-ahead semantics, so an acknowledged commit survives
///    a crash and a failed commit leaves the store unchanged. Open recovers
///    by scanning the log, dropping any torn or corrupt tail, and
///    rebuilding the head from the latest checkpoint.
///
/// After any I/O failure the store is *poisoned*: mutations fail fast with
/// kFailedPrecondition (the log's tail state is unknown); reads still work.
/// Reopening the path recovers to the last durable commit.
///
/// Thread-safety: every method serializes on an internal Mutex (checked by
/// the thread-safety analysis), so concurrent Commit/Materialize/accessor
/// calls from different threads are safe. Multi-step protocols that span
/// calls — parsing a document into the store's LabelTable and then
/// committing it — still need external serialization, which DiffService
/// provides per attached store. Moving a store concurrently with any other
/// use is (as for any type) undefined.
class VersionStore {
 public:
  /// Creates an in-memory store whose version 0 is `base`.
  explicit VersionStore(Tree base, DiffOptions options = {});

  // The store owns a log writer in durable mode; it moves but does not
  // copy. Moves transfer the logical state but not the mutex (each store
  // owns its own); they are excluded from the analysis since the moved-from
  // store's lock is not held.
  VersionStore(VersionStore&& other) NO_THREAD_SAFETY_ANALYSIS;
  VersionStore& operator=(VersionStore&& other) NO_THREAD_SAFETY_ANALYSIS;
  VersionStore(const VersionStore&) = delete;
  VersionStore& operator=(const VersionStore&) = delete;

  /// Creates a durable store at `path` (a single log file) with version 0 =
  /// `base`. The file is built as `path + ".tmp"`, synced, and atomically
  /// renamed into place, so a crash mid-create leaves no half-written
  /// store at `path`. Fails if `path` already exists.
  static StatusOr<VersionStore> Create(const std::string& path, Tree base,
                                       DiffOptions options = {},
                                       StoreOptions store_options = {});

  /// Opens and recovers a durable store from `path`. The log is scanned
  /// front to back; the longest prefix of checksum-valid records wins, and
  /// a torn or corrupt tail is physically truncated so the next commit
  /// appends to a clean log. Recovered state always equals the state after
  /// some acknowledged commit — never a torn mix. `report`, when non-null,
  /// receives what recovery found.
  static StatusOr<VersionStore> Open(const std::string& path,
                                     DiffOptions options = {},
                                     StoreOptions store_options = {},
                                     RecoveryReport* report = nullptr);

  /// True when backed by a commit log.
  bool durable() const { return writer_ != nullptr; }

  /// The label table shared by the base, the head, and every materialized
  /// version. Trees passed to Commit must use this table — note that Open
  /// recovers into a *fresh* table, not the one the original snapshots were
  /// built with.
  const std::shared_ptr<LabelTable>& label_table() const {
    return base_.label_table();
  }

  /// OK unless an I/O failure has poisoned the store (durable mode only).
  Status io_status() const EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    return io_status_;
  }

  /// Commits `new_version` (same LabelTable as the base) as the next
  /// version, storing only its delta against the current head. In durable
  /// mode the delta record is appended and fsync'd before the in-memory
  /// head advances; on any failure the store is observably unchanged.
  /// Returns the new version number.
  StatusOr<int> Commit(const Tree& new_version) EXCLUDES(mu_);

  /// Number of versions stored (>= 1; version 0 is the base).
  int VersionCount() const EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    return VersionCountLocked();
  }

  /// Rebuilds version `v` (0 = base, VersionCount()-1 = head) by replaying
  /// the stored scripts.
  StatusOr<Tree> Materialize(int v) const EXCLUDES(mu_);

  /// Discards the newest version: the head is rolled back to the previous
  /// version by applying the inverse of the last stored delta
  /// (InvertScript), and the delta is dropped. In durable mode a rollback
  /// record is appended and fsync'd first. Returns the new head version
  /// number; fails (leaving the store unchanged) if only the base remains.
  StatusOr<int> RollbackHead() EXCLUDES(mu_);

  /// The stored delta that takes version v-1 to version v (1-based v), or
  /// null if `v` is out of range [1, VersionCount()-1]. The pointer stays
  /// valid until the next Commit or RollbackHead — hold the result across
  /// mutations and it dangles, so don't.
  const EditScript* DeltaFor(int v) const EXCLUDES(mu_);

  /// Aggregate per-version change counters, the "querying over changes"
  /// facility a warehouse needs.
  struct VersionInfo {
    size_t inserts = 0;
    size_t deletes = 0;
    size_t updates = 0;
    size_t moves = 0;
    double cost = 0.0;
    size_t nodes = 0;  // Size of the version after the delta.
  };
  VersionInfo Info(int v) const EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    return infos_[static_cast<size_t>(v - 1)];
  }

  /// Storage accounting: serialized bytes of all stored scripts versus what
  /// storing every version in full (as s-expressions) would take — the
  /// delta-compression argument for shipping scripts.
  struct StorageStats {
    size_t delta_bytes = 0;
    size_t full_copy_bytes = 0;

    double CompressionRatio() const {
      return delta_bytes == 0
                 ? 0.0
                 : static_cast<double>(full_copy_bytes) /
                       static_cast<double>(delta_bytes);
    }
  };
  StorageStats Storage() const EXCLUDES(mu_);

 private:
  VersionStore() = default;  // Assembled field-by-field in Create/Open.

  int VersionCountLocked() const REQUIRES(mu_) {
    return static_cast<int>(scripts_.size()) + 1;
  }

  /// Materialize with the lock already held (RollbackHead's replay).
  StatusOr<Tree> MaterializeLocked(int v) const REQUIRES(mu_);

  /// Appends `payload` as a `type` record and fsyncs. On failure poisons
  /// the store and returns the error; the in-memory state must not have
  /// been touched yet (write-ahead ordering).
  Status AppendDurable(LogRecordType type, std::string_view payload)
      REQUIRES(mu_);

  /// Appends a checkpoint record if the interval policy says so.
  /// Best-effort: a failure poisons the store (future commits fail fast)
  /// but does not undo the already durable commit.
  void MaybeCheckpoint() REQUIRES(mu_);

  /// Serializes every method; guards the mutable version/log state below.
  /// Immutable-after-construction members (base_, options_, env_, path_,
  /// store_options_) are read without it.
  mutable Mutex mu_;

  Tree base_;
  DiffOptions options_;

  // Materialized head, kept for diffing the next commit.
  Tree head_ GUARDED_BY(mu_);
  std::vector<EditScript> scripts_ GUARDED_BY(mu_);
  std::vector<VersionInfo> infos_ GUARDED_BY(mu_);
  // Serialized size of every version.
  std::vector<size_t> full_sizes_ GUARDED_BY(mu_);

  // Durable mode (null/empty in memory-only stores). The writer pointer is
  // set once during Create/Open, before the store is shared; appending
  // through it (the log's tail state) requires the lock.
  std::unique_ptr<LogWriter> writer_ PT_GUARDED_BY(mu_);
  Env* env_ = nullptr;
  std::string path_;
  StoreOptions store_options_;
  Status io_status_ GUARDED_BY(mu_);
  int commits_since_checkpoint_ GUARDED_BY(mu_) = 0;
};

}  // namespace treediff

#endif  // TREEDIFF_STORE_VERSION_STORE_H_
