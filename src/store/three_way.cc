#include "store/three_way.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

namespace treediff {

const char* ConflictKindName(ConflictKind kind) {
  switch (kind) {
    case ConflictKind::kUpdateUpdate:
      return "update/update";
    case ConflictKind::kUpdateDelete:
      return "update/delete";
    case ConflictKind::kMoveMove:
      return "move/move";
    case ConflictKind::kMoveDelete:
      return "move/delete";
    case ConflictKind::kDeleteEdit:
      return "delete/edit";
  }
  return "?";
}

namespace {

/// The operations one side performs on ORIGINAL base nodes (ids below the
/// base id bound; a side's own inserts live beyond it).
struct SideOps {
  std::unordered_map<NodeId, std::string> updates;  // node -> new value.
  std::unordered_set<NodeId> deletes;
  std::unordered_map<NodeId, NodeId> move_parents;  // node -> dest parent.

  explicit SideOps(const EditScript& script, size_t base_bound) {
    for (const EditOp& op : script.ops()) {
      if (op.node < 0 || static_cast<size_t>(op.node) >= base_bound) continue;
      switch (op.kind) {
        case EditOpKind::kUpdate:
          updates[op.node] = op.value;
          break;
        case EditOpKind::kDelete:
          deletes.insert(op.node);
          break;
        case EditOpKind::kMove:
          move_parents[op.node] = op.parent;  // Last move wins.
          break;
        case EditOpKind::kInsert:
          break;
      }
    }
  }
};

}  // namespace

StatusOr<ThreeWayResult> ThreeWayMerge(const Tree& base, const Tree& ours,
                                       const Tree& theirs,
                                       const DiffOptions& options) {
  if (base.label_table().get() != ours.label_table().get() ||
      base.label_table().get() != theirs.label_table().get()) {
    return Status::InvalidArgument(
        "all three trees must share one LabelTable");
  }
  StatusOr<DiffResult> to_ours = DiffTrees(base, ours, options);
  if (!to_ours.ok()) return to_ours.status();
  StatusOr<DiffResult> to_theirs = DiffTrees(base, theirs, options);
  if (!to_theirs.ok()) return to_theirs.status();

  const size_t base_bound = base.id_bound();
  SideOps mine(to_ours->script, base_bound);
  SideOps other(to_theirs->script, base_bound);

  ThreeWayResult result{base.Clone(), {}, 0, 0, 0};

  // ----- Conflict detection on base nodes (ours wins; theirs skipped). ---
  std::unordered_set<NodeId> skip_theirs;  // Base nodes whose theirs-op skips.
  auto conflict = [&](ConflictKind kind, NodeId node, std::string what) {
    result.conflicts.push_back({kind, node, std::move(what)});
    skip_theirs.insert(node);
  };

  for (const auto& [node, value] : other.updates) {
    auto ours_it = mine.updates.find(node);
    if (ours_it != mine.updates.end()) {
      if (ours_it->second == value) {
        skip_theirs.insert(node);  // Convergent edit: dedupe silently.
      } else {
        conflict(ConflictKind::kUpdateUpdate, node,
                 "both sides updated \"" + base.value(node) +
                     "\" to different values");
      }
    } else if (mine.deletes.count(node) > 0) {
      conflict(ConflictKind::kUpdateDelete, node,
               "theirs updated a node ours deleted");
    }
  }
  for (NodeId node : other.deletes) {
    if (mine.updates.count(node) > 0) {
      conflict(ConflictKind::kUpdateDelete, node,
               "theirs deleted a node ours updated");
    } else if (mine.move_parents.count(node) > 0) {
      conflict(ConflictKind::kMoveDelete, node,
               "theirs deleted a node ours moved");
    }
  }
  for (const auto& [node, dest] : other.move_parents) {
    auto ours_it = mine.move_parents.find(node);
    if (ours_it != mine.move_parents.end()) {
      if (ours_it->second == dest) {
        skip_theirs.insert(node);  // Convergent move: keep ours' position.
      } else {
        conflict(ConflictKind::kMoveMove, node,
                 "both sides moved the same subtree to different parents");
      }
    } else if (mine.deletes.count(node) > 0) {
      conflict(ConflictKind::kMoveDelete, node,
               "theirs moved a node ours deleted");
    }
  }

  // ----- Apply ours in full. -----
  TREEDIFF_RETURN_IF_ERROR(to_ours->script.ApplyTo(&result.merged));
  result.ops_from_ours = to_ours->script.size();

  // ----- Apply theirs' surviving operations. -----
  // Theirs' inserted nodes carry ids from its own working space; remap them
  // to the ids the merged tree allocates.
  std::unordered_map<NodeId, NodeId> remap;
  auto resolve = [&](NodeId id) -> NodeId {
    if (id >= 0 && static_cast<size_t>(id) < base_bound) return id;
    auto it = remap.find(id);
    return it == remap.end() ? kInvalidNode : it->second;
  };
  auto record_skip = [&](ConflictKind kind, NodeId node, std::string what) {
    // Deduplicate per (kind, node): subtree-wide skips touch many ops.
    for (const MergeConflict& c : result.conflicts) {
      if (c.kind == kind && c.base_node == node) {
        ++result.skipped_theirs;
        return;
      }
    }
    result.conflicts.push_back({kind, node, std::move(what)});
    ++result.skipped_theirs;
  };

  Tree& merged = result.merged;
  for (const EditOp& op : to_theirs->script.ops()) {
    const NodeId node = resolve(op.node);
    switch (op.kind) {
      case EditOpKind::kInsert: {
        const NodeId parent = resolve(op.parent);
        if (parent == kInvalidNode || !merged.Alive(parent)) {
          record_skip(ConflictKind::kDeleteEdit, op.parent,
                      "theirs inserted under a node ours deleted");
          break;
        }
        // Convergent-insert dedupe: if ours already inserted an identical
        // leaf (same label and value, non-base id) under this parent, map
        // theirs' node onto it instead of duplicating.
        NodeId convergent = kInvalidNode;
        for (NodeId c : merged.children(parent)) {
          if (static_cast<size_t>(c) >= base_bound && merged.IsLeaf(c) &&
              merged.label(c) == op.label && merged.value(c) == op.value) {
            convergent = c;
            break;
          }
        }
        if (convergent != kInvalidNode) {
          remap[op.node] = convergent;
          ++result.skipped_theirs;
          break;
        }
        const int max_k =
            static_cast<int>(merged.children(parent).size()) + 1;
        StatusOr<NodeId> id = merged.InsertLeaf(
            op.label, op.value, parent, std::min(op.position, max_k));
        if (!id.ok()) return id.status();
        remap[op.node] = *id;
        ++result.ops_from_theirs;
        break;
      }
      case EditOpKind::kUpdate: {
        if (node == kInvalidNode || skip_theirs.count(node) > 0 ||
            !merged.Alive(node)) {
          ++result.skipped_theirs;
          break;
        }
        TREEDIFF_RETURN_IF_ERROR(merged.UpdateValue(node, op.value));
        ++result.ops_from_theirs;
        break;
      }
      case EditOpKind::kDelete: {
        if (node == kInvalidNode || skip_theirs.count(node) > 0 ||
            !merged.Alive(node)) {
          ++result.skipped_theirs;  // Already gone or conflicted.
          break;
        }
        if (!merged.IsLeaf(node)) {
          record_skip(ConflictKind::kDeleteEdit, node,
                      "theirs deleted a node that still has children after "
                      "ours' changes");
          break;
        }
        TREEDIFF_RETURN_IF_ERROR(merged.DeleteLeaf(node));
        ++result.ops_from_theirs;
        break;
      }
      case EditOpKind::kMove: {
        const NodeId parent = resolve(op.parent);
        if (node == kInvalidNode || skip_theirs.count(node) > 0 ||
            !merged.Alive(node)) {
          ++result.skipped_theirs;
          break;
        }
        if (parent == kInvalidNode || !merged.Alive(parent)) {
          record_skip(ConflictKind::kMoveDelete, op.node,
                      "theirs moved a node into a place ours removed");
          break;
        }
        if (merged.IsAncestorOrSelf(node, parent)) {
          record_skip(ConflictKind::kMoveMove, op.node,
                      "concurrent moves made theirs' move cyclic");
          break;
        }
        const bool same_parent = merged.parent(node) == parent;
        const int max_k = static_cast<int>(merged.children(parent).size()) +
                          (same_parent ? 0 : 1);
        TREEDIFF_RETURN_IF_ERROR(merged.MoveSubtree(
            node, parent, std::max(1, std::min(op.position, max_k))));
        ++result.ops_from_theirs;
        break;
      }
    }
  }

  TREEDIFF_RETURN_IF_ERROR(merged.Validate());
  return result;
}

}  // namespace treediff
