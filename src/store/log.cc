#include "store/log.h"

#include <cstring>

#include "store/codec.h"
#include "util/crc32c.h"

namespace treediff {

Status LogWriter::AppendRecord(LogRecordType type, std::string_view payload) {
  if (payload.size() > kLogMaxRecordSize) {
    return Status::InvalidArgument("log record exceeds the 1 GiB cap");
  }
  std::string header;
  header.reserve(kLogRecordHeaderSize);
  PutFixed32(&header, static_cast<uint32_t>(payload.size()));
  uint32_t crc = Crc32cExtend(0, &type, 1);
  crc = Crc32cExtend(crc, payload.data(), payload.size());
  PutFixed32(&header, Crc32cMask(crc));
  header.push_back(static_cast<char>(type));
  // One Append per buffer: the header+payload boundary is a fault point the
  // recovery test exercises, so keep the write pattern simple and ordered.
  TREEDIFF_RETURN_IF_ERROR(file_->Append(header));
  TREEDIFF_RETURN_IF_ERROR(file_->Append(payload));
  offset_ += header.size() + payload.size();
  return Status::Ok();
}

StatusOr<LogScanResult> ScanLog(RandomAccessFile* file) {
  StatusOr<uint64_t> size = file->Size();
  if (!size.ok()) return size.status();

  LogScanResult result;
  result.file_size = *size;

  StatusOr<std::string> magic = file->Read(0, kLogMagicSize);
  if (!magic.ok()) return magic.status();
  if (magic->size() < kLogMagicSize ||
      std::memcmp(magic->data(), kLogMagic, kLogMagicSize) != 0) {
    return Status::ParseError("not a treediff commit log (bad magic)");
  }

  // One sequential read of the whole file; logs are checkpoint-bounded and
  // recovery reads each byte exactly once.
  StatusOr<std::string> data =
      file->Read(kLogMagicSize, static_cast<size_t>(*size - kLogMagicSize));
  if (!data.ok()) return data.status();

  uint64_t pos = 0;
  result.durable_prefix = kLogMagicSize;
  while (pos + kLogRecordHeaderSize <= data->size()) {
    uint32_t len = DecodeFixed32(data->data() + pos);
    uint32_t stored_crc = DecodeFixed32(data->data() + pos + 4);
    uint8_t type = static_cast<uint8_t>((*data)[pos + 8]);
    if (len > kLogMaxRecordSize) {
      // A corrupt length field is indistinguishable from a torn tail.
      result.torn_tail = true;
      break;
    }
    if (pos + kLogRecordHeaderSize + len > data->size()) {
      result.torn_tail = true;
      break;
    }
    const char* body = data->data() + pos + kLogRecordHeaderSize;
    uint32_t crc = Crc32cExtend(0, &type, 1);
    crc = Crc32cExtend(crc, body, len);
    if (Crc32cMask(crc) != stored_crc) {
      result.checksum_failures = 1;
      break;
    }
    LogScanRecord record;
    record.type = static_cast<LogRecordType>(type);
    record.payload.assign(body, len);
    record.offset = kLogMagicSize + pos;
    result.records.push_back(std::move(record));
    pos += kLogRecordHeaderSize + len;
    result.durable_prefix = kLogMagicSize + pos;
  }
  if (result.checksum_failures == 0 && !result.torn_tail &&
      result.durable_prefix < result.file_size) {
    // A few trailing header bytes that never formed a full header.
    result.torn_tail = true;
  }
  return result;
}

}  // namespace treediff
