#include "store/log.h"

#include <algorithm>
#include <cstring>

#include "store/codec.h"
#include "util/crc32c.h"

namespace treediff {

namespace {

// Epochs travel as fixed32 in the record header: a replication group that
// fails over 4 billion times has other problems, and a fixed-width field
// keeps the header scannable without varint decoding in the resync loop.
void PutEpoch(std::string* out, uint64_t epoch) {
  PutFixed32(out, static_cast<uint32_t>(epoch));
}

uint32_t RecordCrc(LogFormat format, LogRecordType type, uint64_t epoch,
                   std::string_view payload) {
  uint8_t type_byte = static_cast<uint8_t>(type);
  uint32_t crc = Crc32cExtend(0, &type_byte, 1);
  if (format == LogFormat::kV2) {
    std::string epoch_bytes;
    PutEpoch(&epoch_bytes, epoch);
    crc = Crc32cExtend(crc, epoch_bytes.data(), epoch_bytes.size());
  }
  return Crc32cExtend(crc, payload.data(), payload.size());
}

std::string EncodeRecord(LogFormat format, LogRecordType type,
                         std::string_view payload, uint64_t epoch) {
  std::string out;
  out.reserve(LogRecordHeaderSize(format) + payload.size());
  PutFixed32(&out, static_cast<uint32_t>(payload.size()));
  PutFixed32(&out, Crc32cMask(RecordCrc(format, type, epoch, payload)));
  out.push_back(static_cast<char>(type));
  if (format == LogFormat::kV2) PutEpoch(&out, epoch);
  out.append(payload);
  return out;
}

}  // namespace

Status LogWriter::AppendRecord(LogRecordType type, std::string_view payload) {
  if (payload.size() > kLogMaxRecordSize) {
    return Status::InvalidArgument("log record exceeds the 1 GiB cap");
  }
  std::string header;
  header.reserve(LogRecordHeaderSize(format_));
  PutFixed32(&header, static_cast<uint32_t>(payload.size()));
  PutFixed32(&header, Crc32cMask(RecordCrc(format_, type, epoch_, payload)));
  header.push_back(static_cast<char>(type));
  if (format_ == LogFormat::kV2) PutEpoch(&header, epoch_);
  // One Append per buffer: the header+payload boundary is a fault point the
  // recovery test exercises, so keep the write pattern simple and ordered.
  TREEDIFF_RETURN_IF_ERROR(file_->Append(header));
  TREEDIFF_RETURN_IF_ERROR(file_->Append(payload));
  offset_ += header.size() + payload.size();
  return Status::Ok();
}

namespace {

// True if the bytes at data[pos..] form a complete, checksum-valid record
// in the given framing. Used both for the normal forward scan and as the
// resync predicate when salvaging past corruption.
bool ValidRecordAt(const std::string& data, uint64_t pos, LogFormat format) {
  const size_t header_size = LogRecordHeaderSize(format);
  if (pos + header_size > data.size()) return false;
  uint32_t len = DecodeFixed32(data.data() + pos);
  uint32_t stored_crc = DecodeFixed32(data.data() + pos + 4);
  uint8_t type = static_cast<uint8_t>(data[pos + 8]);
  if (len > kLogMaxRecordSize) return false;
  const uint8_t max_type = format == LogFormat::kV1
                               ? static_cast<uint8_t>(LogRecordType::kRollback)
                               : static_cast<uint8_t>(LogRecordType::kEpoch);
  if (type < static_cast<uint8_t>(LogRecordType::kSnapshot) ||
      type > max_type) {
    return false;
  }
  if (pos + header_size + len > data.size()) return false;
  uint32_t crc = Crc32cExtend(0, &type, 1);
  // In format 2 the epoch bytes sit between the type byte and the payload
  // and are covered by the checksum, so a flipped epoch is caught exactly
  // like a flipped payload byte.
  crc = Crc32cExtend(crc, data.data() + pos + kLogRecordHeaderSize,
                     header_size - kLogRecordHeaderSize + len);
  return Crc32cMask(crc) == stored_crc;
}

}  // namespace

std::string EncodeLogRecord(LogRecordType type, std::string_view payload) {
  return EncodeRecord(LogFormat::kV1, type, payload, 0);
}

std::string EncodeLogRecordV2(LogRecordType type, std::string_view payload,
                              uint64_t epoch) {
  return EncodeRecord(LogFormat::kV2, type, payload, epoch);
}

StatusOr<LogScanResult> ScanLog(RandomAccessFile* file,
                                const LogScanOptions& options) {
  StatusOr<uint64_t> size = file->Size();
  if (!size.ok()) return size.status();

  LogScanResult result;
  result.file_size = *size;

  const size_t magic_want =
      static_cast<size_t>(std::min<uint64_t>(*size, kLogMagicSize));
  StatusOr<std::string> magic = file->Read(0, kLogMagicSize);
  if (!magic.ok()) return magic.status();
  if (magic->size() < magic_want) {
    // Size() promised more bytes than Read delivered: a transient short
    // read, not a short file. Truncating on it would destroy good data.
    return Status::Unavailable("short read of log magic; retry the scan");
  }
  if (magic->size() < kLogMagicSize) {
    return Status::ParseError("not a treediff commit log (bad magic)");
  }
  if (std::memcmp(magic->data(), kLogMagic, kLogMagicSize) == 0) {
    result.format = LogFormat::kV1;
  } else if (std::memcmp(magic->data(), kLogMagicV2, kLogMagicSize) == 0) {
    result.format = LogFormat::kV2;
  } else {
    return Status::ParseError("not a treediff commit log (bad magic)");
  }
  const LogFormat format = result.format;
  const size_t header_size = LogRecordHeaderSize(format);

  // One sequential read of the whole file; logs are checkpoint-bounded and
  // recovery reads each byte exactly once.
  StatusOr<std::string> data =
      file->Read(kLogMagicSize, static_cast<size_t>(*size - kLogMagicSize));
  if (!data.ok()) return data.status();
  if (data->size() < static_cast<size_t>(*size - kLogMagicSize)) {
    return Status::Unavailable("short read of log body; retry the scan");
  }

  uint64_t pos = 0;
  bool resynced_next = false;
  bool stopped_early = false;
  result.durable_prefix = kLogMagicSize;
  while (pos + header_size <= data->size()) {
    if (!ValidRecordAt(*data, pos, format)) {
      // Classify the way the conservative policy reports it: a partial
      // record or implausible length reads as a torn tail; a complete
      // record whose checksum does not match is a corruption event.
      uint32_t len = DecodeFixed32(data->data() + pos);
      const bool is_torn =
          len > kLogMaxRecordSize || pos + header_size + len > data->size();
      if (!options.salvage) {
        if (is_torn) {
          result.torn_tail = true;
        } else {
          result.checksum_failures = 1;
        }
        stopped_early = true;
        break;
      }
      // Salvage: slide forward one byte at a time until something checks
      // out as a whole record again. Linear in the damaged span, and each
      // candidate is fully CRC-verified before being trusted.
      uint64_t next = pos + 1;
      while (next + header_size <= data->size() &&
             !ValidRecordAt(*data, next, format)) {
        ++next;
      }
      if (next + header_size > data->size()) {
        // Damage runs to end of file: tail damage after all, disposed of
        // by truncation rather than a salvage gap.
        if (is_torn) {
          result.torn_tail = true;
        } else {
          ++result.checksum_failures;
        }
        stopped_early = true;
        break;
      }
      ++result.checksum_failures;
      result.skipped.push_back({kLogMagicSize + pos, kLogMagicSize + next});
      pos = next;
      resynced_next = true;
      continue;
    }
    uint32_t len = DecodeFixed32(data->data() + pos);
    LogScanRecord record;
    record.type = static_cast<LogRecordType>((*data)[pos + 8]);
    if (format == LogFormat::kV2) {
      record.epoch = DecodeFixed32(data->data() + pos + kLogRecordHeaderSize);
    }
    record.payload.assign(data->data() + pos + header_size, len);
    record.offset = kLogMagicSize + pos;
    record.resynced = resynced_next;
    resynced_next = false;
    result.records.push_back(std::move(record));
    pos += header_size + len;
    result.durable_prefix = kLogMagicSize + pos;
  }
  if (!stopped_early && !result.torn_tail &&
      result.durable_prefix < result.file_size) {
    // A few trailing header bytes that never formed a full header.
    result.torn_tail = true;
  }
  return result;
}

}  // namespace treediff
