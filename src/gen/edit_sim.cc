#include "gen/edit_sim.h"

#include <algorithm>
#include <cassert>
#include <string>
#include <vector>

#include "gen/doc_gen.h"
#include "tree/schema.h"
#include "util/tokenize.h"

namespace treediff {

namespace {

/// One simulated editing session over a working copy.
class Simulator {
 public:
  Simulator(Tree* work, const EditMix& mix, const Vocabulary& vocab, Rng* rng,
            SimulatedVersion* out)
      : work_(work), mix_(mix), vocab_(vocab), rng_(rng), out_(out) {
    sentence_ = work_->label_table()->Intern(doc_labels::kSentence);
    paragraph_ = work_->label_table()->Intern(doc_labels::kParagraph);
    section_ = work_->label_table()->Intern(doc_labels::kSection);
  }

  void Run(int num_edits) {
    for (int i = 0; i < num_edits; ++i) {
      // Try edit kinds until one finds an eligible target; give up on this
      // edit after a few attempts (tiny documents).
      bool applied = false;
      for (int attempt = 0; attempt < 16 && !applied; ++attempt) {
        applied = ApplyOne(PickKind());
      }
    }
  }

 private:
  enum class Kind {
    kUpdateSentence,
    kInsertSentence,
    kDeleteSentence,
    kMoveSentence,
    kMoveParagraph,
    kInsertParagraph,
    kDeleteParagraph,
    kMoveSection,
  };

  Kind PickKind() {
    const double weights[] = {
        mix_.update_sentence, mix_.insert_sentence,  mix_.delete_sentence,
        mix_.move_sentence,   mix_.move_paragraph,   mix_.insert_paragraph,
        mix_.delete_paragraph, mix_.move_section};
    double total = 0.0;
    for (double w : weights) total += w;
    double draw = rng_->NextDouble() * total;
    for (int k = 0; k < 8; ++k) {
      draw -= weights[k];
      if (draw <= 0.0) return static_cast<Kind>(k);
    }
    return Kind::kUpdateSentence;
  }

  std::vector<NodeId> Collect(LabelId label) const {
    std::vector<NodeId> nodes;
    for (NodeId x : work_->PreOrder()) {
      if (work_->label(x) == label) nodes.push_back(x);
    }
    return nodes;
  }

  NodeId PickFrom(const std::vector<NodeId>& nodes) {
    return nodes[static_cast<size_t>(rng_->Uniform(nodes.size()))];
  }

  bool ApplyOne(Kind kind) {
    switch (kind) {
      case Kind::kUpdateSentence:
        return UpdateSentence();
      case Kind::kInsertSentence:
        return InsertSentence();
      case Kind::kDeleteSentence:
        return DeleteSentence();
      case Kind::kMoveSentence:
        return MoveSentence();
      case Kind::kMoveParagraph:
        return MoveParagraph();
      case Kind::kInsertParagraph:
        return InsertParagraph();
      case Kind::kDeleteParagraph:
        return DeleteParagraph();
      case Kind::kMoveSection:
        return MoveSection();
    }
    return false;
  }

  bool UpdateSentence() {
    std::vector<NodeId> sentences = Collect(sentence_);
    if (sentences.empty()) return false;
    const NodeId s = PickFrom(sentences);
    std::vector<std::string> words = SplitWords(work_->value(s));
    if (words.empty()) return false;
    bool changed = false;
    for (auto& w : words) {
      if (rng_->Bernoulli(mix_.update_word_churn)) {
        w = vocab_.SampleWord(rng_);
        changed = true;
      }
    }
    if (!changed) words[static_cast<size_t>(
        rng_->Uniform(words.size()))] = vocab_.SampleWord(rng_);
    TREEDIFF_CHECK_OK(work_->UpdateValue(s, JoinStrings(words, " ")));
    out_->intended_ops += 1;  // Updates weigh 0 in e.
    ++out_->sentence_updates;
    return true;
  }

  bool InsertSentence() {
    std::vector<NodeId> paragraphs = Collect(paragraph_);
    if (paragraphs.empty()) return false;
    const NodeId p = PickFrom(paragraphs);
    const int k = static_cast<int>(rng_->UniformInRange(
        1, static_cast<int64_t>(work_->children(p).size()) + 1));
    StatusOr<NodeId> id =
        work_->InsertLeaf(sentence_, vocab_.MakeSentence(rng_, 6, 18), p, k);
    assert(id.ok());
    (void)id;
    out_->intended_ops += 1;
    out_->intended_weighted += 1;
    ++out_->sentence_inserts;
    return true;
  }

  bool DeleteSentence() {
    // Only from paragraphs that keep at least one sentence, so paragraphs
    // never become structural leaves.
    std::vector<NodeId> candidates;
    for (NodeId s : Collect(sentence_)) {
      if (work_->children(work_->parent(s)).size() >= 2) {
        candidates.push_back(s);
      }
    }
    if (candidates.empty()) return false;
    TREEDIFF_CHECK_OK(work_->DeleteLeaf(PickFrom(candidates)));
    out_->intended_ops += 1;
    out_->intended_weighted += 1;
    ++out_->sentence_deletes;
    return true;
  }

  bool MoveSentence() {
    std::vector<NodeId> sentences = Collect(sentence_);
    std::vector<NodeId> paragraphs = Collect(paragraph_);
    if (sentences.empty() || paragraphs.size() < 2) return false;
    // Keep the source paragraph non-empty.
    std::vector<NodeId> movable;
    for (NodeId s : sentences) {
      if (work_->children(work_->parent(s)).size() >= 2) movable.push_back(s);
    }
    if (movable.empty()) return false;
    const NodeId s = PickFrom(movable);
    NodeId target = PickFrom(paragraphs);
    for (int tries = 0; target == work_->parent(s) && tries < 8; ++tries) {
      target = PickFrom(paragraphs);
    }
    const int k = static_cast<int>(rng_->UniformInRange(
        1, static_cast<int64_t>(work_->children(target).size()) +
               (target == work_->parent(s) ? 0 : 1)));
    TREEDIFF_CHECK_OK(work_->MoveSubtree(s, target, std::max(1, k)));
    out_->intended_ops += 1;
    out_->intended_weighted += 1;  // A sentence subtree has one leaf.
    ++out_->sentence_moves;
    return true;
  }

  bool MoveParagraph() {
    std::vector<NodeId> paragraphs;
    // Only paragraphs directly under sections (not inside items), and only
    // from sections that keep at least one paragraph.
    for (NodeId p : Collect(paragraph_)) {
      const NodeId parent = work_->parent(p);
      if (work_->label(parent) == section_ &&
          work_->children(parent).size() >= 2) {
        paragraphs.push_back(p);
      }
    }
    std::vector<NodeId> sections = Collect(section_);
    if (paragraphs.empty() || sections.empty()) return false;
    const NodeId p = PickFrom(paragraphs);
    const NodeId target = PickFrom(sections);
    const bool same_parent = target == work_->parent(p);
    const int limit = static_cast<int>(work_->children(target).size()) +
                      (same_parent ? 0 : 1);
    if (limit < 1) return false;
    const int k = static_cast<int>(rng_->UniformInRange(1, limit));
    const size_t leaves = work_->LeafCounts()[static_cast<size_t>(p)] > 0
                              ? static_cast<size_t>(
                                    work_->LeafCounts()[static_cast<size_t>(p)])
                              : 1;
    TREEDIFF_CHECK_OK(work_->MoveSubtree(p, target, k));
    out_->intended_ops += 1;
    out_->intended_weighted += leaves;
    ++out_->paragraph_moves;
    return true;
  }

  bool InsertParagraph() {
    std::vector<NodeId> sections = Collect(section_);
    if (sections.empty()) return false;
    const NodeId sec = PickFrom(sections);
    const int k = static_cast<int>(rng_->UniformInRange(
        1, static_cast<int64_t>(work_->children(sec).size()) + 1));
    StatusOr<NodeId> para = work_->InsertLeaf(paragraph_, "", sec, k);
    assert(para.ok());
    const int sentences = static_cast<int>(rng_->UniformInRange(2, 5));
    for (int i = 0; i < sentences; ++i) {
      StatusOr<NodeId> id = work_->InsertLeaf(
          sentence_, vocab_.MakeSentence(rng_, 6, 18), *para, i + 1);
      assert(id.ok());
      (void)id;
    }
    out_->intended_ops += static_cast<size_t>(sentences) + 1;
    out_->intended_weighted += static_cast<size_t>(sentences) + 1;
    ++out_->paragraph_inserts;
    return true;
  }

  bool DeleteParagraph() {
    std::vector<NodeId> candidates;
    for (NodeId p : Collect(paragraph_)) {
      const NodeId parent = work_->parent(p);
      if (work_->label(parent) == section_ &&
          work_->children(parent).size() >= 2) {
        candidates.push_back(p);
      }
    }
    if (candidates.empty()) return false;
    const NodeId p = PickFrom(candidates);
    // Delete bottom-up (the paper's leaf-only delete).
    std::vector<NodeId> doomed;
    std::vector<NodeId> stack = {p};
    while (!stack.empty()) {
      NodeId x = stack.back();
      stack.pop_back();
      doomed.push_back(x);
      for (NodeId c : work_->children(x)) stack.push_back(c);
    }
    for (auto it = doomed.rbegin(); it != doomed.rend(); ++it) {
      TREEDIFF_CHECK_OK(work_->DeleteLeaf(*it));
    }
    out_->intended_ops += doomed.size();
    out_->intended_weighted += doomed.size();
    ++out_->paragraph_deletes;
    return true;
  }

  bool MoveSection() {
    std::vector<NodeId> sections = Collect(section_);
    if (sections.size() < 2) return false;
    const NodeId sec = PickFrom(sections);
    const NodeId doc = work_->parent(sec);
    const int limit = static_cast<int>(work_->children(doc).size()) - 1;
    if (limit < 1) return false;
    const int k = static_cast<int>(rng_->UniformInRange(1, limit + 1));
    const int leaves = work_->LeafCounts()[static_cast<size_t>(sec)];
    TREEDIFF_CHECK_OK(work_->MoveSubtree(sec, doc, k));
    out_->intended_ops += 1;
    out_->intended_weighted += static_cast<size_t>(std::max(1, leaves));
    ++out_->section_moves;
    return true;
  }

  Tree* work_;
  const EditMix& mix_;
  const Vocabulary& vocab_;
  Rng* rng_;
  SimulatedVersion* out_;
  LabelId sentence_ = kInvalidLabel;
  LabelId paragraph_ = kInvalidLabel;
  LabelId section_ = kInvalidLabel;
};

}  // namespace

SimulatedVersion SimulateNewVersion(const Tree& old_tree, int num_edits,
                                    const EditMix& mix,
                                    const Vocabulary& vocab, Rng* rng) {
  SimulatedVersion out;
  Tree work = old_tree.Clone();
  Simulator sim(&work, mix, vocab, rng, &out);
  sim.Run(num_edits);
  out.new_tree = RebuildFresh(work);
  return out;
}

}  // namespace treediff
