#ifndef TREEDIFF_GEN_DOC_GEN_H_
#define TREEDIFF_GEN_DOC_GEN_H_

#include <memory>

#include "gen/vocab.h"
#include "tree/tree.h"
#include "util/random.h"

namespace treediff {

/// Shape parameters of a synthetic document (the stand-in for the paper's
/// corpus of conference-paper versions, Section 8).
struct DocGenParams {
  int sections = 6;
  int min_paragraphs_per_section = 3;
  int max_paragraphs_per_section = 8;
  int min_sentences_per_paragraph = 2;
  int max_sentences_per_paragraph = 6;
  int min_words_per_sentence = 6;
  int max_words_per_sentence = 18;

  /// Probability that a section gets a trailing itemized list.
  double list_probability = 0.25;
  int min_items_per_list = 2;
  int max_items_per_list = 5;

  /// Probability that a generated sentence is an exact copy of an earlier
  /// sentence in the same document. Non-zero values inject Matching
  /// Criterion 3 violations (near-duplicate leaves), the knob behind the
  /// Table 1 experiment.
  double duplicate_sentence_probability = 0.0;
};

/// Generates a random document tree with the document schema
/// (document > section > {paragraph | list > item > paragraph} > sentence).
/// Headings become section values. Deterministic given (`params`, `rng`
/// state, `vocab`). Labels intern into `labels` (fresh table when null).
Tree GenerateDocument(const DocGenParams& params, const Vocabulary& vocab,
                      Rng* rng, std::shared_ptr<LabelTable> labels = nullptr);

/// Rebuilds `tree` into a fresh tree with dense pre-order ids, sharing the
/// label table. Mimics re-parsing a new snapshot: node identifiers carry no
/// information across versions (the keyless-data setting, Section 5).
Tree RebuildFresh(const Tree& tree);

}  // namespace treediff

#endif  // TREEDIFF_GEN_DOC_GEN_H_
