#ifndef TREEDIFF_GEN_EDIT_SIM_H_
#define TREEDIFF_GEN_EDIT_SIM_H_

#include "gen/vocab.h"
#include "tree/tree.h"
#include "util/random.h"

namespace treediff {

/// Relative frequencies of the simulated edit kinds; normalized internally.
/// The defaults approximate how conference-paper versions evolve (mostly
/// sentence rewrites, some restructuring) — the workload behind Section 8.
struct EditMix {
  double update_sentence = 0.40;
  double insert_sentence = 0.15;
  double delete_sentence = 0.15;
  double move_sentence = 0.10;
  double move_paragraph = 0.10;
  double insert_paragraph = 0.05;
  double delete_paragraph = 0.05;

  /// Section-level restructuring: reorders a whole section under the
  /// document root (a large-subtree move; dominates the weighted distance
  /// e, which is what separates Figure 13(a)'s e from d).
  double move_section = 0.0;

  /// Fraction of words replaced by an update (controls how far compare()
  /// moves; 0.2 keeps updated sentences within the default f = 0.5).
  double update_word_churn = 0.2;
};

/// A simulated new version of a document, with the ground-truth edit
/// distances the generator intended. `intended_ops` counts one op per node
/// touched (a paragraph insert is 1 + its sentences), matching the paper's
/// unweighted distance d; `intended_weighted` weighs moves by the moved
/// subtree's leaf count, matching the weighted distance e of Section 5.3.
struct SimulatedVersion {
  Tree new_tree;
  size_t intended_ops = 0;
  size_t intended_weighted = 0;

  size_t sentence_updates = 0;
  size_t sentence_inserts = 0;
  size_t sentence_deletes = 0;
  size_t sentence_moves = 0;
  size_t paragraph_moves = 0;
  size_t paragraph_inserts = 0;
  size_t paragraph_deletes = 0;
  size_t section_moves = 0;
};

/// Applies `num_edits` random edits (drawn from `mix`) to a copy of
/// `old_tree` and returns the result rebuilt with fresh node ids, mimicking
/// an independently parsed snapshot (node ids are keyless across versions).
/// The old tree is left untouched. Skipped edits (no eligible target) are
/// retried with a different kind, so exactly `num_edits` edits are applied
/// whenever the document is large enough.
SimulatedVersion SimulateNewVersion(const Tree& old_tree, int num_edits,
                                    const EditMix& mix,
                                    const Vocabulary& vocab, Rng* rng);

}  // namespace treediff

#endif  // TREEDIFF_GEN_EDIT_SIM_H_
