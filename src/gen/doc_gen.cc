#include "gen/doc_gen.h"

#include <cassert>
#include <vector>

#include "tree/schema.h"

namespace treediff {

namespace {

/// Generates a sentence, occasionally duplicating an earlier one (the
/// Criterion 3 violation knob).
std::string NextSentence(const DocGenParams& p, const Vocabulary& vocab,
                         Rng* rng, std::vector<std::string>* produced) {
  if (!produced->empty() &&
      rng->Bernoulli(p.duplicate_sentence_probability)) {
    return (*produced)[static_cast<size_t>(
        rng->Uniform(produced->size()))];
  }
  std::string s = vocab.MakeSentence(rng, p.min_words_per_sentence,
                                     p.max_words_per_sentence);
  produced->push_back(s);
  return s;
}

void AddParagraph(Tree* tree, NodeId parent, const DocGenParams& p,
                  const Vocabulary& vocab, Rng* rng,
                  std::vector<std::string>* produced) {
  NodeId para = tree->AddChild(parent, doc_labels::kParagraph);
  const int sentences = static_cast<int>(rng->UniformInRange(
      p.min_sentences_per_paragraph, p.max_sentences_per_paragraph));
  for (int s = 0; s < sentences; ++s) {
    tree->AddChild(para, doc_labels::kSentence,
                   NextSentence(p, vocab, rng, produced));
  }
}

}  // namespace

Tree GenerateDocument(const DocGenParams& params, const Vocabulary& vocab,
                      Rng* rng, std::shared_ptr<LabelTable> labels) {
  assert(params.sections >= 1);
  Tree tree(std::move(labels));
  NodeId doc = tree.AddRoot(doc_labels::kDocument);
  std::vector<std::string> produced;

  for (int s = 0; s < params.sections; ++s) {
    std::string heading = vocab.MakeSentence(rng, 2, 5);
    heading.pop_back();  // Headings have no terminating period.
    NodeId section = tree.AddChild(doc, doc_labels::kSection, heading);
    const int paragraphs = static_cast<int>(
        rng->UniformInRange(params.min_paragraphs_per_section,
                            params.max_paragraphs_per_section));
    for (int q = 0; q < paragraphs; ++q) {
      AddParagraph(&tree, section, params, vocab, rng, &produced);
    }
    if (rng->Bernoulli(params.list_probability)) {
      NodeId list = tree.AddChild(section, doc_labels::kList);
      const int items = static_cast<int>(rng->UniformInRange(
          params.min_items_per_list, params.max_items_per_list));
      for (int i = 0; i < items; ++i) {
        NodeId item = tree.AddChild(list, doc_labels::kItem);
        AddParagraph(&tree, item, params, vocab, rng, &produced);
      }
    }
  }
  return tree;
}

Tree RebuildFresh(const Tree& tree) {
  Tree fresh(tree.label_table());
  if (tree.root() == kInvalidNode) return fresh;
  // Pre-order copy; parents are created before children.
  std::vector<NodeId> map(tree.id_bound(), kInvalidNode);
  for (NodeId x : tree.PreOrder()) {
    const NodeId parent = tree.parent(x);
    if (parent == kInvalidNode) {
      map[static_cast<size_t>(x)] = fresh.AddRoot(tree.label(x),
                                                  tree.value(x));
    } else {
      map[static_cast<size_t>(x)] = fresh.AddChild(
          map[static_cast<size_t>(parent)], tree.label(x), tree.value(x));
    }
  }
  return fresh;
}

}  // namespace treediff
