#include "gen/vocab.h"

#include <cassert>
#include <cctype>

namespace treediff {

namespace {

/// Deterministic pronounceable word for a rank: consonant-vowel syllables
/// derived from the rank's base-105 digits (21 consonants x 5 vowels), with
/// enough syllables to make every rank unique.
std::string WordForRank(size_t rank) {
  static constexpr char kConsonants[] = "bcdfghjklmnpqrstvwxyz";
  static constexpr char kVowels[] = "aeiou";
  std::string word;
  size_t r = rank;
  do {
    const size_t syllable = r % 105;
    word.push_back(kConsonants[syllable / 5]);
    word.push_back(kVowels[syllable % 5]);
    r /= 105;
  } while (r > 0);
  // Pad single-syllable words to four characters with two consonants. A
  // multi-syllable word has a vowel at index 3, so padded words (consonant
  // at index 3) can never collide with them, keeping every rank unique.
  if (word.size() == 2) {
    word.push_back(kConsonants[(rank * 7) % 21]);
    word.push_back(kConsonants[(rank * 11) % 21]);
  }
  return word;
}

}  // namespace

Vocabulary::Vocabulary(size_t size, double zipf_s)
    : sampler_(size, zipf_s) {
  assert(size >= 1);
  words_.reserve(size);
  for (size_t r = 0; r < size; ++r) words_.push_back(WordForRank(r));
}

const std::string& Vocabulary::SampleWord(Rng* rng) const {
  return words_[sampler_.Sample(rng)];
}

std::string Vocabulary::MakeSentence(Rng* rng, int min_words,
                                     int max_words) const {
  assert(min_words >= 1 && min_words <= max_words);
  const int count =
      static_cast<int>(rng->UniformInRange(min_words, max_words));
  std::string sentence;
  for (int i = 0; i < count; ++i) {
    std::string word = SampleWord(rng);
    if (i == 0) {
      word[0] = static_cast<char>(
          std::toupper(static_cast<unsigned char>(word[0])));
    } else {
      sentence.push_back(' ');
    }
    sentence += word;
  }
  sentence.push_back('.');
  return sentence;
}

}  // namespace treediff
