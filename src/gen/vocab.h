#ifndef TREEDIFF_GEN_VOCAB_H_
#define TREEDIFF_GEN_VOCAB_H_

#include <cstddef>
#include <string>
#include <vector>

#include "util/random.h"

namespace treediff {

/// A synthetic vocabulary with a Zipfian frequency distribution, standing in
/// for the natural-language word statistics of the paper's document corpus
/// (see DESIGN.md, substitutions). Words are deterministic, pronounceable
/// strings ("taro", "kinu", ...), unique per rank.
class Vocabulary {
 public:
  /// `size` distinct words; `zipf_s` skew (about 1.0 resembles English).
  Vocabulary(size_t size, double zipf_s);

  /// Word at a rank in [0, size); lower ranks are sampled more often.
  const std::string& Word(size_t rank) const { return words_[rank]; }

  size_t size() const { return words_.size(); }

  /// Draws one word according to the Zipf distribution.
  const std::string& SampleWord(Rng* rng) const;

  /// Builds a sentence of uniformly random length in [min_words, max_words],
  /// capitalized and period-terminated.
  std::string MakeSentence(Rng* rng, int min_words, int max_words) const;

 private:
  std::vector<std::string> words_;
  ZipfSampler sampler_;
};

}  // namespace treediff

#endif  // TREEDIFF_GEN_VOCAB_H_
