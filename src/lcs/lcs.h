#ifndef TREEDIFF_LCS_LCS_H_
#define TREEDIFF_LCS_LCS_H_

#include <cassert>
#include <cstddef>
#include <vector>

namespace treediff {

/// One aligned pair of a longest common subsequence: element `a_index` of the
/// first sequence matches element `b_index` of the second.
struct LcsPair {
  int a_index = 0;
  int b_index = 0;

  friend bool operator==(const LcsPair& lhs, const LcsPair& rhs) {
    return lhs.a_index == rhs.a_index && lhs.b_index == rhs.b_index;
  }
};

namespace lcs_internal {

/// Classic O(N*M) dynamic-programming LCS with pair recovery. Reference
/// implementation used for cross-checking Myers and for small inputs.
template <typename Equal>
std::vector<LcsPair> DpLcsImpl(int n, int m, Equal&& equal) {
  if (n == 0 || m == 0) return {};
  // len[i][j] = LCS length of a[i..) and b[j..), flattened row-major with
  // (n+1) x (m+1) entries.
  std::vector<int> len(static_cast<size_t>(n + 1) * (m + 1), 0);
  auto at = [&](int i, int j) -> int& {
    return len[static_cast<size_t>(i) * (m + 1) + j];
  };
  for (int i = n - 1; i >= 0; --i) {
    for (int j = m - 1; j >= 0; --j) {
      if (equal(i, j)) {
        at(i, j) = at(i + 1, j + 1) + 1;
      } else {
        at(i, j) = std::max(at(i + 1, j), at(i, j + 1));
      }
    }
  }
  std::vector<LcsPair> pairs;
  pairs.reserve(static_cast<size_t>(at(0, 0)));
  int i = 0, j = 0;
  while (i < n && j < m) {
    if (equal(i, j) && at(i, j) == at(i + 1, j + 1) + 1) {
      pairs.push_back({i, j});
      ++i;
      ++j;
    } else if (at(i + 1, j) >= at(i, j + 1)) {
      ++i;
    } else {
      ++j;
    }
  }
  return pairs;
}

/// Myers' greedy O((N+M)*D) LCS [Mye86] with pair recovery, where D is the
/// size of the shortest edit script (number of non-common elements). Uses
/// only equality comparisons, which is the property Section 7 of the paper
/// relies on ("we cannot use the LCS algorithm used by the standard UNIX diff
/// program, because it requires inequality comparisons").
///
/// The V frontier is snapshotted per edit distance d for backtracking, so
/// memory is O(D^2). Callers with potentially huge D should go through Lcs(),
/// which bounds the worst case.
template <typename Equal>
std::vector<LcsPair> MyersLcsImpl(int n, int m, Equal&& equal) {
  if (n == 0 || m == 0) return {};
  const int max_d = n + m;
  // v[k + offset] = furthest x along diagonal k (k = x - y).
  const int offset = max_d;
  std::vector<int> v(static_cast<size_t>(2 * max_d + 1), 0);
  std::vector<std::vector<int>> trace;  // Snapshot of v per d.

  int final_d = -1;
  for (int d = 0; d <= max_d && final_d < 0; ++d) {
    trace.push_back(v);
    for (int k = -d; k <= d; k += 2) {
      int x;
      if (k == -d || (k != d && v[static_cast<size_t>(k - 1 + offset)] <
                                    v[static_cast<size_t>(k + 1 + offset)])) {
        x = v[static_cast<size_t>(k + 1 + offset)];  // Move down (insert).
      } else {
        x = v[static_cast<size_t>(k - 1 + offset)] + 1;  // Move right.
      }
      int y = x - k;
      while (x < n && y < m && equal(x, y)) {
        ++x;
        ++y;
      }
      v[static_cast<size_t>(k + offset)] = x;
      if (x >= n && y >= m) {
        final_d = d;
        break;
      }
    }
  }
  assert(final_d >= 0);

  // Backtrack through the snapshots, collecting diagonal (common) moves.
  std::vector<LcsPair> reversed;
  int x = n, y = m;
  for (int d = final_d; d > 0; --d) {
    const std::vector<int>& pv = trace[static_cast<size_t>(d)];
    const int k = x - y;
    int prev_k;
    if (k == -d || (k != d && pv[static_cast<size_t>(k - 1 + offset)] <
                                  pv[static_cast<size_t>(k + 1 + offset)])) {
      prev_k = k + 1;
    } else {
      prev_k = k - 1;
    }
    const int prev_x = pv[static_cast<size_t>(prev_k + offset)];
    const int prev_y = prev_x - prev_k;
    // Diagonal moves after the horizontal/vertical step of this d-round.
    const int mid_x = prev_k == k + 1 ? prev_x : prev_x + 1;
    const int mid_y = mid_x - k;
    for (int cx = x, cy = y; cx > mid_x && cy > mid_y; --cx, --cy) {
      reversed.push_back({cx - 1, cy - 1});
    }
    x = prev_x;
    y = prev_y;
  }
  // d == 0: leading snake from the origin.
  for (int cx = x, cy = y; cx > 0 && cy > 0; --cx, --cy) {
    reversed.push_back({cx - 1, cy - 1});
  }
  return {reversed.rbegin(), reversed.rend()};
}

}  // namespace lcs_internal

/// Computes an LCS of two abstract sequences of lengths `n` and `m`, where
/// `equal(i, j)` decides whether element i of the first sequence equals
/// element j of the second. Returns the aligned index pairs in increasing
/// order on both sides.
///
/// Dispatches to Myers' O((N+M)*D) algorithm; falls back to the O(N*M) DP for
/// short inputs where the DP's simplicity wins. `equal` may be an arbitrary
/// predicate (e.g., the paper's compare(v(x), v(y)) <= f leaf criterion); no
/// ordering or transitivity is required.
template <typename Equal>
std::vector<LcsPair> Lcs(int n, int m, Equal&& equal) {
  assert(n >= 0 && m >= 0);
  // The DP evaluates equal() for every (i, j) cell, which is ruinous when
  // the predicate is expensive (e.g., the internal-node criterion walks a
  // subtree); Myers only probes the frontier, so the DP is reserved for
  // trivial sizes.
  constexpr int kDpCutoff = 8;
  if (n <= kDpCutoff && m <= kDpCutoff) {
    return lcs_internal::DpLcsImpl(n, m, equal);
  }
  return lcs_internal::MyersLcsImpl(n, m, equal);
}

/// Forces the Myers implementation (exposed for tests and benchmarks).
template <typename Equal>
std::vector<LcsPair> MyersLcs(int n, int m, Equal&& equal) {
  return lcs_internal::MyersLcsImpl(n, m, equal);
}

/// Forces the DP implementation (exposed for tests and benchmarks).
template <typename Equal>
std::vector<LcsPair> DpLcs(int n, int m, Equal&& equal) {
  return lcs_internal::DpLcsImpl(n, m, equal);
}

/// LCS over two concrete vectors with operator==; convenience for callers
/// and tests. Returns aligned index pairs.
template <typename T>
std::vector<LcsPair> LcsOfVectors(const std::vector<T>& a,
                                  const std::vector<T>& b) {
  return Lcs(static_cast<int>(a.size()), static_cast<int>(b.size()),
             [&](int i, int j) { return a[static_cast<size_t>(i)] ==
                                        b[static_cast<size_t>(j)]; });
}

/// Length of the LCS of two concrete vectors.
template <typename T>
size_t LcsLength(const std::vector<T>& a, const std::vector<T>& b) {
  return LcsOfVectors(a, b).size();
}

}  // namespace treediff

#endif  // TREEDIFF_LCS_LCS_H_
