#ifndef TREEDIFF_DOC_HTML_PARSER_H_
#define TREEDIFF_DOC_HTML_PARSER_H_

#include <memory>
#include <string_view>

#include "doc/parse_limits.h"
#include "tree/tree.h"
#include "util/status.h"

namespace treediff {

/// Parses an HTML subset into the same document schema the LaTeX parser
/// produces (the paper's planned HTML extension, Section 9):
///
///  * <h1> -> section heading, <h2>/<h3> -> subsection heading (the heading
///    text becomes the node's value);
///  * <p>...</p> -> paragraph; bare text between block elements forms
///    implicit paragraphs; <br> and blank lines break paragraphs;
///  * <ul>/<ol>/<dl> -> "list" (all list kinds merged, as with LaTeX),
///    <li>/<dd> -> item;
///  * inline tags (<b>, <em>, <a>, ...) are stripped; entities &amp; &lt;
///    &gt; &quot; &apos; &nbsp; and numeric &#NN; are decoded;
///  * <head>, <script> and <style> contents, comments, and doctypes are
///    skipped.
///
/// Prose is split into sentence leaves. Labels intern into `labels` (fresh
/// table when null); parse both versions with one table before diffing.
///
/// `limits` caps list nesting and optionally charges a Budget; exceeding
/// either returns kResourceExhausted / kDeadlineExceeded.
StatusOr<Tree> ParseHtml(std::string_view text,
                         std::shared_ptr<LabelTable> labels = nullptr,
                         const ParseLimits& limits = {});

}  // namespace treediff

#endif  // TREEDIFF_DOC_HTML_PARSER_H_
