#include "doc/ladiff.h"

#include <memory>
#include <utility>

#include "doc/html_parser.h"
#include "doc/latex_parser.h"
#include "tree/schema.h"

namespace treediff {

namespace {

using Parser = StatusOr<Tree> (*)(std::string_view,
                                  std::shared_ptr<LabelTable>,
                                  const ParseLimits&);

StatusOr<LaDiffResult> DiffWithParser(Parser parse, std::string_view old_text,
                                      std::string_view new_text,
                                      const LaDiffOptions& options) {
  auto labels = std::make_shared<LabelTable>();
  ParseLimits limits;
  limits.budget = options.diff.budget;
  StatusOr<Tree> old_tree = parse(old_text, labels, limits);
  if (!old_tree.ok()) return old_tree.status();
  StatusOr<Tree> new_tree = parse(new_text, labels, limits);
  if (!new_tree.ok()) return new_tree.status();

  // The document schema gives FastMatch its deterministic label order and
  // lets callers validate the acyclicity condition.
  LabelSchema schema = MakeDocumentSchema(labels.get());
  DiffOptions diff_options = options.diff;
  if (diff_options.schema == nullptr) diff_options.schema = &schema;

  StatusOr<DiffResult> diff = DiffTrees(*old_tree, *new_tree, diff_options);
  if (!diff.ok()) return diff.status();

  StatusOr<DeltaTree> delta = BuildDeltaTree(*old_tree, *new_tree, *diff);
  if (!delta.ok()) return delta.status();

  std::string markup = RenderMarkup(*delta, *labels, options.format);

  LaDiffResult result{std::move(*old_tree), std::move(*new_tree),
                      std::move(*diff), std::move(*delta), std::move(markup)};
  return result;
}

}  // namespace

StatusOr<LaDiffResult> DiffLatexDocuments(std::string_view old_text,
                                          std::string_view new_text,
                                          const LaDiffOptions& options) {
  return DiffWithParser(&ParseLatex, old_text, new_text, options);
}

StatusOr<LaDiffResult> DiffHtmlDocuments(std::string_view old_text,
                                         std::string_view new_text,
                                         const LaDiffOptions& options) {
  return DiffWithParser(&ParseHtml, old_text, new_text, options);
}

}  // namespace treediff
