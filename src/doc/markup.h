#ifndef TREEDIFF_DOC_MARKUP_H_
#define TREEDIFF_DOC_MARKUP_H_

#include <string>

#include "core/delta_tree.h"
#include "tree/label.h"

namespace treediff {

/// Output formats of the mark-up stage.
enum class MarkupFormat {
  kLatex,     // The paper's LaDiff conventions (Table 2).
  kHtml,      // <ins>/<del>/<em> plus anchors for moves.
  kText,      // Indented plain-text dump, one node per line.
  kMarkdown,  // **inserted**, ~~deleted~~, *updated*, [S1] move labels.
};

/// Renders a document delta tree as a marked-up document, following the
/// LaDiff conventions of Table 2:
///
///   Sentence  insert -> bold; delete -> small font; update -> italic;
///             move   -> small font + label at the old position, footnote
///                       "Moved from <label>" at the new position.
///   Paragraph/Item  insert/delete/move -> marginal note; moves label the
///                   old position and reference it from the new position.
///   Section/Subsection  (ins)/(del)/(upd)/(mov) annotation in the heading.
///
/// Moved-and-updated nodes are marked for both at once (Appendix A).
/// Move labels are S1, S2, ... for sentences, P1, ... for paragraphs,
/// I1, ... for items, numbered in document order of the new version.
std::string RenderMarkup(const DeltaTree& delta, const LabelTable& labels,
                         MarkupFormat format);

}  // namespace treediff

#endif  // TREEDIFF_DOC_MARKUP_H_
