#include "doc/html_parser.h"

#include <algorithm>
#include <cctype>
#include <string>
#include <vector>

#include "doc/sentence.h"
#include "tree/schema.h"
#include "util/tokenize.h"

namespace treediff {

namespace {

std::string ToLower(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    out.push_back(
        static_cast<char>(std::tolower(static_cast<unsigned char>(c))));
  }
  return out;
}

/// Decodes the common named entities and numeric character references we
/// care about; unknown entities are kept verbatim.
std::string DecodeEntities(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (size_t i = 0; i < text.size(); ++i) {
    if (text[i] != '&') {
      out.push_back(text[i]);
      continue;
    }
    const size_t semi = text.find(';', i + 1);
    if (semi == std::string_view::npos || semi - i > 8) {
      out.push_back('&');
      continue;
    }
    std::string_view name = text.substr(i + 1, semi - i - 1);
    if (name == "amp") {
      out.push_back('&');
    } else if (name == "lt") {
      out.push_back('<');
    } else if (name == "gt") {
      out.push_back('>');
    } else if (name == "quot") {
      out.push_back('"');
    } else if (name == "apos") {
      out.push_back('\'');
    } else if (name == "nbsp") {
      out.push_back(' ');
    } else if (!name.empty() && name[0] == '#') {
      int code = 0;
      bool ok = true;
      for (char c : name.substr(1)) {
        if (std::isdigit(static_cast<unsigned char>(c)) == 0) {
          ok = false;
          break;
        }
        code = code * 10 + (c - '0');
      }
      if (ok && code > 0 && code < 128) {
        out.push_back(static_cast<char>(code));
      } else {
        out.push_back(' ');
      }
    } else {
      out.append(text.substr(i, semi - i + 1));
    }
    i = semi;
  }
  return out;
}

/// A scanned tag: name lowercased, closing flag.
struct TagToken {
  std::string name;
  bool closing = false;
};

/// Mirrors the LaTeX DocBuilder: maintains the section/subsection/list
/// context while the tag scanner drives it.
class HtmlDocBuilder {
 public:
  explicit HtmlDocBuilder(Tree* tree) : tree_(tree) {
    document_ = tree_->AddRoot(doc_labels::kDocument);
  }

  void StartSection(std::string heading) {
    FlushParagraph();
    list_stack_.clear();
    subsection_ = kInvalidNode;
    section_ = tree_->AddChild(document_, doc_labels::kSection,
                               CollapseWhitespace(heading));
  }

  void StartSubsection(std::string heading) {
    FlushParagraph();
    list_stack_.clear();
    NodeId parent = section_ != kInvalidNode ? section_ : document_;
    subsection_ = tree_->AddChild(parent, doc_labels::kSubsection,
                                  CollapseWhitespace(heading));
  }

  void BeginList() {
    FlushParagraph();
    NodeId parent = ProseContainer();
    list_stack_.push_back(
        {tree_->AddChild(parent, doc_labels::kList), kInvalidNode});
  }

  void EndList() {
    FlushParagraph();
    if (!list_stack_.empty()) list_stack_.pop_back();
  }

  void StartItem() {
    FlushParagraph();
    if (list_stack_.empty()) BeginList();
    list_stack_.back().item =
        tree_->AddChild(list_stack_.back().list, doc_labels::kItem);
  }

  void AddProse(std::string_view chunk) {
    pending_ += std::string(chunk);
    pending_ += " ";
  }

  void ParagraphBreak() { FlushParagraph(); }

  void Finish() { FlushParagraph(); }

  size_t ListDepth() const { return list_stack_.size(); }

 private:
  struct ListFrame {
    NodeId list;
    NodeId item;
  };

  NodeId ProseContainer() const {
    if (!list_stack_.empty() && list_stack_.back().item != kInvalidNode) {
      return list_stack_.back().item;
    }
    if (!list_stack_.empty()) return list_stack_.back().list;
    if (subsection_ != kInvalidNode) return subsection_;
    if (section_ != kInvalidNode) return section_;
    return document_;
  }

  void FlushParagraph() {
    std::vector<std::string> sentences = SplitSentences(pending_);
    pending_.clear();
    if (sentences.empty()) return;
    NodeId parent = ProseContainer();
    if (!list_stack_.empty() && parent == list_stack_.back().list) {
      list_stack_.back().item =
          tree_->AddChild(list_stack_.back().list, doc_labels::kItem);
      parent = list_stack_.back().item;
    }
    NodeId para = tree_->AddChild(parent, doc_labels::kParagraph);
    for (auto& s : sentences) {
      tree_->AddChild(para, doc_labels::kSentence, std::move(s));
    }
  }

  Tree* tree_;
  NodeId document_ = kInvalidNode;
  NodeId section_ = kInvalidNode;
  NodeId subsection_ = kInvalidNode;
  std::vector<ListFrame> list_stack_;
  std::string pending_;
};

bool IsListTag(const std::string& name) {
  return name == "ul" || name == "ol" || name == "dl";
}

bool IsItemTag(const std::string& name) {
  return name == "li" || name == "dd" || name == "dt";
}

bool IsSkippedContainer(const std::string& name) {
  return name == "script" || name == "style" || name == "head";
}

}  // namespace

StatusOr<Tree> ParseHtml(std::string_view text,
                         std::shared_ptr<LabelTable> labels,
                         const ParseLimits& limits) {
  // Up-front deadline probe (the stride-based charges may not reach it on
  // short inputs).
  if (!BudgetCheckNow(limits.budget)) return BudgetStatus(limits.budget);
  Tree tree(std::move(labels));
  HtmlDocBuilder builder(&tree);

  const size_t n = text.size();
  size_t pos = 0;
  std::string skip_until;       // Non-empty while inside <script>/<style>/...
  std::string heading_capture;  // Non-empty tag name while inside <h1>..<h3>.
  std::string heading_text;

  auto emit_text = [&](std::string_view chunk) {
    std::string decoded = DecodeEntities(chunk);
    if (IsBlank(decoded)) return;
    if (!heading_capture.empty()) {
      heading_text += decoded;
      heading_text += " ";
    } else {
      builder.AddProse(decoded);
    }
  };

  while (pos < n) {
    if (!BudgetChargeNodes(limits.budget)) return BudgetStatus(limits.budget);
    const size_t lt = text.find('<', pos);
    if (lt == std::string_view::npos) {
      if (skip_until.empty()) emit_text(text.substr(pos));
      break;
    }
    if (skip_until.empty()) emit_text(text.substr(pos, lt - pos));

    // Comments and doctype.
    if (text.substr(lt).substr(0, 4) == "<!--") {
      const size_t end = text.find("-->", lt + 4);
      pos = end == std::string_view::npos ? n : end + 3;
      continue;
    }
    if (lt + 1 < n && text[lt + 1] == '!') {
      const size_t gt = text.find('>', lt);
      pos = gt == std::string_view::npos ? n : gt + 1;
      continue;
    }

    const size_t gt = text.find('>', lt);
    if (gt == std::string_view::npos) {
      pos = n;
      break;
    }
    std::string_view inside = text.substr(lt + 1, gt - lt - 1);
    pos = gt + 1;

    TagToken tag;
    size_t name_start = 0;
    if (!inside.empty() && inside[0] == '/') {
      tag.closing = true;
      name_start = 1;
    }
    size_t name_end = name_start;
    while (name_end < inside.size() &&
           (std::isalnum(static_cast<unsigned char>(inside[name_end])) != 0)) {
      ++name_end;
    }
    tag.name = ToLower(inside.substr(name_start, name_end - name_start));
    if (tag.name.empty()) continue;

    if (!skip_until.empty()) {
      if (tag.closing && tag.name == skip_until) skip_until.clear();
      continue;
    }
    if (!tag.closing && IsSkippedContainer(tag.name)) {
      skip_until = tag.name;
      continue;
    }

    if (tag.name == "h1" || tag.name == "h2" || tag.name == "h3") {
      if (!tag.closing) {
        heading_capture = tag.name;
        heading_text.clear();
      } else if (heading_capture == tag.name) {
        if (tag.name == "h1") {
          builder.StartSection(heading_text);
        } else {
          builder.StartSubsection(heading_text);
        }
        heading_capture.clear();
      }
    } else if (tag.name == "p") {
      builder.ParagraphBreak();
    } else if (tag.name == "br") {
      builder.ParagraphBreak();
    } else if (IsListTag(tag.name)) {
      if (tag.closing) {
        builder.EndList();
      } else {
        if (builder.ListDepth() >=
            static_cast<size_t>(std::max(limits.max_depth, 0))) {
          return Status::ResourceExhausted(
              "list nesting exceeds max_depth (" +
              std::to_string(limits.max_depth) + ")");
        }
        builder.BeginList();
      }
    } else if (IsItemTag(tag.name)) {
      if (!tag.closing) {
        builder.StartItem();
      } else {
        builder.ParagraphBreak();
      }
    } else if (tag.name == "div" || tag.name == "section" ||
               tag.name == "body" || tag.name == "html" ||
               tag.name == "table" || tag.name == "tr" || tag.name == "td") {
      builder.ParagraphBreak();
    }
    // Inline tags (b, i, em, a, span, code, ...) are simply dropped.
  }
  builder.Finish();
  return tree;
}

}  // namespace treediff
