#ifndef TREEDIFF_DOC_MARKDOWN_PARSER_H_
#define TREEDIFF_DOC_MARKDOWN_PARSER_H_

#include <memory>
#include <string_view>

#include "doc/parse_limits.h"
#include "tree/tree.h"
#include "util/status.h"

namespace treediff {

/// Parses a Markdown subset into the document schema (a third structured
/// front end beside LaTeX and HTML):
///
///  * `# Heading` -> section, `## Heading` / deeper -> subsection (heading
///    text becomes the node value);
///  * blank-line-separated prose -> paragraph > sentence leaves;
///  * `- ` / `* ` / `+ ` / `1. ` items -> list > item > paragraph >
///    sentence (consecutive items form one list; all bullet kinds merge,
///    like the paper's LaTeX list merging);
///  * fenced code blocks (``` ... ```) -> a single opaque "codeblock" leaf
///    whose value is the verbatim content — code is compared as a unit, not
///    sentence-split;
///  * `> ` blockquote markers are stripped (quotes diff as prose);
///  * inline formatting (emphasis, links, inline code) stays verbatim in
///    the sentence text.
///
/// Labels intern into `labels` (fresh table when null); parse both versions
/// with one table before diffing.
///
/// Markdown's structure is flat (no nested lists in this subset), so of
/// `limits` only the budget applies: one node is charged per input line.
StatusOr<Tree> ParseMarkdown(std::string_view text,
                             std::shared_ptr<LabelTable> labels = nullptr,
                             const ParseLimits& limits = {});

}  // namespace treediff

#endif  // TREEDIFF_DOC_MARKDOWN_PARSER_H_
