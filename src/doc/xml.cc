#include "doc/xml.h"

#include <cctype>
#include <vector>

#include "doc/sentence.h"
#include "util/tokenize.h"

namespace treediff {

namespace {

constexpr std::string_view kTextLabel = "#text";

bool IsNameStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) != 0 || c == '_' ||
         c == ':';
}

bool IsNameChar(char c) {
  return IsNameStart(c) || std::isdigit(static_cast<unsigned char>(c)) != 0 ||
         c == '-' || c == '.';
}

std::string DecodeXmlEntities(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (size_t i = 0; i < text.size(); ++i) {
    if (text[i] != '&') {
      out.push_back(text[i]);
      continue;
    }
    const size_t semi = text.find(';', i + 1);
    if (semi == std::string_view::npos || semi - i > 10) {
      out.push_back('&');
      continue;
    }
    std::string_view name = text.substr(i + 1, semi - i - 1);
    if (name == "amp") {
      out.push_back('&');
    } else if (name == "lt") {
      out.push_back('<');
    } else if (name == "gt") {
      out.push_back('>');
    } else if (name == "quot") {
      out.push_back('"');
    } else if (name == "apos") {
      out.push_back('\'');
    } else if (!name.empty() && name[0] == '#') {
      int code = 0;
      bool ok = !name.substr(1).empty();
      if (name.size() > 2 && (name[1] == 'x' || name[1] == 'X')) {
        for (char c : name.substr(2)) {
          if (std::isxdigit(static_cast<unsigned char>(c)) == 0) {
            ok = false;
            break;
          }
          code = code * 16 + (std::isdigit(static_cast<unsigned char>(c))
                                  ? c - '0'
                                  : (std::tolower(c) - 'a' + 10));
        }
      } else {
        for (char c : name.substr(1)) {
          if (std::isdigit(static_cast<unsigned char>(c)) == 0) {
            ok = false;
            break;
          }
          code = code * 10 + (c - '0');
        }
      }
      out.push_back(ok && code > 0 && code < 128 ? static_cast<char>(code)
                                                 : '?');
    } else {
      out.append(text.substr(i, semi - i + 1));
    }
    i = semi;
  }
  return out;
}

std::string EscapeXml(const std::string& text, bool attribute) {
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    switch (c) {
      case '&':
        out += "&amp;";
        break;
      case '<':
        out += "&lt;";
        break;
      case '>':
        out += "&gt;";
        break;
      case '"':
        if (attribute) {
          out += "&quot;";
        } else {
          out.push_back(c);
        }
        break;
      default:
        out.push_back(c);
    }
  }
  return out;
}

/// Recursive-descent XML scanner building the tree.
class XmlParser {
 public:
  XmlParser(std::string_view text, const XmlParseOptions& options, Tree* tree)
      : text_(text), options_(options), tree_(tree) {}

  Status Parse() {
    // Up-front deadline probe (the stride-based per-element charges may not
    // reach the deadline check on short inputs).
    if (!BudgetCheckNow(options_.budget)) {
      return BudgetStatus(options_.budget);
    }
    SkipMisc();
    if (pos_ >= text_.size() || text_[pos_] != '<') {
      return Error("expected a root element");
    }
    TREEDIFF_RETURN_IF_ERROR(ParseElement(kInvalidNode));
    SkipMisc();
    if (pos_ != text_.size()) {
      return Error("content after the root element");
    }
    return Status::Ok();
  }

 private:
  Status Error(const std::string& what) const {
    return Status::ParseError(what + " at offset " + std::to_string(pos_));
  }

  /// Skips whitespace, comments, PIs, doctype between top-level constructs.
  void SkipMisc() {
    for (;;) {
      while (pos_ < text_.size() &&
             std::isspace(static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
      }
      if (text_.substr(pos_).substr(0, 4) == "<!--") {
        const size_t end = text_.find("-->", pos_ + 4);
        pos_ = end == std::string_view::npos ? text_.size() : end + 3;
        continue;
      }
      if (text_.substr(pos_).substr(0, 2) == "<?" ||
          text_.substr(pos_).substr(0, 2) == "<!") {
        const size_t end = text_.find('>', pos_);
        pos_ = end == std::string_view::npos ? text_.size() : end + 1;
        continue;
      }
      return;
    }
  }

  Status ParseName(std::string* out) {
    if (pos_ >= text_.size() || !IsNameStart(text_[pos_])) {
      return Error("expected a name");
    }
    const size_t start = pos_;
    while (pos_ < text_.size() && IsNameChar(text_[pos_])) ++pos_;
    *out = std::string(text_.substr(start, pos_ - start));
    return Status::Ok();
  }

  void SkipSpace() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  Status ParseAttributes(NodeId element) {
    for (;;) {
      SkipSpace();
      if (pos_ >= text_.size()) return Error("unterminated start tag");
      if (text_[pos_] == '>' || text_[pos_] == '/') return Status::Ok();
      std::string name;
      TREEDIFF_RETURN_IF_ERROR(ParseName(&name));
      SkipSpace();
      if (pos_ >= text_.size() || text_[pos_] != '=') {
        return Error("expected '=' after attribute name");
      }
      ++pos_;
      SkipSpace();
      if (pos_ >= text_.size() ||
          (text_[pos_] != '"' && text_[pos_] != '\'')) {
        return Error("expected a quoted attribute value");
      }
      const char quote = text_[pos_++];
      const size_t start = pos_;
      while (pos_ < text_.size() && text_[pos_] != quote) ++pos_;
      if (pos_ >= text_.size()) return Error("unterminated attribute value");
      if (options_.keep_attributes) {
        tree_->AddChild(element, "@" + name,
                        DecodeXmlEntities(text_.substr(start, pos_ - start)));
      }
      ++pos_;
    }
  }

  void EmitText(NodeId element, std::string_view raw) {
    std::string decoded = DecodeXmlEntities(raw);
    if (IsBlank(decoded)) return;
    if (options_.split_sentences) {
      for (auto& sentence : SplitSentences(decoded)) {
        tree_->AddChild(element, kTextLabel, std::move(sentence));
      }
    } else {
      tree_->AddChild(element, kTextLabel, CollapseWhitespace(decoded));
    }
  }

  Status ParseElement(NodeId parent) {
    // At '<'. Depth is checked before recursing: the scanner itself is
    // recursive, so unbounded nesting would exhaust the call stack.
    if (depth_ >= options_.max_depth) {
      return Status::ResourceExhausted(
          "element nesting exceeds max_depth (" +
          std::to_string(options_.max_depth) + ") at offset " +
          std::to_string(pos_));
    }
    ++depth_;
    Status st = ParseElementBody(parent);
    --depth_;
    return st;
  }

  Status ParseElementBody(NodeId parent) {
    if (!BudgetChargeNodes(options_.budget)) {
      return BudgetStatus(options_.budget);
    }
    ++pos_;
    std::string name;
    TREEDIFF_RETURN_IF_ERROR(ParseName(&name));
    NodeId element = parent == kInvalidNode
                         ? tree_->AddRoot(name)
                         : tree_->AddChild(parent, name);
    TREEDIFF_RETURN_IF_ERROR(ParseAttributes(element));
    if (text_[pos_] == '/') {
      ++pos_;
      if (pos_ >= text_.size() || text_[pos_] != '>') {
        return Error("malformed self-closing tag");
      }
      ++pos_;
      return Status::Ok();
    }
    ++pos_;  // '>'.

    // Content loop.
    size_t text_start = pos_;
    for (;;) {
      const size_t lt = text_.find('<', pos_);
      if (lt == std::string_view::npos) {
        return Error("unterminated element <" + name + ">");
      }
      EmitText(element, text_.substr(text_start, lt - text_start));
      pos_ = lt;
      if (text_.substr(pos_).substr(0, 4) == "<!--") {
        const size_t end = text_.find("-->", pos_ + 4);
        if (end == std::string_view::npos) return Error("unterminated comment");
        pos_ = end + 3;
        text_start = pos_;
        continue;
      }
      if (text_.substr(pos_).substr(0, 9) == "<![CDATA[") {
        const size_t end = text_.find("]]>", pos_ + 9);
        if (end == std::string_view::npos) return Error("unterminated CDATA");
        // CDATA content is literal text (no entity decoding).
        std::string_view cdata = text_.substr(pos_ + 9, end - pos_ - 9);
        if (!IsBlank(cdata)) {
          tree_->AddChild(element, kTextLabel, CollapseWhitespace(cdata));
        }
        pos_ = end + 3;
        text_start = pos_;
        continue;
      }
      if (text_.substr(pos_).substr(0, 2) == "<?") {
        const size_t end = text_.find("?>", pos_);
        if (end == std::string_view::npos) return Error("unterminated PI");
        pos_ = end + 2;
        text_start = pos_;
        continue;
      }
      if (pos_ + 1 < text_.size() && text_[pos_ + 1] == '/') {
        pos_ += 2;
        std::string closing;
        TREEDIFF_RETURN_IF_ERROR(ParseName(&closing));
        SkipSpace();
        if (pos_ >= text_.size() || text_[pos_] != '>') {
          return Error("malformed end tag");
        }
        ++pos_;
        if (closing != name) {
          return Error("mismatched end tag </" + closing + "> for <" + name +
                       ">");
        }
        return Status::Ok();
      }
      TREEDIFF_RETURN_IF_ERROR(ParseElement(element));
      text_start = pos_;
    }
  }

  std::string_view text_;
  const XmlParseOptions& options_;
  Tree* tree_;
  size_t pos_ = 0;
  int depth_ = 0;
};

bool IsAttributeLabel(const std::string& name) {
  return !name.empty() && name[0] == '@';
}

void RenderXmlRec(const Tree& tree, NodeId x, int depth, std::string* out) {
  const std::string& name = tree.label_name(x);
  if (name == kTextLabel) {
    out->append(static_cast<size_t>(depth) * 2, ' ');
    out->append(EscapeXml(tree.value(x), false));
    out->push_back('\n');
    return;
  }
  out->append(static_cast<size_t>(depth) * 2, ' ');
  out->push_back('<');
  out->append(name);
  std::vector<NodeId> content;
  for (NodeId c : tree.children(x)) {
    if (IsAttributeLabel(tree.label_name(c))) {
      out->push_back(' ');
      out->append(tree.label_name(c).substr(1));
      out->append("=\"");
      out->append(EscapeXml(tree.value(c), true));
      out->push_back('"');
    } else {
      content.push_back(c);
    }
  }
  if (content.empty() && tree.value(x).empty()) {
    out->append("/>\n");
    return;
  }
  out->append(">\n");
  for (NodeId c : content) RenderXmlRec(tree, c, depth + 1, out);
  out->append(static_cast<size_t>(depth) * 2, ' ');
  out->append("</");
  out->append(name);
  out->append(">\n");
}

void RenderXmlMarkupRec(const DeltaTree& dt, const LabelTable& labels,
                        int index, int depth, std::string* out) {
  const DeltaNode& n = dt.node(index);
  const std::string& name = labels.Name(n.label);

  const char* status = nullptr;
  switch (n.annotation) {
    case DeltaAnnotation::kInserted:
      status = "inserted";
      break;
    case DeltaAnnotation::kDeleted:
      status = "deleted";
      break;
    case DeltaAnnotation::kMoved:
      status = "moved-from";
      break;
    case DeltaAnnotation::kMoveMarker:
      status = "moved-to";
      break;
    case DeltaAnnotation::kUpdated:
      status = "updated";
      break;
    case DeltaAnnotation::kIdentical:
      break;
  }

  if (IsAttributeLabel(name)) {
    // A changed attribute, emitted as an explicit element.
    out->append(static_cast<size_t>(depth) * 2, ' ');
    out->append("<td:attr td:name=\"" + name.substr(1) + "\"");
    if (status != nullptr) {
      out->append(" td:status=\"");
      out->append(status);
      out->push_back('"');
    }
    if (n.value_updated) {
      out->append(" td:old-value=\"" + EscapeXml(n.old_value, true) + "\"");
    }
    out->push_back('>');
    out->append(EscapeXml(n.value, false));
    out->append("</td:attr>\n");
    return;
  }

  if (name == kTextLabel) {
    out->append(static_cast<size_t>(depth) * 2, ' ');
    if (status != nullptr) {
      out->append("<td:text td:status=\"");
      out->append(status);
      out->push_back('"');
      if (n.move_id >= 0) {
        out->append(" td:move=\"" + std::to_string(n.move_id) + "\"");
      }
      if (n.value_updated) {
        out->append(" td:old-value=\"" + EscapeXml(n.old_value, true) + "\"");
      }
      out->push_back('>');
      out->append(EscapeXml(n.value, false));
      out->append("</td:text>\n");
    } else {
      out->append(EscapeXml(n.value, false));
      out->push_back('\n');
    }
    return;
  }

  out->append(static_cast<size_t>(depth) * 2, ' ');
  out->push_back('<');
  out->append(name);
  if (status != nullptr) {
    out->append(" td:status=\"");
    out->append(status);
    out->push_back('"');
    if (n.move_id >= 0) {
      out->append(" td:move=\"" + std::to_string(n.move_id) + "\"");
    }
  }
  if (n.value_updated) {
    out->append(" td:old-value=\"" + EscapeXml(n.old_value, true) + "\"");
  }
  // Unchanged attribute leaves render inline; changed ones become explicit
  // <td:attr> elements in the content (XML cannot annotate an attribute
  // with another attribute).
  std::vector<int> content;
  for (int c : n.children) {
    const DeltaNode& child = dt.node(c);
    const std::string& child_name = labels.Name(child.label);
    if (IsAttributeLabel(child_name) &&
        child.annotation == DeltaAnnotation::kIdentical &&
        !child.value_updated) {
      out->push_back(' ');
      out->append(child_name.substr(1));
      out->append("=\"" + EscapeXml(child.value, true) + "\"");
    } else {
      content.push_back(c);
    }
  }
  if (content.empty()) {
    out->append("/>\n");
    return;
  }
  out->append(">\n");
  for (int c : content) RenderXmlMarkupRec(dt, labels, c, depth + 1, out);
  out->append(static_cast<size_t>(depth) * 2, ' ');
  out->append("</" + name + ">\n");
}

}  // namespace

StatusOr<Tree> ParseXml(std::string_view text,
                        std::shared_ptr<LabelTable> labels,
                        const XmlParseOptions& options) {
  Tree tree(std::move(labels));
  XmlParser parser(text, options, &tree);
  Status st = parser.Parse();
  if (!st.ok()) return st;
  return tree;
}

std::string RenderXml(const Tree& tree) {
  if (tree.root() == kInvalidNode) return "";
  std::string out;
  RenderXmlRec(tree, tree.root(), 0, &out);
  return out;
}

std::string RenderXmlMarkup(const DeltaTree& delta,
                            const LabelTable& labels) {
  if (delta.empty()) return "";
  std::string out =
      "<!-- treediff: td:status marks inserted/deleted/moved/updated nodes; "
      "tombstones show old positions -->\n";
  RenderXmlMarkupRec(delta, labels, delta.root(), 0, &out);
  return out;
}

}  // namespace treediff
