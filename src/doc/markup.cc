#include "doc/markup.h"

#include <unordered_map>
#include <vector>

#include "tree/schema.h"

namespace treediff {

namespace {

/// Assigns display labels ("S1", "P2", ...) to move ids, numbered per node
/// kind in the order markers appear in the new document.
class MoveLabels {
 public:
  MoveLabels(const DeltaTree& dt, const LabelTable& labels) {
    std::unordered_map<std::string, int> counters;
    Walk(dt, labels, dt.root(), &counters);
  }

  std::string Label(int move_id) const {
    auto it = labels_.find(move_id);
    return it == labels_.end() ? "M?" : it->second;
  }

 private:
  void Walk(const DeltaTree& dt, const LabelTable& labels, int index,
            std::unordered_map<std::string, int>* counters) {
    const DeltaNode& n = dt.node(index);
    if (n.annotation == DeltaAnnotation::kMoveMarker && n.move_id >= 0) {
      const std::string& name = labels.Name(n.label);
      std::string prefix = "M";
      if (name == doc_labels::kSentence) {
        prefix = "S";
      } else if (name == doc_labels::kParagraph) {
        prefix = "P";
      } else if (name == doc_labels::kItem) {
        prefix = "I";
      }
      labels_[n.move_id] = prefix + std::to_string(++(*counters)[prefix]);
    }
    for (int c : n.children) Walk(dt, labels, c, counters);
  }

  std::unordered_map<int, std::string> labels_;
};

std::string EscapeHtml(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    switch (c) {
      case '&':
        out += "&amp;";
        break;
      case '<':
        out += "&lt;";
        break;
      case '>':
        out += "&gt;";
        break;
      default:
        out.push_back(c);
    }
  }
  return out;
}

// ----- LaTeX renderer (Table 2) -----

class LatexRenderer {
 public:
  LatexRenderer(const DeltaTree& dt, const LabelTable& labels)
      : dt_(dt), labels_(labels), moves_(dt, labels) {}

  std::string Render() {
    out_.clear();
    Node(dt_.root());
    return out_;
  }

 private:
  const std::string& Name(const DeltaNode& n) const {
    return labels_.Name(n.label);
  }

  static const char* HeadingAnnotation(const DeltaNode& n) {
    switch (n.annotation) {
      case DeltaAnnotation::kInserted:
        return "(ins) ";
      case DeltaAnnotation::kDeleted:
        return "(del) ";
      case DeltaAnnotation::kMoveMarker:
        return "(mov) ";
      default:
        break;
    }
    return n.value_updated ? "(upd) " : "";
  }

  void Children(const DeltaNode& n) {
    for (int c : n.children) Node(c);
  }

  void Node(int index) {
    const DeltaNode& n = dt_.node(index);
    const std::string& name = Name(n);
    if (name == doc_labels::kDocument) {
      Children(n);
    } else if (name == doc_labels::kSection ||
               name == doc_labels::kSubsection) {
      out_ += name == doc_labels::kSection ? "\\section{" : "\\subsection{";
      out_ += HeadingAnnotation(n);
      out_ += n.value;
      out_ += "}\n\n";
      Children(n);
    } else if (name == doc_labels::kList) {
      out_ += "\\begin{itemize}\n";
      Children(n);
      out_ += "\\end{itemize}\n\n";
    } else if (name == doc_labels::kItem) {
      out_ += "\\item ";
      BlockNote(n);
      Children(n);
      out_ += "\n";
    } else if (name == doc_labels::kParagraph) {
      BlockNote(n);
      Children(n);
      out_ += "\n\n";
    } else if (name == doc_labels::kSentence) {
      Sentence(n);
    } else {
      // Unknown label: render value and children transparently.
      if (!n.value.empty()) {
        out_ += n.value;
        out_ += " ";
      }
      Children(n);
    }
  }

  /// Marginal notes for paragraphs and items (Table 2, rows 2-3).
  void BlockNote(const DeltaNode& n) {
    switch (n.annotation) {
      case DeltaAnnotation::kInserted:
        out_ += "\\marginpar{Inserted para} ";
        break;
      case DeltaAnnotation::kDeleted:
        out_ += "\\marginpar{Deleted para} ";
        break;
      case DeltaAnnotation::kMoveMarker:
        out_ += "\\marginpar{Moved from " + moves_.Label(n.move_id) + "} ";
        break;
      case DeltaAnnotation::kMoved:
        out_ += moves_.Label(n.move_id) + ": ";
        break;
      default:
        break;
    }
  }

  /// Font changes for sentences (Table 2, row 1).
  void Sentence(const DeltaNode& n) {
    switch (n.annotation) {
      case DeltaAnnotation::kIdentical:
        out_ += n.value;
        break;
      case DeltaAnnotation::kInserted:
        out_ += "\\textbf{" + n.value + "}";
        break;
      case DeltaAnnotation::kDeleted:
        out_ += "{\\small " + n.value + "}";
        break;
      case DeltaAnnotation::kUpdated:
        out_ += "\\textit{" + n.value + "}";
        break;
      case DeltaAnnotation::kMoved:
        out_ += moves_.Label(n.move_id) + ":[{\\small " + n.value + "}]";
        break;
      case DeltaAnnotation::kMoveMarker: {
        std::string body =
            n.value_updated ? "\\textit{" + n.value + "}" : n.value;
        out_ += "[" + body + "]\\footnote{Moved from " +
                moves_.Label(n.move_id) + "}";
        break;
      }
    }
    out_ += "\n";
  }

  const DeltaTree& dt_;
  const LabelTable& labels_;
  MoveLabels moves_;
  std::string out_;
};

// ----- HTML renderer -----

class HtmlRenderer {
 public:
  HtmlRenderer(const DeltaTree& dt, const LabelTable& labels)
      : dt_(dt), labels_(labels), moves_(dt, labels) {}

  std::string Render() {
    out_ =
        "<!DOCTYPE html>\n<html><head><style>\n"
        "ins { background: #d4f7d4; text-decoration: none; }\n"
        "del { background: #f7d4d4; }\n"
        ".upd { background: #fff3c4; font-style: italic; }\n"
        ".mov-src { background: #e0e0e0; font-size: smaller; }\n"
        ".mov-dst { background: #d4e4f7; }\n"
        ".note { color: #888; font-size: smaller; }\n"
        "</style></head><body>\n";
    Node(dt_.root());
    out_ += "</body></html>\n";
    return out_;
  }

 private:
  const std::string& Name(const DeltaNode& n) const {
    return labels_.Name(n.label);
  }

  void Children(const DeltaNode& n) {
    for (int c : n.children) Node(c);
  }

  std::string NoteFor(const DeltaNode& n) {
    switch (n.annotation) {
      case DeltaAnnotation::kInserted:
        return "<span class=\"note\">[inserted]</span> ";
      case DeltaAnnotation::kDeleted:
        return "<span class=\"note\">[deleted]</span> ";
      case DeltaAnnotation::kMoveMarker:
        return "<span class=\"note\">[moved from " +
               moves_.Label(n.move_id) + "]</span> ";
      case DeltaAnnotation::kMoved:
        return "<span class=\"note\" id=\"mov-" + moves_.Label(n.move_id) +
               "\">[" + moves_.Label(n.move_id) + ", moved away]</span> ";
      default:
        break;
    }
    return n.value_updated ? "<span class=\"note\">[updated]</span> " : "";
  }

  void Node(int index) {
    const DeltaNode& n = dt_.node(index);
    const std::string& name = Name(n);
    if (name == doc_labels::kDocument) {
      Children(n);
    } else if (name == doc_labels::kSection) {
      out_ += "<h1>" + NoteFor(n) + EscapeHtml(n.value) + "</h1>\n";
      Children(n);
    } else if (name == doc_labels::kSubsection) {
      out_ += "<h2>" + NoteFor(n) + EscapeHtml(n.value) + "</h2>\n";
      Children(n);
    } else if (name == doc_labels::kList) {
      out_ += "<ul>\n";
      Children(n);
      out_ += "</ul>\n";
    } else if (name == doc_labels::kItem) {
      out_ += "<li>" + NoteFor(n);
      Children(n);
      out_ += "</li>\n";
    } else if (name == doc_labels::kParagraph) {
      out_ += "<p>" + NoteFor(n);
      Children(n);
      out_ += "</p>\n";
    } else if (name == doc_labels::kSentence) {
      Sentence(n);
    } else {
      if (!n.value.empty()) out_ += EscapeHtml(n.value) + " ";
      Children(n);
    }
  }

  void Sentence(const DeltaNode& n) {
    const std::string text = EscapeHtml(n.value);
    switch (n.annotation) {
      case DeltaAnnotation::kIdentical:
        out_ += text;
        break;
      case DeltaAnnotation::kInserted:
        out_ += "<ins>" + text + "</ins>";
        break;
      case DeltaAnnotation::kDeleted:
        out_ += "<del>" + text + "</del>";
        break;
      case DeltaAnnotation::kUpdated:
        out_ += "<span class=\"upd\">" + text + "</span>";
        break;
      case DeltaAnnotation::kMoved:
        out_ += "<span class=\"mov-src\" id=\"mov-" +
                moves_.Label(n.move_id) + "\">" + text + "</span>";
        break;
      case DeltaAnnotation::kMoveMarker:
        out_ += "<span class=\"mov-dst\">" + text +
                "<sup><a href=\"#mov-" + moves_.Label(n.move_id) + "\">" +
                moves_.Label(n.move_id) + "</a></sup></span>";
        break;
    }
    out_ += "\n";
  }

  const DeltaTree& dt_;
  const LabelTable& labels_;
  MoveLabels moves_;
  std::string out_;
};

// ----- Markdown renderer -----

class MarkdownRenderer {
 public:
  MarkdownRenderer(const DeltaTree& dt, const LabelTable& labels)
      : dt_(dt), labels_(labels), moves_(dt, labels) {}

  std::string Render() {
    out_.clear();
    Node(dt_.root(), 1);
    return out_;
  }

 private:
  const std::string& Name(const DeltaNode& n) const {
    return labels_.Name(n.label);
  }

  std::string NoteFor(const DeltaNode& n) {
    switch (n.annotation) {
      case DeltaAnnotation::kInserted:
        return "*[inserted]* ";
      case DeltaAnnotation::kDeleted:
        return "*[deleted]* ";
      case DeltaAnnotation::kMoveMarker:
        return "*[moved from " + moves_.Label(n.move_id) + "]* ";
      case DeltaAnnotation::kMoved:
        return "*[" + moves_.Label(n.move_id) + ", moved away]* ";
      default:
        break;
    }
    return n.value_updated ? "*[updated]* " : "";
  }

  void Children(const DeltaNode& n, int level) {
    for (int c : n.children) Node(c, level);
  }

  void Node(int index, int level) {
    const DeltaNode& n = dt_.node(index);
    const std::string& name = Name(n);
    if (name == doc_labels::kDocument) {
      Children(n, 1);
    } else if (name == doc_labels::kSection ||
               name == doc_labels::kSubsection) {
      out_ += name == doc_labels::kSection ? "# " : "## ";
      out_ += NoteFor(n);
      out_ += n.value;
      out_ += "\n\n";
      Children(n, level + 1);
    } else if (name == doc_labels::kList) {
      Children(n, level);
      out_ += "\n";
    } else if (name == doc_labels::kItem) {
      out_ += "- ";
      out_ += NoteFor(n);
      ItemBody(n);
      out_ += "\n";
    } else if (name == doc_labels::kParagraph) {
      const std::string note = NoteFor(n);
      if (!note.empty()) out_ += note;
      Children(n, level);
      out_ += "\n\n";
    } else if (name == "codeblock") {
      out_ += NoteFor(n);
      if (n.value_updated) out_ += "\n";
      out_ += "```\n" + n.value;
      if (!n.value.empty() && n.value.back() != '\n') out_ += "\n";
      out_ += "```\n\n";
    } else if (name == doc_labels::kSentence) {
      Sentence(n);
    } else {
      if (!n.value.empty()) out_ += n.value + " ";
      Children(n, level);
    }
  }

  /// Items inline their paragraphs' sentences on one bullet line.
  void ItemBody(const DeltaNode& n) {
    for (int c : n.children) {
      const DeltaNode& child = dt_.node(c);
      if (Name(child) == doc_labels::kParagraph) {
        for (int s : child.children) {
          SentenceInline(dt_.node(s));
          out_ += " ";
        }
      } else if (Name(child) == doc_labels::kSentence) {
        SentenceInline(child);
        out_ += " ";
      }
    }
  }

  void Sentence(const DeltaNode& n) {
    SentenceInline(n);
    out_ += "\n";
  }

  void SentenceInline(const DeltaNode& n) {
    switch (n.annotation) {
      case DeltaAnnotation::kIdentical:
        out_ += n.value;
        break;
      case DeltaAnnotation::kInserted:
        out_ += "**" + n.value + "**";
        break;
      case DeltaAnnotation::kDeleted:
        out_ += "~~" + n.value + "~~";
        break;
      case DeltaAnnotation::kUpdated:
        out_ += "*" + n.value + "*";
        break;
      case DeltaAnnotation::kMoved:
        out_ += "~~" + n.value + "~~ [" + moves_.Label(n.move_id) + "]";
        break;
      case DeltaAnnotation::kMoveMarker: {
        std::string body = n.value_updated ? "*" + n.value + "*" : n.value;
        out_ += body + " [from " + moves_.Label(n.move_id) + "]";
        break;
      }
    }
  }

  const DeltaTree& dt_;
  const LabelTable& labels_;
  MoveLabels moves_;
  std::string out_;
};

// ----- Plain-text renderer -----

void RenderTextRec(const DeltaTree& dt, const LabelTable& labels,
                   const MoveLabels& moves, int index, int depth,
                   std::string* out) {
  const DeltaNode& n = dt.node(index);
  out->append(static_cast<size_t>(depth) * 2, ' ');
  out->append(labels.Name(n.label));
  if (n.annotation != DeltaAnnotation::kIdentical) {
    out->push_back('[');
    out->append(DeltaAnnotationName(n.annotation));
    if (n.move_id >= 0) out->append(" " + moves.Label(n.move_id));
    out->push_back(']');
  }
  if (n.value_updated) out->append("[upd]");
  if (!n.value.empty()) {
    out->append(": ");
    out->append(n.value);
  }
  out->push_back('\n');
  for (int c : n.children) {
    RenderTextRec(dt, labels, moves, c, depth + 1, out);
  }
}

}  // namespace

std::string RenderMarkup(const DeltaTree& delta, const LabelTable& labels,
                         MarkupFormat format) {
  if (delta.empty()) return "";
  switch (format) {
    case MarkupFormat::kLatex:
      return LatexRenderer(delta, labels).Render();
    case MarkupFormat::kHtml:
      return HtmlRenderer(delta, labels).Render();
    case MarkupFormat::kMarkdown:
      return MarkdownRenderer(delta, labels).Render();
    case MarkupFormat::kText: {
      std::string out;
      MoveLabels moves(delta, labels);
      RenderTextRec(delta, labels, moves, delta.root(), 0, &out);
      return out;
    }
  }
  return "";
}

}  // namespace treediff
