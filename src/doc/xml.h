#ifndef TREEDIFF_DOC_XML_H_
#define TREEDIFF_DOC_XML_H_

#include <memory>
#include <string>
#include <string_view>

#include "core/delta_tree.h"
#include "tree/tree.h"
#include "util/budget.h"
#include "util/status.h"

namespace treediff {

/// Options of the generic XML front end.
struct XmlParseOptions {
  /// Represent attributes as leaf children labeled "@name" (in document
  /// order) so attribute edits surface as updates. When false, attributes
  /// are dropped.
  bool keep_attributes = true;

  /// Split text content into sentence leaves (label "#text") instead of one
  /// leaf per text run — the right granularity for prose-bearing XML such
  /// as DocBook; leave false for data-bearing XML.
  bool split_sentences = false;

  /// Maximum element nesting depth. The parser is recursive-descent, so this
  /// bound is what keeps adversarial input (e.g. a million unclosed "<a>")
  /// from exhausting the call stack; exceeding it returns
  /// kResourceExhausted. Mirrors ParseLimits::max_depth for the document
  /// front ends.
  int max_depth = 256;

  /// Optional budget, charged one node per parsed element; null means
  /// uncharged. Exhaustion aborts with kResourceExhausted or
  /// kDeadlineExceeded.
  const Budget* budget = nullptr;
};

/// Parses well-formed XML into a tree (the paper's Section 9 SGML/XML
/// direction, the lineage that became xmldiff):
///
///  * an element becomes an internal node labeled with the element name;
///  * attributes become "@name" leaves with the attribute value;
///  * text runs become "#text" leaves (whitespace-only runs are dropped,
///    other whitespace collapsed);
///  * comments, processing instructions, and the XML declaration are
///    skipped; CDATA sections become text; the five predefined entities and
///    numeric character references are decoded.
///
/// Unlike the LaTeX/HTML front ends the label set is open (element names),
/// and nothing guarantees the acyclic-labels condition — the algorithms
/// stay correct, only the uniqueness theorem's preconditions may not hold.
///
/// Returns ParseError for mismatched or unterminated tags.
StatusOr<Tree> ParseXml(std::string_view text,
                        std::shared_ptr<LabelTable> labels = nullptr,
                        const XmlParseOptions& options = {});

/// Serializes a tree back to XML (inverse of ParseXml modulo whitespace):
/// "@name" leaves render as attributes, "#text" leaves as text content,
/// everything else as elements. Special characters are escaped.
std::string RenderXml(const Tree& tree);

/// Renders a delta tree as the new XML document annotated with change
/// status: changed elements carry td:status="inserted|deleted|moved-from|
/// moved-to|updated" attributes (tombstones are emitted in place, so the
/// output superimposes both versions, like the LaDiff output does for
/// LaTeX). Updated text renders both versions via td:old-value.
std::string RenderXmlMarkup(const DeltaTree& delta, const LabelTable& labels);

}  // namespace treediff

#endif  // TREEDIFF_DOC_XML_H_
