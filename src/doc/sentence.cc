#include "doc/sentence.h"

#include <array>
#include <cctype>

#include "util/tokenize.h"

namespace treediff {

namespace {

bool IsSpaceChar(char c) {
  return std::isspace(static_cast<unsigned char>(c)) != 0;
}

/// The word ending at text[end_pos] (inclusive, the '.'): walk back to the
/// previous whitespace.
std::string_view TrailingWord(std::string_view text, size_t end_pos) {
  size_t start = end_pos;
  while (start > 0 && !IsSpaceChar(text[start - 1])) --start;
  return text.substr(start, end_pos - start + 1);
}

bool IsAbbreviation(std::string_view word) {
  static constexpr std::array<std::string_view, 16> kAbbrevs = {
      "e.g.", "i.e.",  "etc.", "cf.",  "vs.",   "Dr.",   "Mr.",   "Mrs.",
      "Ms.",  "Prof.", "Fig.", "Sec.", "Eq.",   "No.",   "St.",   "al."};
  for (std::string_view abbr : kAbbrevs) {
    if (word == abbr) return true;
  }
  // Single-initial abbreviations like "J." or "S.".
  if (word.size() == 2 && word[1] == '.' &&
      std::isupper(static_cast<unsigned char>(word[0]))) {
    return true;
  }
  return false;
}

}  // namespace

std::vector<std::string> SplitSentences(std::string_view paragraph) {
  std::vector<std::string> sentences;
  const size_t n = paragraph.size();
  size_t start = 0;
  for (size_t i = 0; i < n; ++i) {
    const char c = paragraph[i];
    if (c != '.' && c != '!' && c != '?') continue;
    // Swallow a run of terminators ("?!", "...").
    size_t end = i;
    while (end + 1 < n && (paragraph[end + 1] == '.' ||
                           paragraph[end + 1] == '!' ||
                           paragraph[end + 1] == '?' ||
                           paragraph[end + 1] == ')' ||
                           paragraph[end + 1] == '"' ||
                           paragraph[end + 1] == '\'')) {
      ++end;
    }
    // A sentence boundary needs following whitespace (or end of text).
    if (end + 1 < n && !IsSpaceChar(paragraph[end + 1])) {
      i = end;
      continue;
    }
    // Decimal points ("3.14") never reach here because the next character
    // is a digit, not whitespace. Abbreviations do; skip them unless at the
    // very end of the paragraph.
    if (c == '.' && end + 1 < n &&
        IsAbbreviation(TrailingWord(paragraph, i))) {
      i = end;
      continue;
    }
    std::string sentence =
        CollapseWhitespace(paragraph.substr(start, end - start + 1));
    if (!sentence.empty()) sentences.push_back(std::move(sentence));
    start = end + 1;
    i = end;
  }
  std::string tail = CollapseWhitespace(paragraph.substr(start));
  if (!tail.empty()) sentences.push_back(std::move(tail));
  return sentences;
}

}  // namespace treediff
