#ifndef TREEDIFF_DOC_PARSE_LIMITS_H_
#define TREEDIFF_DOC_PARSE_LIMITS_H_

#include "util/budget.h"

namespace treediff {

/// Resource limits shared by the document front ends (LaTeX, HTML,
/// Markdown; the XML front end carries the same fields on XmlParseOptions).
/// Adversarial input must not stall or exhaust the process: nesting is
/// capped and, when a budget is given, work is charged against it. Either
/// limit tripping aborts the parse with kResourceExhausted /
/// kDeadlineExceeded instead of recursing or scanning unbounded.
struct ParseLimits {
  /// Maximum structural nesting depth (list nesting, element nesting). The
  /// default comfortably covers real documents while keeping the recursive
  /// XML parser far from stack exhaustion.
  int max_depth = 256;

  /// Optional budget, charged one node per document construct (line, tag,
  /// element) scanned; null means uncharged.
  const Budget* budget = nullptr;
};

}  // namespace treediff

#endif  // TREEDIFF_DOC_PARSE_LIMITS_H_
