#ifndef TREEDIFF_DOC_SENTENCE_H_
#define TREEDIFF_DOC_SENTENCE_H_

#include <string>
#include <string_view>
#include <vector>

namespace treediff {

/// Splits a paragraph of prose into sentences, the leaf granularity of the
/// LaDiff document trees (Section 7). A sentence ends at '.', '!' or '?'
/// followed by whitespace, except after common abbreviations ("e.g.",
/// "Dr.", "Fig.", single-initial "J.") and decimal points. Terminators stay
/// attached to their sentence; whitespace within each sentence is collapsed.
std::vector<std::string> SplitSentences(std::string_view paragraph);

}  // namespace treediff

#endif  // TREEDIFF_DOC_SENTENCE_H_
