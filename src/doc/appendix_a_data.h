#ifndef TREEDIFF_DOC_APPENDIX_A_DATA_H_
#define TREEDIFF_DOC_APPENDIX_A_DATA_H_

namespace treediff {

/// The old version of the Appendix A sample document (Figure 14 of the
/// paper; an excerpt from the TeXbook). Used by the appendix-A integration
/// test and the ladiff example to regenerate the paper's sample run.
inline constexpr const char* kAppendixAOldDocument = R"TEX(
\section{First things first}

Computer system manuals usually make dull reading, but take heart:
This one contains JOKES every once in a while, so you might actually
enjoy reading it. (However, most of the jokes can only be appreciated
properly if you understand a technical point that is being made---so
read carefully.)

Another noteworthy characteristic of this manual is that it doesn't
always tell the truth. When certain concepts of TeX are introduced
informally, general rules will be stated; afterwards you will find
that the rules aren't strictly true. In general, the later chapters
contain more reliable information than the earlier ones do. The
author feels that this technique of deliberate lying will actually
make it easier for you to learn the ideas. Once you understand a
simple but false rule, it will not be hard to supplement that rule
with its exceptions.

\section{Another way to look at it}

In order to help you internalize what you're reading, exercises are
sprinkled through this manual. It is generally intended that every
reader should try every exercise, except for questions that appear in
the ``dangerous bend'' areas. If you can't solve a problem, you can
always look up the answer. But please, try first to solve it by
yourself; then you'll learn more and you'll learn faster. Furthermore,
if you think you do know the solution, you should turn to Appendix A
and check it out, just to make sure.

\section{Conclusion}

The TeX language described in this book is similar to the author's
first attempt at a document formatting language, but the new system
differs from the old one in literally thousands of details. Both
languages have been called TeX; but henceforth the old language
should be called TeX78, and its use should rapidly fade away. Let's
keep the name TeX for the language described here, since it is so
much better, and since it is not going to change any more.
)TEX";

/// The new version of the Appendix A sample document (Figure 15).
inline constexpr const char* kAppendixANewDocument = R"TEX(
\section{Introduction}

The TeX language described in this book has a predecessor, but the
new system differs from the old one in literally thousands of
details. Computer manuals usually make extremely dull reading, but
don't worry: This one contains JOKES every once in a while, so you
might actually enjoy reading it. (However, most of the jokes can only
be appreciated properly if you understand a technical point that is
being made---so read carefully.)

\section{The details}

English words like `technology' stem from a Greek root beginning with
letters tau epsilon chi; and this same Greek work means art as well
as technology. Hence the name TeX, which is an uppercase of tau
epsilon chi.

Another noteworthy characteristic of this manual is that it doesn't
always tell the truth. This feature may seem strange, but it isn't.
When certain concepts of TeX are introduced informally, general rules
will be stated; afterwards you will find that the rules aren't
strictly true. The author feels that this technique of deliberate
lying will actually make it easier for you to learn the ideas. Once
you understand a simple but false rule, it will not be hard to
supplement that rule with its exceptions.

\section{Moving on}

It is generally intended that every reader should try every exercise,
except for questions that appear in the ``dangerous bend'' areas. If
you can't solve a problem, you can always look up the answer. But
please, try first to solve it by yourself; then you'll learn more and
you'll learn faster. Furthermore, if you think you do know the
solution, you should turn to Appendix A and check it out, just to
make sure. In order to help you better internalize what you read,
exercises are sprinkled through this manual.

\section{Conclusion}

Both languages have been called TeX; but henceforth the old language
should be called TeX78, and its use should rapidly fade away. Let's
keep the name TeX for the language described here, since it is so
much better, and since it is not going to change any more.
)TEX";

}  // namespace treediff

#endif  // TREEDIFF_DOC_APPENDIX_A_DATA_H_
