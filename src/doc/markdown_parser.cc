#include "doc/markdown_parser.h"

#include <cctype>
#include <string>
#include <vector>

#include "doc/sentence.h"
#include "tree/schema.h"
#include "util/tokenize.h"

namespace treediff {

namespace {

/// Label for opaque fenced-code leaves.
constexpr std::string_view kCodeBlockLabel = "codeblock";

/// True if `line` opens/closes a fence; returns the fence marker length.
bool IsFence(std::string_view line) {
  std::string_view trimmed = TrimWhitespace(line);
  return trimmed.substr(0, 3) == "```" || trimmed.substr(0, 3) == "~~~";
}

/// If `line` is a heading, returns its level (1-6) and strips the marker
/// into `text`; otherwise returns 0.
int HeadingLevel(std::string_view line, std::string* text) {
  size_t hashes = 0;
  while (hashes < line.size() && line[hashes] == '#') ++hashes;
  if (hashes == 0 || hashes > 6) return 0;
  if (hashes < line.size() && line[hashes] != ' ') return 0;
  *text = CollapseWhitespace(line.substr(hashes));
  return static_cast<int>(hashes);
}

/// If `line` starts a list item, strips the bullet into `text` and returns
/// true. Handles -, *, + and "N." ordered markers.
bool ListItemStart(std::string_view line, std::string* text) {
  std::string_view t = TrimWhitespace(line);
  if (t.size() >= 2 && (t[0] == '-' || t[0] == '*' || t[0] == '+') &&
      t[1] == ' ') {
    *text = std::string(TrimWhitespace(t.substr(2)));
    return true;
  }
  size_t digits = 0;
  while (digits < t.size() &&
         std::isdigit(static_cast<unsigned char>(t[digits]))) {
    ++digits;
  }
  if (digits > 0 && digits + 1 < t.size() && t[digits] == '.' &&
      t[digits + 1] == ' ') {
    *text = std::string(TrimWhitespace(t.substr(digits + 2)));
    return true;
  }
  return false;
}

/// Builds the tree while the line scanner drives it (same pattern as the
/// LaTeX builder).
class MarkdownBuilder {
 public:
  explicit MarkdownBuilder(Tree* tree) : tree_(tree) {
    document_ = tree_->AddRoot(doc_labels::kDocument);
  }

  void Heading(int level, std::string text) {
    Flush();
    CloseList();
    if (level <= 1) {
      subsection_ = kInvalidNode;
      section_ = tree_->AddChild(document_, doc_labels::kSection,
                                 std::move(text));
    } else {
      NodeId parent = section_ != kInvalidNode ? section_ : document_;
      subsection_ = tree_->AddChild(parent, doc_labels::kSubsection,
                                    std::move(text));
    }
  }

  void StartItem(std::string first_text) {
    Flush();
    if (list_ == kInvalidNode) {
      list_ = tree_->AddChild(ProseContainer(), doc_labels::kList);
    }
    item_ = tree_->AddChild(list_, doc_labels::kItem);
    pending_ = std::move(first_text);
    pending_ += " ";
  }

  void Prose(std::string_view line) {
    pending_ += std::string(TrimWhitespace(line));
    pending_ += " ";
  }

  void Blank() {
    Flush();
    CloseList();
  }

  void CodeBlock(std::string content) {
    Flush();
    CloseList();
    tree_->AddChild(ProseContainer(), kCodeBlockLabel, std::move(content));
  }

  void Finish() {
    Flush();
    CloseList();
  }

 private:
  NodeId ProseContainer() const {
    if (item_ != kInvalidNode) return item_;
    if (subsection_ != kInvalidNode) return subsection_;
    if (section_ != kInvalidNode) return section_;
    return document_;
  }

  void Flush() {
    std::vector<std::string> sentences = SplitSentences(pending_);
    pending_.clear();
    if (sentences.empty()) return;
    NodeId para = tree_->AddChild(ProseContainer(), doc_labels::kParagraph);
    for (auto& s : sentences) {
      tree_->AddChild(para, doc_labels::kSentence, std::move(s));
    }
    // A flushed paragraph ends the current item's prose; the next bullet
    // starts a fresh item, further prose joins a new paragraph in the item.
  }

  void CloseList() {
    list_ = kInvalidNode;
    item_ = kInvalidNode;
  }

  Tree* tree_;
  NodeId document_ = kInvalidNode;
  NodeId section_ = kInvalidNode;
  NodeId subsection_ = kInvalidNode;
  NodeId list_ = kInvalidNode;
  NodeId item_ = kInvalidNode;
  std::string pending_;
};

}  // namespace

StatusOr<Tree> ParseMarkdown(std::string_view text,
                             std::shared_ptr<LabelTable> labels,
                             const ParseLimits& limits) {
  // Up-front deadline probe (the stride-based charges may not reach it on
  // short inputs).
  if (!BudgetCheckNow(limits.budget)) return BudgetStatus(limits.budget);
  Tree tree(std::move(labels));
  MarkdownBuilder builder(&tree);

  size_t pos = 0;
  bool in_fence = false;
  std::string code;
  while (pos <= text.size()) {
    if (!BudgetChargeNodes(limits.budget)) return BudgetStatus(limits.budget);
    size_t end = text.find('\n', pos);
    if (end == std::string_view::npos) end = text.size();
    std::string_view line = text.substr(pos, end - pos);
    pos = end + 1;

    if (in_fence) {
      if (IsFence(line)) {
        in_fence = false;
        builder.CodeBlock(std::move(code));
        code.clear();
      } else {
        code += std::string(line);
        code += "\n";
      }
      if (end == text.size()) break;
      continue;
    }
    if (IsFence(line)) {
      in_fence = true;
      if (end == text.size()) break;
      continue;
    }

    // Strip blockquote markers.
    std::string_view effective = line;
    std::string_view t = TrimWhitespace(effective);
    while (!t.empty() && t[0] == '>') {
      t = TrimWhitespace(t.substr(1));
    }
    if (t != TrimWhitespace(effective)) effective = t;

    std::string captured;
    int level = HeadingLevel(TrimWhitespace(effective), &captured);
    if (level > 0) {
      builder.Heading(level, std::move(captured));
    } else if (ListItemStart(effective, &captured)) {
      builder.StartItem(std::move(captured));
    } else if (IsBlank(effective)) {
      builder.Blank();
    } else {
      builder.Prose(effective);
    }
    if (end == text.size()) break;
  }
  if (in_fence) {
    // Unterminated fence: keep the code collected so far.
    builder.CodeBlock(std::move(code));
  }
  builder.Finish();
  return tree;
}

}  // namespace treediff
