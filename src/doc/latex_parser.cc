#include "doc/latex_parser.h"

#include <algorithm>
#include <string>
#include <vector>

#include "doc/sentence.h"
#include "tree/schema.h"
#include "util/tokenize.h"

namespace treediff {

namespace {

/// Removes % comments (a '%' not preceded by a backslash kills the rest of
/// the line, including the newline, per TeX rules; we keep the newline so
/// blank-line structure is preserved).
std::string StripComments(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  bool in_comment = false;
  for (size_t i = 0; i < text.size(); ++i) {
    const char c = text[i];
    if (in_comment) {
      if (c == '\n') {
        in_comment = false;
        out.push_back(c);
      }
      continue;
    }
    if (c == '\\' && i + 1 < text.size() && text[i + 1] == '%') {
      out.append("\\%");
      ++i;
      continue;
    }
    if (c == '%') {
      in_comment = true;
      continue;
    }
    out.push_back(c);
  }
  return out;
}

/// Reads a balanced {...} group starting at `pos` (which must point at '{');
/// returns the contents and advances `pos` past the closing brace.
Status ReadBraceGroup(std::string_view text, size_t* pos, std::string* out) {
  if (*pos >= text.size() || text[*pos] != '{') {
    return Status::ParseError("expected '{' at offset " +
                              std::to_string(*pos));
  }
  size_t depth = 0;
  size_t i = *pos;
  std::string content;
  for (; i < text.size(); ++i) {
    const char c = text[i];
    if (c == '{') {
      ++depth;
      if (depth == 1) continue;
    } else if (c == '}') {
      --depth;
      if (depth == 0) {
        *pos = i + 1;
        *out = std::move(content);
        return Status::Ok();
      }
    }
    content.push_back(c);
  }
  return Status::ParseError("unbalanced braces starting at offset " +
                            std::to_string(*pos));
}

/// Builds the document tree while the scanner walks the source.
class DocBuilder {
 public:
  explicit DocBuilder(Tree* tree) : tree_(tree) {
    document_ = tree_->AddRoot(doc_labels::kDocument);
  }

  void StartSection(std::string heading) {
    FlushParagraph();
    list_stack_.clear();
    subsection_ = kInvalidNode;
    section_ = tree_->AddChild(document_, doc_labels::kSection,
                               CollapseWhitespace(heading));
  }

  void StartSubsection(std::string heading) {
    FlushParagraph();
    list_stack_.clear();
    NodeId parent = section_ != kInvalidNode ? section_ : document_;
    subsection_ = tree_->AddChild(parent, doc_labels::kSubsection,
                                  CollapseWhitespace(heading));
  }

  void BeginList() {
    FlushParagraph();
    NodeId parent = CurrentProseContainer();
    list_stack_.push_back(
        {tree_->AddChild(parent, doc_labels::kList), kInvalidNode});
  }

  void EndList() {
    FlushParagraph();
    if (!list_stack_.empty()) list_stack_.pop_back();
  }

  void StartItem() {
    FlushParagraph();
    if (list_stack_.empty()) BeginList();  // Tolerate a stray \item.
    list_stack_.back().item =
        tree_->AddChild(list_stack_.back().list, doc_labels::kItem);
  }

  void AddProse(std::string_view chunk) { pending_ += std::string(chunk); }

  void ParagraphBreak() { FlushParagraph(); }

  void Finish() { FlushParagraph(); }

  size_t ListDepth() const { return list_stack_.size(); }

 private:
  struct ListFrame {
    NodeId list;
    NodeId item;
  };

  /// Where prose paragraphs currently go: innermost item, else subsection,
  /// else section, else document.
  NodeId CurrentProseContainer() const {
    if (!list_stack_.empty() && list_stack_.back().item != kInvalidNode) {
      return list_stack_.back().item;
    }
    if (!list_stack_.empty()) {
      // Prose inside a list before any \item: start an implicit item lazily
      // at flush time (handled in FlushParagraph).
      return list_stack_.back().list;
    }
    if (subsection_ != kInvalidNode) return subsection_;
    if (section_ != kInvalidNode) return section_;
    return document_;
  }

  void FlushParagraph() {
    std::vector<std::string> sentences = SplitSentences(pending_);
    pending_.clear();
    if (sentences.empty()) return;
    NodeId parent = CurrentProseContainer();
    if (!list_stack_.empty() && parent == list_stack_.back().list) {
      // Prose directly inside a list: wrap in an implicit item.
      list_stack_.back().item =
          tree_->AddChild(list_stack_.back().list, doc_labels::kItem);
      parent = list_stack_.back().item;
    }
    NodeId para = tree_->AddChild(parent, doc_labels::kParagraph);
    for (auto& s : sentences) {
      tree_->AddChild(para, doc_labels::kSentence, std::move(s));
    }
  }

  Tree* tree_;
  NodeId document_ = kInvalidNode;
  NodeId section_ = kInvalidNode;
  NodeId subsection_ = kInvalidNode;
  std::vector<ListFrame> list_stack_;
  std::string pending_;
};

bool IsListEnvironment(std::string_view name) {
  return name == "itemize" || name == "enumerate" || name == "description";
}

}  // namespace

StatusOr<Tree> ParseLatex(std::string_view raw,
                          std::shared_ptr<LabelTable> labels,
                          const ParseLimits& limits) {
  // Probe the deadline once up front: the per-construct charges below only
  // re-check it every kDeadlineStride probes, which a short document may
  // never reach.
  if (!BudgetCheckNow(limits.budget)) return BudgetStatus(limits.budget);
  Tree tree(std::move(labels));
  const std::string text = StripComments(raw);
  DocBuilder builder(&tree);

  size_t pos = 0;
  const size_t n = text.size();
  // If there is a preamble, skip to \begin{document}.
  const size_t doc_begin = text.find("\\begin{document}");
  if (doc_begin != std::string_view::npos) {
    pos = doc_begin + std::string_view("\\begin{document}").size();
  }

  size_t blank_scan = pos;  // For blank-line paragraph detection.
  auto flush_prose_until = [&](size_t end) {
    // Emit prose [blank_scan, end), breaking paragraphs at blank lines. A
    // flush can stop mid-line (at a \command); in that case no separator is
    // appended so the rest of the line continues seamlessly, and blank
    // partial segments do not fake a paragraph break.
    size_t start = blank_scan;
    while (start < end) {
      size_t newline = text.find('\n', start);
      const bool hit_newline = newline != std::string::npos && newline < end;
      const size_t seg_end = hit_newline ? newline : end;
      std::string_view segment(text.data() + start, seg_end - start);
      const bool full_line =
          hit_newline && (start == 0 || text[start - 1] == '\n');
      if (IsBlank(segment)) {
        if (full_line) builder.ParagraphBreak();
      } else {
        builder.AddProse(segment);
      }
      if (hit_newline && !IsBlank(segment)) builder.AddProse(" ");
      start = seg_end + 1;
      if (!hit_newline) break;
    }
    blank_scan = end;
  };

  while (pos < n) {
    if (!BudgetChargeNodes(limits.budget)) return BudgetStatus(limits.budget);
    size_t next = text.find('\\', pos);
    if (next == std::string::npos) {
      flush_prose_until(n);
      break;
    }
    // Identify the command name.
    size_t name_end = next + 1;
    while (name_end < n &&
           (std::isalpha(static_cast<unsigned char>(text[name_end])) != 0)) {
      ++name_end;
    }
    std::string_view cmd(text.data() + next + 1, name_end - next - 1);

    auto handle_heading = [&](bool subsection) -> Status {
      flush_prose_until(next);
      size_t cursor = name_end;
      // Tolerate the starred forms \section*{...}.
      if (cursor < n && text[cursor] == '*') ++cursor;
      std::string heading;
      TREEDIFF_RETURN_IF_ERROR(ReadBraceGroup(text, &cursor, &heading));
      if (subsection) {
        builder.StartSubsection(std::move(heading));
      } else {
        builder.StartSection(std::move(heading));
      }
      pos = cursor;
      blank_scan = cursor;
      return Status::Ok();
    };

    if (cmd == "section") {
      TREEDIFF_RETURN_IF_ERROR(handle_heading(false));
    } else if (cmd == "subsection") {
      TREEDIFF_RETURN_IF_ERROR(handle_heading(true));
    } else if (cmd == "begin" || cmd == "end") {
      size_t cursor = name_end;
      std::string env;
      Status st = ReadBraceGroup(text, &cursor, &env);
      if (!st.ok()) return st;
      if (IsListEnvironment(env)) {
        flush_prose_until(next);
        if (cmd == "begin") {
          if (builder.ListDepth() >=
              static_cast<size_t>(std::max(limits.max_depth, 0))) {
            return Status::ResourceExhausted(
                "list nesting exceeds max_depth (" +
                std::to_string(limits.max_depth) + ")");
          }
          builder.BeginList();
        } else {
          builder.EndList();
        }
        pos = cursor;
        blank_scan = cursor;
      } else if (env == "document") {
        flush_prose_until(next);
        pos = cursor;
        blank_scan = cursor;
        if (cmd == "end") break;  // \end{document}: stop.
      } else {
        // Unknown environment: keep the markers out of the prose but parse
        // the contents as ordinary text.
        flush_prose_until(next);
        pos = cursor;
        blank_scan = cursor;
      }
    } else if (cmd == "item") {
      flush_prose_until(next);
      builder.StartItem();
      pos = name_end;
      blank_scan = name_end;
    } else {
      // Any other command: leave it in the prose verbatim (it is part of a
      // sentence, e.g. \emph{...} or math).
      flush_prose_until(name_end);
      pos = name_end;
      // Ensure at least one character of progress for lone backslashes.
      if (name_end == next + 1) {
        flush_prose_until(std::min(n, name_end + 1));
        pos = std::min(n, name_end + 1);
      }
    }
  }
  builder.Finish();
  return tree;
}

}  // namespace treediff
