#ifndef TREEDIFF_DOC_LATEX_PARSER_H_
#define TREEDIFF_DOC_LATEX_PARSER_H_

#include <memory>
#include <string_view>

#include "doc/parse_limits.h"
#include "tree/tree.h"
#include "util/status.h"

namespace treediff {

/// Parses the LaDiff subset of LaTeX (Section 7) into a document tree:
///
///   document > section > subsection > { paragraph | list > item >
///   paragraph } > sentence
///
/// Recognized constructs:
///  * \section{...} and \subsection{...} (heading text becomes the node's
///    value, so heading edits surface as updates);
///  * \begin{itemize} / \begin{enumerate} / \begin{description}, \item,
///    \end{...} — all three list kinds map to the single label "list",
///    the paper's fix for the acyclic-labels condition (Section 5.1);
///  * blank lines separate paragraphs; prose is split into sentence leaves;
///  * % comments (except \%) are stripped; an optional preamble up to
///    \begin{document} and the trailing \end{document} are skipped;
///  * other \commands inside prose are kept verbatim as sentence text.
///
/// Labels are interned into `labels` (fresh table when null). Both versions
/// of a document must be parsed with the same table before diffing.
///
/// `limits` caps list-environment nesting and optionally charges a Budget;
/// exceeding either returns kResourceExhausted / kDeadlineExceeded.
StatusOr<Tree> ParseLatex(std::string_view text,
                          std::shared_ptr<LabelTable> labels = nullptr,
                          const ParseLimits& limits = {});

}  // namespace treediff

#endif  // TREEDIFF_DOC_LATEX_PARSER_H_
