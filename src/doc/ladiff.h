#ifndef TREEDIFF_DOC_LADIFF_H_
#define TREEDIFF_DOC_LADIFF_H_

#include <string>
#include <string_view>

#include "core/diff.h"
#include "doc/markup.h"
#include "tree/tree.h"
#include "util/status.h"

namespace treediff {

/// Options of the LaDiff pipeline (Section 7).
struct LaDiffOptions {
  /// Matching thresholds and algorithm selection.
  DiffOptions diff;

  /// Output format of the marked-up document.
  MarkupFormat format = MarkupFormat::kLatex;
};

/// Everything LaDiff computes for one pair of document versions.
struct LaDiffResult {
  Tree old_tree;
  Tree new_tree;
  DiffResult diff;
  DeltaTree delta;
  std::string markup;
};

/// The LaDiff system (Section 7): parses two versions of a LaTeX document,
/// computes the matching and minimum-cost edit script, builds the delta
/// tree, and renders the new version with the changes marked (Appendix A).
StatusOr<LaDiffResult> DiffLatexDocuments(std::string_view old_text,
                                          std::string_view new_text,
                                          const LaDiffOptions& options = {});

/// Same pipeline for the HTML subset (the web-document scenario of the
/// introduction and Section 9's planned extension).
StatusOr<LaDiffResult> DiffHtmlDocuments(std::string_view old_text,
                                         std::string_view new_text,
                                         const LaDiffOptions& options = {});

}  // namespace treediff

#endif  // TREEDIFF_DOC_LADIFF_H_
