#ifndef TREEDIFF_UTIL_STATS_H_
#define TREEDIFF_UTIL_STATS_H_

#include <cstddef>
#include <vector>

namespace treediff {

/// Accumulates a stream of doubles and reports summary statistics. Used by
/// the benchmark harness to report the mean/min/max/stddev rows the paper's
/// evaluation section describes.
class StatAccumulator {
 public:
  StatAccumulator() = default;

  void Add(double x);

  size_t count() const { return values_.size(); }
  double sum() const { return sum_; }
  double Mean() const;
  double Min() const;
  double Max() const;
  /// Sample standard deviation (n-1 denominator); 0 for fewer than 2 samples.
  double StdDev() const;
  /// Linear-interpolated percentile, p in [0, 100].
  double Percentile(double p) const;

 private:
  std::vector<double> values_;
  double sum_ = 0.0;
};

/// Result of an ordinary least squares fit y = slope * x + intercept.
struct LinearFit {
  double slope = 0.0;
  double intercept = 0.0;
  /// Coefficient of determination in [0, 1]; 1 means a perfect linear fit.
  /// Figure 13 of the paper claims approximately linear relationships; the
  /// benchmarks report this value as evidence.
  double r_squared = 0.0;
};

/// Fits a least-squares line through (x[i], y[i]). Requires x.size() ==
/// y.size() and at least two points; returns a zero fit otherwise.
LinearFit FitLine(const std::vector<double>& x, const std::vector<double>& y);

}  // namespace treediff

#endif  // TREEDIFF_UTIL_STATS_H_
