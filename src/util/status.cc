#include "util/status.h"

namespace treediff {

const char* CodeName(Code code) {
  switch (code) {
    case Code::kOk:
      return "OK";
    case Code::kInvalidArgument:
      return "InvalidArgument";
    case Code::kNotFound:
      return "NotFound";
    case Code::kFailedPrecondition:
      return "FailedPrecondition";
    case Code::kOutOfRange:
      return "OutOfRange";
    case Code::kInternal:
      return "Internal";
    case Code::kParseError:
      return "ParseError";
    case Code::kResourceExhausted:
      return "ResourceExhausted";
    case Code::kDeadlineExceeded:
      return "DeadlineExceeded";
    case Code::kUnavailable:
      return "Unavailable";
    case Code::kDataLoss:
      return "DataLoss";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = CodeName(code_);
  out += ": ";
  out += message_;
  return out;
}

}  // namespace treediff
