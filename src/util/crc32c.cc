#include "util/crc32c.h"

#include <array>

namespace treediff {

namespace {

/// Reflected CRC-32C lookup tables, slicing-by-4: table[0] is the classic
/// byte-at-a-time table, tables 1..3 fold four input bytes per iteration.
struct Crc32cTables {
  uint32_t t[4][256];
};

constexpr Crc32cTables BuildTables() {
  Crc32cTables tables{};
  constexpr uint32_t kPoly = 0x82F63B78u;
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t crc = i;
    for (int bit = 0; bit < 8; ++bit) {
      crc = (crc >> 1) ^ ((crc & 1u) ? kPoly : 0u);
    }
    tables.t[0][i] = crc;
  }
  for (uint32_t i = 0; i < 256; ++i) {
    tables.t[1][i] = (tables.t[0][i] >> 8) ^ tables.t[0][tables.t[0][i] & 0xFF];
    tables.t[2][i] = (tables.t[1][i] >> 8) ^ tables.t[0][tables.t[1][i] & 0xFF];
    tables.t[3][i] = (tables.t[2][i] >> 8) ^ tables.t[0][tables.t[2][i] & 0xFF];
  }
  return tables;
}

constexpr Crc32cTables kTables = BuildTables();

}  // namespace

uint32_t Crc32cExtend(uint32_t crc, const void* data, size_t n) {
  const auto* p = static_cast<const unsigned char*>(data);
  crc = ~crc;
  while (n >= 4) {
    crc ^= static_cast<uint32_t>(p[0]) | (static_cast<uint32_t>(p[1]) << 8) |
           (static_cast<uint32_t>(p[2]) << 16) |
           (static_cast<uint32_t>(p[3]) << 24);
    crc = kTables.t[3][crc & 0xFF] ^ kTables.t[2][(crc >> 8) & 0xFF] ^
          kTables.t[1][(crc >> 16) & 0xFF] ^ kTables.t[0][crc >> 24];
    p += 4;
    n -= 4;
  }
  while (n > 0) {
    crc = (crc >> 8) ^ kTables.t[0][(crc ^ *p) & 0xFF];
    ++p;
    --n;
  }
  return ~crc;
}

}  // namespace treediff
