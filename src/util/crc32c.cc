#include "util/crc32c.h"

#include <array>
#include <cstring>

#if defined(__GNUC__) && (defined(__x86_64__) || defined(__i386__))
#define TREEDIFF_CRC32C_X86 1
#endif
// GCC only: the __builtin_aarch64_crc32c* names below are not exposed by
// clang (whose arm_acle.h route needs -march=+crc globally).
#if defined(__GNUC__) && !defined(__clang__) && defined(__aarch64__) && \
    defined(__linux__)
#define TREEDIFF_CRC32C_ARM 1
#include <sys/auxv.h>
#ifndef HWCAP_CRC32
#define HWCAP_CRC32 (1 << 7)
#endif
#endif

namespace treediff {

namespace {

/// Reflected CRC-32C lookup tables, slicing-by-4: table[0] is the classic
/// byte-at-a-time table, tables 1..3 fold four input bytes per iteration.
struct Crc32cTables {
  uint32_t t[4][256];
};

constexpr Crc32cTables BuildTables() {
  Crc32cTables tables{};
  constexpr uint32_t kPoly = 0x82F63B78u;
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t crc = i;
    for (int bit = 0; bit < 8; ++bit) {
      crc = (crc >> 1) ^ ((crc & 1u) ? kPoly : 0u);
    }
    tables.t[0][i] = crc;
  }
  for (uint32_t i = 0; i < 256; ++i) {
    tables.t[1][i] = (tables.t[0][i] >> 8) ^ tables.t[0][tables.t[0][i] & 0xFF];
    tables.t[2][i] = (tables.t[1][i] >> 8) ^ tables.t[0][tables.t[1][i] & 0xFF];
    tables.t[3][i] = (tables.t[2][i] >> 8) ^ tables.t[0][tables.t[2][i] & 0xFF];
  }
  return tables;
}

constexpr Crc32cTables kTables = BuildTables();

#if defined(TREEDIFF_CRC32C_X86)

/// SSE4.2 CRC32 instruction path, 8 bytes per issue. Compiled for the
/// sse4.2 target regardless of the global -march and only *called* after
/// the runtime CPU check.
__attribute__((target("sse4.2"))) uint32_t ExtendHardware(uint32_t crc,
                                                          const void* data,
                                                          size_t n) {
  const auto* p = static_cast<const unsigned char*>(data);
  crc = ~crc;
#if defined(__x86_64__)
  uint64_t crc64 = crc;
  while (n >= 8) {
    uint64_t word;
    std::memcpy(&word, p, 8);
    crc64 = __builtin_ia32_crc32di(crc64, word);
    p += 8;
    n -= 8;
  }
  crc = static_cast<uint32_t>(crc64);
#endif
  while (n >= 4) {
    uint32_t word;
    std::memcpy(&word, p, 4);
    crc = __builtin_ia32_crc32si(crc, word);
    p += 4;
    n -= 4;
  }
  while (n > 0) {
    crc = __builtin_ia32_crc32qi(crc, *p);
    ++p;
    --n;
  }
  return ~crc;
}

bool DetectHardware() { return __builtin_cpu_supports("sse4.2") != 0; }

#elif defined(TREEDIFF_CRC32C_ARM)

/// ARMv8 CRC32C instruction path (the optional CRC32 extension), 8 bytes
/// per issue. Guarded by the HWCAP_CRC32 runtime check.
__attribute__((target("+crc"))) uint32_t ExtendHardware(uint32_t crc,
                                                        const void* data,
                                                        size_t n) {
  const auto* p = static_cast<const unsigned char*>(data);
  crc = ~crc;
  while (n >= 8) {
    uint64_t word;
    std::memcpy(&word, p, 8);
    crc = __builtin_aarch64_crc32cx(crc, word);
    p += 8;
    n -= 8;
  }
  while (n >= 4) {
    uint32_t word;
    std::memcpy(&word, p, 4);
    crc = __builtin_aarch64_crc32cw(crc, word);
    p += 4;
    n -= 4;
  }
  while (n > 0) {
    crc = __builtin_aarch64_crc32cb(crc, *p);
    ++p;
    --n;
  }
  return ~crc;
}

bool DetectHardware() {
  return (getauxval(AT_HWCAP) & HWCAP_CRC32) != 0;
}

#else

bool DetectHardware() { return false; }

#endif

/// Resolved once, before main spawns any threads (function-local static
/// initialization is itself thread-safe anyway).
bool HardwareEnabled() {
  static const bool enabled = DetectHardware();
  return enabled;
}

}  // namespace

namespace internal {

uint32_t Crc32cExtendSoftware(uint32_t crc, const void* data, size_t n) {
  const auto* p = static_cast<const unsigned char*>(data);
  crc = ~crc;
  while (n >= 4) {
    crc ^= static_cast<uint32_t>(p[0]) | (static_cast<uint32_t>(p[1]) << 8) |
           (static_cast<uint32_t>(p[2]) << 16) |
           (static_cast<uint32_t>(p[3]) << 24);
    crc = kTables.t[3][crc & 0xFF] ^ kTables.t[2][(crc >> 8) & 0xFF] ^
          kTables.t[1][(crc >> 16) & 0xFF] ^ kTables.t[0][crc >> 24];
    p += 4;
    n -= 4;
  }
  while (n > 0) {
    crc = (crc >> 8) ^ kTables.t[0][(crc ^ *p) & 0xFF];
    ++p;
    --n;
  }
  return ~crc;
}

}  // namespace internal

bool Crc32cHardwareEnabled() { return HardwareEnabled(); }

uint32_t Crc32cExtend(uint32_t crc, const void* data, size_t n) {
#if defined(TREEDIFF_CRC32C_X86) || defined(TREEDIFF_CRC32C_ARM)
  if (HardwareEnabled()) return ExtendHardware(crc, data, n);
#endif
  return internal::Crc32cExtendSoftware(crc, data, n);
}

}  // namespace treediff
