#ifndef TREEDIFF_UTIL_SOCKET_H_
#define TREEDIFF_UTIL_SOCKET_H_

#include <cstddef>
#include <cstdint>
#include <string>

#include "util/status.h"

namespace treediff {

/// Thin POSIX socket vocabulary for the network front end (src/net) and its
/// clients: RAII fd ownership plus the handful of listen/connect/option
/// calls everything else is built from. IPv4 only — the serving surface is
/// loopback and datacenter-internal, where v4 is universal; nothing here
/// precludes adding v6 later.

/// A file descriptor that closes itself. Move-only, like the resource.
class OwnedFd {
 public:
  OwnedFd() = default;
  explicit OwnedFd(int fd) : fd_(fd) {}
  ~OwnedFd() { Reset(); }

  OwnedFd(OwnedFd&& other) noexcept : fd_(other.Release()) {}
  OwnedFd& operator=(OwnedFd&& other) noexcept {
    if (this != &other) {
      Reset();
      fd_ = other.Release();
    }
    return *this;
  }
  OwnedFd(const OwnedFd&) = delete;
  OwnedFd& operator=(const OwnedFd&) = delete;

  int get() const { return fd_; }
  bool valid() const { return fd_ >= 0; }

  /// Gives up ownership without closing.
  int Release() {
    const int fd = fd_;
    fd_ = -1;
    return fd;
  }

  /// Closes now (idempotent).
  void Reset();

 private:
  int fd_ = -1;
};

/// A listening TCP socket on `host:port` (SO_REUSEADDR, the given backlog).
/// Port 0 binds an ephemeral port — read it back with LocalPort.
StatusOr<OwnedFd> ListenTcp(const std::string& host, uint16_t port,
                            int backlog = 128);

/// A connected TCP socket to `host:port` (blocking connect).
StatusOr<OwnedFd> ConnectTcp(const std::string& host, uint16_t port);

/// The port a bound socket actually landed on (for port 0 listeners).
StatusOr<uint16_t> LocalPort(int fd);

/// O_NONBLOCK on/off.
Status SetNonBlocking(int fd, bool nonblocking = true);

/// TCP_NODELAY: the request/response protocol is latency-bound, and Nagle
/// pessimizes pipelined small frames.
Status SetNoDelay(int fd);

/// Blocking write of the whole buffer (EINTR-restarted). For the simple
/// blocking client and tools; the server never blocks on a socket.
Status WriteAll(int fd, const void* data, size_t len);

/// Blocking read of exactly `len` bytes (EINTR-restarted). Fails with
/// kUnavailable on EOF before `len` bytes.
Status ReadExact(int fd, void* data, size_t len);

}  // namespace treediff

#endif  // TREEDIFF_UTIL_SOCKET_H_
