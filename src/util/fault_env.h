#ifndef TREEDIFF_UTIL_FAULT_ENV_H_
#define TREEDIFF_UTIL_FAULT_ENV_H_

#include <cstdint>
#include <limits>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "util/io.h"

namespace treediff {

/// Test-only file systems for crash and corruption testing. These live in a
/// separate library (`treediff_faultenv`) linked only by tests and fault
/// benchmarks, so no fault-injection code is compiled into the release
/// store path — the production binaries see only Env::Default().

/// An in-memory Env that models durability the way a real disk does: every
/// file tracks a `synced` watermark, and bytes appended after the last
/// Sync() are *not* durable. DropUnsynced() simulates the OS page cache
/// vanishing in a power loss; what survives is exactly the synced prefix.
class MemEnv : public Env {
 public:
  struct FileState {
    std::string data;
    uint64_t synced = 0;  // data[0, synced) has been fsync'd.
  };

  // Env interface.
  StatusOr<std::unique_ptr<WritableFile>> NewWritableFile(
      const std::string& path, bool truncate) override;
  StatusOr<std::unique_ptr<RandomAccessFile>> NewRandomAccessFile(
      const std::string& path) override;
  bool FileExists(const std::string& path) override;
  Status RenameFile(const std::string& from, const std::string& to) override;
  Status TruncateFile(const std::string& path, uint64_t size) override;
  Status DeleteFile(const std::string& path) override;

  // Crash and corruption hooks.

  /// Discards every byte written after the last Sync() of every file — the
  /// pessimistic power-loss model.
  void DropUnsynced();

  /// XORs `mask` into byte `offset` of `path` (bit flips for checksum
  /// tests). Fails if the file or offset does not exist.
  Status CorruptByte(const std::string& path, uint64_t offset, uint8_t mask);

  /// The raw bytes of `path` (test inspection).
  StatusOr<std::string> FileBytes(const std::string& path) const;

 private:
  friend class MemWritableFile;
  friend class MemRandomAccessFile;
  std::map<std::string, std::shared_ptr<FileState>> files_;
};

/// Deterministic fault plan for one FaultInjectingEnv run. Every field uses
/// kNever (disabled) by default; a test enables exactly the faults it wants
/// so failures reproduce from (seed, plan) alone.
struct FaultPlan {
  static constexpr uint64_t kNever = std::numeric_limits<uint64_t>::max();

  /// Crash when this many cumulative bytes have been appended across all
  /// writable files: the append that crosses the threshold persists only
  /// the prefix up to it (a torn write), and the env goes down.
  uint64_t crash_at_byte = kNever;

  /// Fail the Nth Sync() call (1-based) and take the env down; the data the
  /// sync covered stays unsynced (it may later be dropped by a crash).
  uint64_t fail_sync_at = kNever;

  /// Crash *during* the Nth Sync() call (1-based): the sync neither
  /// completes nor reports — the caller never learns whether its bytes are
  /// durable. Models power loss inside fsync.
  uint64_t crash_during_sync_at = kNever;
};

/// Wraps a base Env (typically MemEnv) and injects the faults described by
/// a FaultPlan. After a fault fires the env is "down": every subsequent
/// file operation fails with kInternal, like a machine that lost power.
/// ClearFault() models the restart, after which the store can be reopened
/// and recovery exercised against whatever bytes survived.
class FaultInjectingEnv : public Env {
 public:
  explicit FaultInjectingEnv(Env* base, FaultPlan plan = {})
      : base_(base), plan_(plan) {}

  StatusOr<std::unique_ptr<WritableFile>> NewWritableFile(
      const std::string& path, bool truncate) override;
  StatusOr<std::unique_ptr<RandomAccessFile>> NewRandomAccessFile(
      const std::string& path) override;
  bool FileExists(const std::string& path) override;
  Status RenameFile(const std::string& from, const std::string& to) override;
  Status TruncateFile(const std::string& path, uint64_t size) override;
  Status DeleteFile(const std::string& path) override;

  /// Cumulative bytes appended through this env (fault points are byte
  /// offsets into this stream).
  uint64_t bytes_written() const { return bytes_written_; }

  /// Total Sync() calls observed.
  uint64_t sync_calls() const { return sync_calls_; }

  /// True once a planned fault has fired.
  bool down() const { return down_; }

  /// Restart: subsequent operations reach the base env again. The plan does
  /// not re-arm; counters keep running.
  void ClearFault() { down_ = false; }

 private:
  friend class FaultWritableFile;

  Status CheckDown(const char* op) const {
    if (down_) {
      return Status::Internal(std::string("injected fault: env is down (") +
                              op + ")");
    }
    return Status::Ok();
  }

  Env* base_;
  FaultPlan plan_;
  uint64_t bytes_written_ = 0;
  uint64_t sync_calls_ = 0;
  bool down_ = false;
};

}  // namespace treediff

#endif  // TREEDIFF_UTIL_FAULT_ENV_H_
