#ifndef TREEDIFF_UTIL_FAULT_ENV_H_
#define TREEDIFF_UTIL_FAULT_ENV_H_

#include <cstdint>
#include <limits>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "util/io.h"
#include "util/mutex.h"
#include "util/random.h"
#include "util/thread_annotations.h"

namespace treediff {

/// Test-only file systems for crash and corruption testing. These live in a
/// separate library (`treediff_faultenv`) linked only by tests and fault
/// benchmarks, so no fault-injection code is compiled into the release
/// store path — the production binaries see only Env::Default().
///
/// Both environments are thread-safe: the chaos harness drives a
/// DiffService's worker pool, commit threads, and a scrubber through one
/// env concurrently, so every file-state access is serialized on internal
/// mutexes (checked by the thread-safety analysis).

/// An in-memory Env that models durability the way a real disk does: every
/// file tracks a `synced` watermark, and bytes appended after the last
/// Sync() are *not* durable. DropUnsynced() simulates the OS page cache
/// vanishing in a power loss; what survives is exactly the synced prefix.
///
/// Semantics deliberately match POSIX where tests depend on the difference:
/// RenameFile atomically replaces an existing destination (rename(2)),
/// TruncateFile past EOF extends with zero bytes (ftruncate(2)), and
/// CorruptByte can flip bytes in the unsynced suffix (page-cache rot that a
/// later crash erases).
class MemEnv : public Env {
 public:
  struct FileState {
    Mutex mu;
    std::string data GUARDED_BY(mu);
    uint64_t synced GUARDED_BY(mu) = 0;  // data[0, synced) has been fsync'd.
  };

  // Env interface.
  StatusOr<std::unique_ptr<WritableFile>> NewWritableFile(
      const std::string& path, bool truncate) override EXCLUDES(mu_);
  StatusOr<std::unique_ptr<RandomAccessFile>> NewRandomAccessFile(
      const std::string& path) override EXCLUDES(mu_);
  bool FileExists(const std::string& path) override EXCLUDES(mu_);
  Status RenameFile(const std::string& from, const std::string& to) override
      EXCLUDES(mu_);
  Status TruncateFile(const std::string& path, uint64_t size) override
      EXCLUDES(mu_);
  Status DeleteFile(const std::string& path) override EXCLUDES(mu_);

  // Crash and corruption hooks.

  /// Discards every byte written after the last Sync() of every file — the
  /// pessimistic power-loss model.
  void DropUnsynced() EXCLUDES(mu_);

  /// XORs `mask` into byte `offset` of `path` (bit flips for checksum
  /// tests). Fails if the file or offset does not exist. Works on synced
  /// and unsynced bytes alike; a flip past the synced watermark models
  /// page-cache rot and vanishes with DropUnsynced().
  Status CorruptByte(const std::string& path, uint64_t offset, uint8_t mask)
      EXCLUDES(mu_);

  /// The raw bytes of `path` (test inspection).
  StatusOr<std::string> FileBytes(const std::string& path) const EXCLUDES(mu_);

  /// The synced watermark of `path` (test inspection).
  StatusOr<uint64_t> SyncedBytes(const std::string& path) const EXCLUDES(mu_);

  /// Paths of every file, sorted (test inspection).
  std::vector<std::string> ListFiles() const EXCLUDES(mu_);

 private:
  friend class MemWritableFile;
  friend class MemRandomAccessFile;
  using FileStatePtr = std::shared_ptr<FileState>;

  FileStatePtr Find(const std::string& path) const EXCLUDES(mu_);

  mutable Mutex mu_;
  std::map<std::string, FileStatePtr> files_ GUARDED_BY(mu_);
};

/// Deterministic fault plan for one FaultInjectingEnv run. Every fault is
/// disabled by default; a test enables exactly the faults it wants so
/// failures reproduce from (seed, plan) alone.
///
/// Two fault families:
///  * **Terminal** (crash_at_byte, fail_sync_at, crash_during_sync_at):
///    the machine dies — after one fires, every operation fails until
///    ClearFault() models the restart.
///  * **Transient** (the probabilistic fields): one operation fails with
///    kUnavailable (or returns short data) and the env keeps running —
///    the flaky-disk model the retry and self-healing paths are built for.
struct FaultPlan {
  static constexpr uint64_t kNever = std::numeric_limits<uint64_t>::max();

  /// Crash when this many cumulative bytes have been appended across all
  /// writable files: the append that crosses the threshold persists only
  /// the prefix up to it (a torn write), and the env goes down.
  uint64_t crash_at_byte = kNever;

  /// Fail the Nth Sync() call (1-based) and take the env down; the data the
  /// sync covered stays unsynced (it may later be dropped by a crash).
  uint64_t fail_sync_at = kNever;

  /// Crash *during* the Nth Sync() call (1-based): the sync neither
  /// completes nor reports — the caller never learns whether its bytes are
  /// durable. Models power loss inside fsync.
  uint64_t crash_during_sync_at = kNever;

  /// Seeds the probabilistic faults below. Same (seed, op sequence) →
  /// same faults. Note that a multithreaded caller's op *interleaving* is
  /// scheduler-dependent; determinism holds per op stream, which is what
  /// the chaos harness's recovery property needs.
  uint64_t seed = 0;

  /// Append fails with kUnavailable *before any byte reaches the file* —
  /// the clean-failure half of write(2) (the torn half is crash_at_byte).
  double transient_append_p = 0.0;

  /// Sync fails with kUnavailable; the covered bytes stay unsynced. A
  /// correct caller must not simply re-fsync and believe the second OK
  /// (the fsyncgate lesson) — the store rotates to a fresh log instead.
  double transient_sync_p = 0.0;

  /// Read fails with kUnavailable.
  double transient_read_p = 0.0;

  /// Append persists a random strict prefix of the data, then fails with
  /// kUnavailable while the env stays up — a torn write the caller *hears
  /// about*, unlike crash_at_byte. Models a partially shipped replication
  /// batch or a torn follower tail: the receiver must truncate back to its
  /// last known-good offset before retrying, or the garbage prefix corrupts
  /// everything appended after it.
  double torn_append_p = 0.0;

  /// RenameFile fails with kUnavailable and performs no rename — the
  /// atomic-swap step of rotation and follower resync flaking.
  double transient_rename_p = 0.0;

  /// TruncateFile fails with kUnavailable and changes nothing — the
  /// tail-repair step of follower catch-up flaking.
  double transient_truncate_p = 0.0;

  /// Read returns a strict prefix of the available bytes (a short read not
  /// at EOF). Callers that know the file size must detect and retry.
  double short_read_p = 0.0;

  /// ENOSPC: once cumulative appended bytes reach this cap, the append
  /// that crosses it writes the prefix that fits and fails with
  /// kResourceExhausted; later appends fail outright. The env stays up
  /// (reads and syncs still work) — a full disk, not a dead machine.
  uint64_t disk_capacity_bytes = kNever;

  /// Per-op latency injection: with probability `op_delay_p` an operation
  /// sleeps `op_delay_seconds` first. Shakes out interleavings under TSan.
  double op_delay_p = 0.0;
  double op_delay_seconds = 0.0;
};

/// Wraps a base Env (typically MemEnv) and injects the faults described by
/// a FaultPlan. After a *terminal* fault fires the env is "down": every
/// subsequent file operation fails with kInternal, like a machine that
/// lost power. ClearFault() models the restart, after which the store can
/// be reopened and recovery exercised against whatever bytes survived.
/// Transient faults fail one operation and leave the env up.
class FaultInjectingEnv : public Env {
 public:
  explicit FaultInjectingEnv(Env* base, FaultPlan plan = {})
      : base_(base), plan_(plan), rng_(plan.seed) {}

  StatusOr<std::unique_ptr<WritableFile>> NewWritableFile(
      const std::string& path, bool truncate) override EXCLUDES(mu_);
  StatusOr<std::unique_ptr<RandomAccessFile>> NewRandomAccessFile(
      const std::string& path) override EXCLUDES(mu_);
  bool FileExists(const std::string& path) override;
  Status RenameFile(const std::string& from, const std::string& to) override
      EXCLUDES(mu_);
  Status TruncateFile(const std::string& path, uint64_t size) override
      EXCLUDES(mu_);
  Status DeleteFile(const std::string& path) override EXCLUDES(mu_);

  /// Cumulative bytes appended through this env (fault points are byte
  /// offsets into this stream).
  uint64_t bytes_written() const EXCLUDES(mu_);

  /// Total Sync() calls observed.
  uint64_t sync_calls() const EXCLUDES(mu_);

  /// Transient faults injected so far (append + sync + read + short read).
  uint64_t transient_faults() const EXCLUDES(mu_);

  /// True once a planned terminal fault has fired.
  bool down() const EXCLUDES(mu_);

  /// Restart: subsequent operations reach the base env again. The plan does
  /// not re-arm; counters keep running.
  void ClearFault() EXCLUDES(mu_);

  /// Disables the probabilistic faults from now on (verification phases of
  /// chaos tests read through the same env without injected flakiness).
  void DisableTransientFaults() EXCLUDES(mu_);

  /// Re-arms the probabilistic faults. Chaos tests bootstrap their fixtures
  /// through a quiet env, then flip the storm on for the traffic phase.
  void EnableTransientFaults() EXCLUDES(mu_);

 private:
  friend class FaultWritableFile;
  friend class FaultRandomAccessFile;

  Status CheckDown(const char* op) const REQUIRES(mu_);
  void MaybeDelay() EXCLUDES(mu_);
  bool Flip(double p) REQUIRES(mu_);  // Bernoulli(p) unless disabled.

  Env* base_;
  FaultPlan plan_;
  mutable Mutex mu_;
  Rng rng_ GUARDED_BY(mu_);
  bool transient_enabled_ GUARDED_BY(mu_) = true;
  uint64_t bytes_written_ GUARDED_BY(mu_) = 0;
  uint64_t sync_calls_ GUARDED_BY(mu_) = 0;
  uint64_t transient_faults_ GUARDED_BY(mu_) = 0;
  bool down_ GUARDED_BY(mu_) = false;
};

}  // namespace treediff

#endif  // TREEDIFF_UTIL_FAULT_ENV_H_
