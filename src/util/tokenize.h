#ifndef TREEDIFF_UTIL_TOKENIZE_H_
#define TREEDIFF_UTIL_TOKENIZE_H_

#include <string>
#include <string_view>
#include <vector>

namespace treediff {

/// Splits `text` into whitespace-separated words. Consecutive whitespace is
/// collapsed; leading/trailing whitespace is ignored. Words keep punctuation
/// attached ("end." stays "end.") unless `strip_punct` is true, in which case
/// leading and trailing ASCII punctuation is removed and words are lowercased
/// so that "The," and "the" compare equal.
std::vector<std::string> SplitWords(std::string_view text,
                                    bool strip_punct = false);

/// Returns `text` with leading and trailing ASCII whitespace removed.
std::string_view TrimWhitespace(std::string_view text);

/// Collapses every run of whitespace (including newlines) in `text` to a
/// single space and trims the ends. Used to normalize sentence values.
std::string CollapseWhitespace(std::string_view text);

/// True if `text` is empty or consists solely of ASCII whitespace.
bool IsBlank(std::string_view text);

/// Joins `parts` with `sep` between consecutive elements.
std::string JoinStrings(const std::vector<std::string>& parts,
                        std::string_view sep);

/// Returns true if `text` starts with `prefix`.
bool StartsWith(std::string_view text, std::string_view prefix);

/// Returns true if `text` ends with `suffix`.
bool EndsWith(std::string_view text, std::string_view suffix);

}  // namespace treediff

#endif  // TREEDIFF_UTIL_TOKENIZE_H_
