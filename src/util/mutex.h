#ifndef TREEDIFF_UTIL_MUTEX_H_
#define TREEDIFF_UTIL_MUTEX_H_

#include <chrono>
#include <condition_variable>
#include <mutex>
#include <shared_mutex>

#include "util/thread_annotations.h"

namespace treediff {

/// The project's lock vocabulary: thin wrappers over the standard library
/// primitives that carry Clang thread-safety capabilities, so every guarded
/// structure in the concurrent subsystems (thread pool, metrics, tree
/// cache, diff service, version store) is checked at compile time instead
/// of probabilistically by TSan. Use `Mutex` + `MutexLock` and annotate the
/// protected members `GUARDED_BY(mu_)`; docs/static-analysis.md has the
/// full conventions.

/// An exclusive lock (std::mutex) visible to the analysis.
class CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() ACQUIRE() { mu_.lock(); }
  void Unlock() RELEASE() { mu_.unlock(); }
  bool TryLock() TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  friend class CondVar;
  std::mutex mu_;
};

/// A reader/writer lock (std::shared_mutex) visible to the analysis.
/// Writers use Lock/Unlock (or MutexLock is not applicable — use
/// WriterMutexLock); readers use ReaderLock/ReaderUnlock or
/// ReaderMutexLock.
class CAPABILITY("shared_mutex") SharedMutex {
 public:
  SharedMutex() = default;
  SharedMutex(const SharedMutex&) = delete;
  SharedMutex& operator=(const SharedMutex&) = delete;

  void Lock() ACQUIRE() { mu_.lock(); }
  void Unlock() RELEASE() { mu_.unlock(); }
  void ReaderLock() ACQUIRE_SHARED() { mu_.lock_shared(); }
  void ReaderUnlock() RELEASE_SHARED() { mu_.unlock_shared(); }

 private:
  std::shared_mutex mu_;
};

/// RAII exclusive guard over a Mutex.
class SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex* mu) ACQUIRE(mu) : mu_(mu) { mu_->Lock(); }
  ~MutexLock() RELEASE() { mu_->Unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex* const mu_;
};

/// RAII exclusive guard over a SharedMutex (the write side).
class SCOPED_CAPABILITY WriterMutexLock {
 public:
  explicit WriterMutexLock(SharedMutex* mu) ACQUIRE(mu) : mu_(mu) {
    mu_->Lock();
  }
  ~WriterMutexLock() RELEASE() { mu_->Unlock(); }

  WriterMutexLock(const WriterMutexLock&) = delete;
  WriterMutexLock& operator=(const WriterMutexLock&) = delete;

 private:
  SharedMutex* const mu_;
};

/// RAII shared guard over a SharedMutex (the read side).
class SCOPED_CAPABILITY ReaderMutexLock {
 public:
  explicit ReaderMutexLock(SharedMutex* mu) ACQUIRE_SHARED(mu) : mu_(mu) {
    mu_->ReaderLock();
  }
  ~ReaderMutexLock() RELEASE() { mu_->ReaderUnlock(); }

  ReaderMutexLock(const ReaderMutexLock&) = delete;
  ReaderMutexLock& operator=(const ReaderMutexLock&) = delete;

 private:
  SharedMutex* const mu_;
};

/// A condition variable bound to Mutex (the LevelDB port pattern: adopt the
/// already-held std::mutex for the wait, release it back un-owned after).
/// Waiters must hold the mutex — the REQUIRES annotation makes forgetting
/// that a compile error under the analysis, where std::condition_variable
/// with a bare std::unique_lock is invisible to it.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Atomically releases `*mu`, waits, and reacquires it before returning.
  /// As with any condition wait, spurious wakeups happen: call in a loop
  /// that rechecks the predicate.
  void Wait(Mutex* mu) REQUIRES(mu) {
    std::unique_lock<std::mutex> lock(mu->mu_, std::adopt_lock);
    cv_.wait(lock);
    lock.release();
  }

  /// Timed Wait: returns after `seconds` elapse or an earlier Signal,
  /// whichever comes first (plus the usual spurious wakeups — recheck the
  /// predicate either way).
  void WaitFor(Mutex* mu, double seconds) REQUIRES(mu) {
    std::unique_lock<std::mutex> lock(mu->mu_, std::adopt_lock);
    cv_.wait_for(lock, std::chrono::duration<double>(seconds));
    lock.release();
  }

  void Signal() { cv_.notify_one(); }
  void SignalAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace treediff

#endif  // TREEDIFF_UTIL_MUTEX_H_
