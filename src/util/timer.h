#ifndef TREEDIFF_UTIL_TIMER_H_
#define TREEDIFF_UTIL_TIMER_H_

#include <chrono>

namespace treediff {

/// A steady-clock stopwatch for benchmark harness timing.
class WallTimer {
 public:
  WallTimer() : start_(std::chrono::steady_clock::now()) {}

  /// Resets the start time to now.
  void Restart() { start_ = std::chrono::steady_clock::now(); }

  /// Seconds elapsed since construction or the last Restart().
  double ElapsedSeconds() const {
    auto now = std::chrono::steady_clock::now();
    return std::chrono::duration<double>(now - start_).count();
  }

  /// Microseconds elapsed since construction or the last Restart().
  double ElapsedMicros() const { return ElapsedSeconds() * 1e6; }

 private:
  std::chrono::steady_clock::time_point start_;
};

}  // namespace treediff

#endif  // TREEDIFF_UTIL_TIMER_H_
