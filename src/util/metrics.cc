#include "util/metrics.h"

#include <bit>
#include <cmath>
#include <cstdio>

namespace treediff {

namespace {

constexpr double kFirstBound = 1e-6;

/// Relaxed double accumulation over an atomic<uint64_t> bit pattern.
void AddDouble(std::atomic<uint64_t>* bits, double delta) {
  uint64_t old_bits = bits->load(std::memory_order_relaxed);
  for (;;) {
    const double updated = std::bit_cast<double>(old_bits) + delta;
    if (bits->compare_exchange_weak(old_bits, std::bit_cast<uint64_t>(updated),
                                    std::memory_order_relaxed)) {
      return;
    }
  }
}

}  // namespace

double Histogram::BucketBound(int i) {
  return kFirstBound * std::ldexp(1.0, i);
}

void Histogram::Observe(double value) {
  int bucket = kBuckets;  // Overflow unless a bound fits.
  for (int i = 0; i < kBuckets; ++i) {
    if (value <= BucketBound(i)) {
      bucket = i;
      break;
    }
  }
  buckets_[static_cast<size_t>(bucket)].fetch_add(1,
                                                  std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  AddDouble(&sum_bits_, value);
}

double Histogram::Sum() const {
  return std::bit_cast<double>(sum_bits_.load(std::memory_order_relaxed));
}

double Histogram::Mean() const {
  const uint64_t n = Count();
  return n == 0 ? 0.0 : Sum() / static_cast<double>(n);
}

double Histogram::Quantile(double q) const {
  const uint64_t total = Count();
  if (total == 0) return 0.0;
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  const double rank = q * static_cast<double>(total);
  double seen = 0.0;
  for (int i = 0; i <= kBuckets; ++i) {
    const double in_bucket = static_cast<double>(
        buckets_[static_cast<size_t>(i)].load(std::memory_order_relaxed));
    if (in_bucket == 0.0) continue;
    if (seen + in_bucket >= rank) {
      if (i == kBuckets) return BucketBound(kBuckets - 1);  // Overflow.
      const double lo = i == 0 ? 0.0 : BucketBound(i - 1);
      const double hi = BucketBound(i);
      const double frac = (rank - seen) / in_bucket;
      return lo + (hi - lo) * frac;
    }
    seen += in_bucket;
  }
  return BucketBound(kBuckets - 1);
}

namespace {

/// "foo_total{tenant=\"x\"}" -> "foo_total"; label-free names pass through.
std::string BaseName(const std::string& name) {
  const size_t brace = name.find('{');
  return brace == std::string::npos ? name : name.substr(0, brace);
}

void AppendHeader(std::string* out, const std::string& base,
                  const char* type, std::string* last_base) {
  if (base == *last_base) return;  // One header per metric family.
  *last_base = base;
  out->append("# HELP ").append(base).append(" ").append(base).append("\n");
  out->append("# TYPE ").append(base).append(" ").append(type).append("\n");
}

}  // namespace

std::string MetricsRegistry::PrometheusExposition() const {
  MutexLock lock(&mu_);
  std::string out;
  char line[192];
  std::string last_base;
  for (const auto& [name, c] : counters_) {
    AppendHeader(&out, BaseName(name), "counter", &last_base);
    (void)std::snprintf(line, sizeof line, "%s %llu\n", name.c_str(),
                        static_cast<unsigned long long>(c->Value()));
    out += line;
  }
  for (const auto& [name, h] : histograms_) {
    AppendHeader(&out, BaseName(name), "histogram", &last_base);
    uint64_t cumulative = 0;
    for (int i = 0; i < Histogram::kBuckets; ++i) {
      cumulative += h->BucketCount(i);
      (void)std::snprintf(line, sizeof line, "%s_bucket{le=\"%.9g\"} %llu\n",
                          name.c_str(), Histogram::BucketBound(i),
                          static_cast<unsigned long long>(cumulative));
      out += line;
    }
    (void)std::snprintf(line, sizeof line, "%s_bucket{le=\"+Inf\"} %llu\n",
                        name.c_str(),
                        static_cast<unsigned long long>(h->Count()));
    out += line;
    (void)std::snprintf(line, sizeof line, "%s_sum %.9g\n", name.c_str(),
                        h->Sum());
    out += line;
    (void)std::snprintf(line, sizeof line, "%s_count %llu\n", name.c_str(),
                        static_cast<unsigned long long>(h->Count()));
    out += line;
  }
  return out;
}

Counter* MetricsRegistry::counter(const std::string& name) {
  MutexLock lock(&mu_);
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return slot.get();
}

Histogram* MetricsRegistry::histogram(const std::string& name) {
  MutexLock lock(&mu_);
  auto& slot = histograms_[name];
  if (!slot) slot = std::make_unique<Histogram>();
  return slot.get();
}

std::string MetricsRegistry::TextExposition() const {
  MutexLock lock(&mu_);
  std::string out;
  char line[160];
  for (const auto& [name, c] : counters_) {
    (void)std::snprintf(line, sizeof line, "%s %llu\n", name.c_str(),
                  static_cast<unsigned long long>(c->Value()));
    out += line;
  }
  for (const auto& [name, h] : histograms_) {
    (void)std::snprintf(line, sizeof line, "%s_count %llu\n", name.c_str(),
                  static_cast<unsigned long long>(h->Count()));
    out += line;
    (void)std::snprintf(line, sizeof line, "%s_sum %.9g\n", name.c_str(),
                        h->Sum());
    out += line;
    for (const double q : {0.5, 0.9, 0.99}) {
      (void)std::snprintf(line, sizeof line, "%s{quantile=\"%.2g\"} %.9g\n",
                    name.c_str(), q, h->Quantile(q));
      out += line;
    }
  }
  return out;
}

}  // namespace treediff
