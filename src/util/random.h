#ifndef TREEDIFF_UTIL_RANDOM_H_
#define TREEDIFF_UTIL_RANDOM_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace treediff {

/// A small, fast, deterministic PRNG (xoshiro256**). All randomized workloads
/// in tests and benchmarks go through this class so that runs are reproducible
/// from a seed; std::mt19937 is avoided because its streams differ across
/// standard library implementations of the distributions.
class Rng {
 public:
  /// Seeds the generator. Two Rng instances with the same seed produce the
  /// same stream on every platform.
  explicit Rng(uint64_t seed);

  /// Returns the next raw 64-bit value.
  uint64_t Next();

  /// Returns a uniformly distributed integer in [0, bound). `bound` must be
  /// greater than zero.
  uint64_t Uniform(uint64_t bound);

  /// Returns a uniformly distributed integer in [lo, hi] inclusive.
  /// Requires lo <= hi.
  int64_t UniformInRange(int64_t lo, int64_t hi);

  /// Returns a uniformly distributed double in [0, 1).
  double NextDouble();

  /// Returns true with probability `p` (clamped to [0, 1]).
  bool Bernoulli(double p);

  /// Shuffles `v` in place with a Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>* v) {
    if (v->empty()) return;
    for (size_t i = v->size() - 1; i > 0; --i) {
      size_t j = static_cast<size_t>(Uniform(i + 1));
      std::swap((*v)[i], (*v)[j]);
    }
  }

 private:
  uint64_t state_[4];
};

/// Samples ranks from a Zipf(s) distribution over {0, ..., n-1}: rank r is
/// drawn with probability proportional to 1/(r+1)^s. Used to generate
/// natural-language-like word frequency distributions for synthetic
/// documents (Section 8 workloads).
class ZipfSampler {
 public:
  /// Builds the cumulative distribution. `n` must be >= 1; `s` is the skew
  /// (s = 0 is uniform, s ~ 1 approximates English word frequencies).
  ZipfSampler(size_t n, double s);

  /// Draws one rank in [0, n).
  size_t Sample(Rng* rng) const;

  size_t size() const { return cdf_.size(); }

 private:
  std::vector<double> cdf_;
};

}  // namespace treediff

#endif  // TREEDIFF_UTIL_RANDOM_H_
