#ifndef TREEDIFF_UTIL_METRICS_H_
#define TREEDIFF_UTIL_METRICS_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>

#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace treediff {

/// A monotonically increasing event count. Lock-free: one relaxed atomic
/// add per Increment, so counters sit on the service's hottest paths.
class Counter {
 public:
  void Increment(uint64_t n = 1) { v_.fetch_add(n, std::memory_order_relaxed); }
  uint64_t Value() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> v_{0};
};

/// A fixed-bucket latency/size histogram. Buckets are exponential —
/// upper bounds 1e-6 * 2^i for i in [0, kBuckets), i.e. 1 microsecond up to
/// ~134 seconds when observations are in seconds — plus an overflow bucket.
/// Observe is lock-free (two relaxed atomic adds and a CAS loop for the
/// sum); quantiles are estimated by linear interpolation inside the bucket
/// containing the requested rank, which is accurate to bucket resolution
/// (a factor of 2) — the standard precision/overhead trade of counting
/// histograms.
class Histogram {
 public:
  static constexpr int kBuckets = 28;

  void Observe(double value);

  uint64_t Count() const { return count_.load(std::memory_order_relaxed); }
  double Sum() const;
  double Mean() const;

  /// Estimated q-quantile (0 < q < 1) of everything observed; 0 with no
  /// observations. Overflowed observations report the top bucket bound.
  double Quantile(double q) const;

  /// Upper bound of bucket `i` (inclusive).
  static double BucketBound(int i);

  /// Observations in bucket `i` (i == kBuckets is the overflow bucket).
  /// Exposed for the Prometheus exposition, which needs cumulative
  /// per-bucket counts, not just quantile estimates.
  uint64_t BucketCount(int i) const {
    return buckets_[static_cast<size_t>(i)].load(std::memory_order_relaxed);
  }

 private:
  std::array<std::atomic<uint64_t>, kBuckets + 1> buckets_{};
  std::atomic<uint64_t> count_{0};
  std::atomic<uint64_t> sum_bits_{0};  // double, stored via bit_cast CAS.
};

/// A named registry of counters and histograms — what the DiffService
/// exposes for scraping. Registration (counter()/histogram()) takes a lock
/// and is meant for startup; the returned pointers are stable for the
/// registry's lifetime, so steady-state recording is pure atomics on the
/// cached pointers ("lock-cheap": the lock is never on the request path).
class MetricsRegistry {
 public:
  /// The counter/histogram named `name`, created on first use.
  Counter* counter(const std::string& name) EXCLUDES(mu_);
  Histogram* histogram(const std::string& name) EXCLUDES(mu_);

  /// Text exposition, one metric per line, names sorted:
  ///   <name> <value>
  ///   <name>_count <n> / <name>_sum <s> / <name>{quantile="0.5"} <v> ...
  std::string TextExposition() const EXCLUDES(mu_);

  /// Prometheus text exposition format (version 0.0.4), the wire format a
  /// Prometheus scraper expects from the HTTP `/metrics` endpoint:
  ///
  ///   # HELP <base> <base>
  ///   # TYPE <base> counter
  ///   <name> <value>
  ///
  /// for counters, and for histograms the cumulative-bucket form
  ///
  ///   # TYPE <name> histogram
  ///   <name>_bucket{le="<bound>"} <cumulative count>
  ///   ...
  ///   <name>_bucket{le="+Inf"} <total>
  ///   <name>_sum <sum> / <name>_count <total>
  ///
  /// Registered names may already carry labels (`foo_total{k="v"}`); the
  /// base name for # HELP / # TYPE is everything before the '{', and the
  /// header lines are emitted once per base name.
  std::string PrometheusExposition() const EXCLUDES(mu_);

 private:
  mutable Mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_ GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<Histogram>> histograms_
      GUARDED_BY(mu_);
};

}  // namespace treediff

#endif  // TREEDIFF_UTIL_METRICS_H_
