#ifndef TREEDIFF_UTIL_STATUS_H_
#define TREEDIFF_UTIL_STATUS_H_

#include <cassert>
#include <optional>
#include <string>
#include <utility>

namespace treediff {

/// Error codes used throughout the library. The public API does not throw
/// exceptions; fallible operations return Status or StatusOr<T>.
enum class Code {
  kOk = 0,
  kInvalidArgument = 1,
  kNotFound = 2,
  kFailedPrecondition = 3,
  kOutOfRange = 4,
  kInternal = 5,
  kParseError = 6,
  kResourceExhausted = 7,
  kDeadlineExceeded = 8,
  kUnavailable = 9,
  kDataLoss = 10,
};

/// Returns a human-readable name for a status code ("OK", "InvalidArgument",
/// ...). Never returns null.
const char* CodeName(Code code);

/// A lightweight success-or-error result, modeled after the Status idiom used
/// by production database engines. An OK status carries no message; an error
/// status carries a code and a message describing what went wrong.
///
/// The class is [[nodiscard]]: a call that returns Status and ignores it is
/// a compile error under -Werror=unused-result (on by default via -Wall
/// -Werror), because a dropped Status is a silently swallowed failure.
/// Where dropping really is the intent — best-effort cleanup, metrics
/// writes — say so in code with `.IgnoreError()`.
class [[nodiscard]] Status {
 public:
  /// Constructs an OK status.
  Status() : code_(Code::kOk) {}

  /// Constructs a status with the given code and message. A message on an OK
  /// status is ignored.
  Status(Code code, std::string message)
      : code_(code), message_(std::move(message)) {}

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) = default;
  Status& operator=(Status&&) = default;

  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(Code::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(Code::kNotFound, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(Code::kFailedPrecondition, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(Code::kOutOfRange, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(Code::kInternal, std::move(msg));
  }
  static Status ParseError(std::string msg) {
    return Status(Code::kParseError, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(Code::kResourceExhausted, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(Code::kDeadlineExceeded, std::move(msg));
  }
  /// A transient fault (flaky medium, interrupted syscall, overload): the
  /// operation may well succeed if retried. The retry layer (util/retry.h)
  /// treats exactly this code as retryable.
  static Status Unavailable(std::string msg) {
    return Status(Code::kUnavailable, std::move(msg));
  }
  /// Durable data is gone or unusable (corruption past what recovery could
  /// salvage, a version lost to a damaged log region). Not retryable.
  static Status DataLoss(std::string msg) {
    return Status(Code::kDataLoss, std::move(msg));
  }

  bool ok() const { return code_ == Code::kOk; }
  Code code() const { return code_; }
  const std::string& message() const { return message_; }

  /// The explicit escape hatch from [[nodiscard]]: drops this status on the
  /// floor, on purpose, visibly. Use only where a failure genuinely has no
  /// consumer (best-effort work whose fallback is "carry on").
  void IgnoreError() const {}

  /// Renders "OK" or "<CodeName>: <message>".
  std::string ToString() const;

 private:
  Code code_;
  std::string message_;
};

/// Either a value of type T or an error Status. Accessing the value of an
/// error result is a programming error (checked by assert in debug builds).
/// [[nodiscard]] like Status: discarding a StatusOr discards an error.
template <typename T>
class [[nodiscard]] StatusOr {
 public:
  /// Constructs from a value (implicit by design, mirroring absl::StatusOr).
  StatusOr(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)

  /// Constructs from an error status. `status.ok()` must be false.
  StatusOr(Status status)  // NOLINT(runtime/explicit)
      : status_(std::move(status)) {
    assert(!status_.ok() && "StatusOr constructed from OK status");
  }

  bool ok() const { return value_.has_value(); }
  const Status& status() const { return status_; }

  /// See Status::IgnoreError.
  void IgnoreError() const {}

  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  Status status_;
  std::optional<T> value_;
};

}  // namespace treediff

/// Propagates an error Status from an expression, returning it from the
/// enclosing function if it is not OK.
#define TREEDIFF_RETURN_IF_ERROR(expr)              \
  do {                                              \
    ::treediff::Status _st = (expr);                \
    if (!_st.ok()) return _st;                      \
  } while (0)

/// Consumes a Status that is OK by construction (the caller has already
/// validated every precondition): asserts in debug builds, deliberately
/// drops the status in release builds. This is the explicit spelling of
/// the old `Status st = ...; assert(st.ok()); (void)st;` idiom, kept
/// greppable now that Status is [[nodiscard]].
#define TREEDIFF_CHECK_OK(expr)                     \
  do {                                              \
    const ::treediff::Status _st = (expr);          \
    assert(_st.ok());                               \
    _st.IgnoreError();                              \
  } while (0)

#endif  // TREEDIFF_UTIL_STATUS_H_
