#ifndef TREEDIFF_UTIL_STATUS_H_
#define TREEDIFF_UTIL_STATUS_H_

#include <cassert>
#include <optional>
#include <string>
#include <utility>

namespace treediff {

/// Error codes used throughout the library. The public API does not throw
/// exceptions; fallible operations return Status or StatusOr<T>.
enum class Code {
  kOk = 0,
  kInvalidArgument = 1,
  kNotFound = 2,
  kFailedPrecondition = 3,
  kOutOfRange = 4,
  kInternal = 5,
  kParseError = 6,
  kResourceExhausted = 7,
  kDeadlineExceeded = 8,
};

/// Returns a human-readable name for a status code ("OK", "InvalidArgument",
/// ...). Never returns null.
const char* CodeName(Code code);

/// A lightweight success-or-error result, modeled after the Status idiom used
/// by production database engines. An OK status carries no message; an error
/// status carries a code and a message describing what went wrong.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(Code::kOk) {}

  /// Constructs a status with the given code and message. A message on an OK
  /// status is ignored.
  Status(Code code, std::string message)
      : code_(code), message_(std::move(message)) {}

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) = default;
  Status& operator=(Status&&) = default;

  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(Code::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(Code::kNotFound, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(Code::kFailedPrecondition, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(Code::kOutOfRange, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(Code::kInternal, std::move(msg));
  }
  static Status ParseError(std::string msg) {
    return Status(Code::kParseError, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(Code::kResourceExhausted, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(Code::kDeadlineExceeded, std::move(msg));
  }

  bool ok() const { return code_ == Code::kOk; }
  Code code() const { return code_; }
  const std::string& message() const { return message_; }

  /// Renders "OK" or "<CodeName>: <message>".
  std::string ToString() const;

 private:
  Code code_;
  std::string message_;
};

/// Either a value of type T or an error Status. Accessing the value of an
/// error result is a programming error (checked by assert in debug builds).
template <typename T>
class StatusOr {
 public:
  /// Constructs from a value (implicit by design, mirroring absl::StatusOr).
  StatusOr(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)

  /// Constructs from an error status. `status.ok()` must be false.
  StatusOr(Status status)  // NOLINT(runtime/explicit)
      : status_(std::move(status)) {
    assert(!status_.ok() && "StatusOr constructed from OK status");
  }

  bool ok() const { return value_.has_value(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  Status status_;
  std::optional<T> value_;
};

}  // namespace treediff

/// Propagates an error Status from an expression, returning it from the
/// enclosing function if it is not OK.
#define TREEDIFF_RETURN_IF_ERROR(expr)              \
  do {                                              \
    ::treediff::Status _st = (expr);                \
    if (!_st.ok()) return _st;                      \
  } while (0)

#endif  // TREEDIFF_UTIL_STATUS_H_
