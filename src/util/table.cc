#include "util/table.h"

#include <cstdio>
#include <utility>

namespace treediff {

TablePrinter::TablePrinter(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

void TablePrinter::AddRow(std::vector<std::string> row) {
  row.resize(headers_.size());
  rows_.push_back(std::move(row));
}

std::string TablePrinter::Fmt(double value, int precision) {
  char buf[64];
  (void)std::snprintf(buf, sizeof(buf), "%.*f", precision, value);
  return buf;
}

std::string TablePrinter::Fmt(size_t value) {
  char buf[32];
  (void)std::snprintf(buf, sizeof(buf), "%zu", value);
  return buf;
}

std::string TablePrinter::Fmt(int64_t value) {
  char buf[32];
  (void)std::snprintf(buf, sizeof(buf),
                      "%lld", static_cast<long long>(value));
  return buf;
}

std::string TablePrinter::ToString() const {
  std::vector<size_t> widths(headers_.size());
  for (size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  auto render_row = [&](const std::vector<std::string>& row) {
    std::string line = "|";
    for (size_t c = 0; c < headers_.size(); ++c) {
      const std::string& cell = c < row.size() ? row[c] : std::string();
      line += " " + cell + std::string(widths[c] - cell.size(), ' ') + " |";
    }
    line += "\n";
    return line;
  };

  std::string out = render_row(headers_);
  std::string sep = "|";
  for (size_t c = 0; c < headers_.size(); ++c) {
    sep += std::string(widths[c] + 2, '-') + "|";
  }
  out += sep + "\n";
  for (const auto& row : rows_) out += render_row(row);
  return out;
}

void TablePrinter::Print() const {
  // Best-effort human-readable output; a short write to stdout is not an
  // error the caller can act on.
  (void)std::fputs(ToString().c_str(), stdout);
}

}  // namespace treediff
