#ifndef TREEDIFF_UTIL_BUDGET_H_
#define TREEDIFF_UTIL_BUDGET_H_

#include <chrono>
#include <cstddef>
#include <limits>
#include <string>

#include "util/status.h"

namespace treediff {

/// A resource budget for one diff (or parse, or apply) call: a wall-clock
/// deadline, a node-visit cap, a comparison cap, and an arena-memory
/// ceiling. The pipeline threads a `const Budget*` through every phase and
/// probes it at phase boundaries and inner-loop strides; on exhaustion the
/// caller degrades along a documented ladder (see DiffOptions / DiffReport
/// in core/diff.h and docs/robustness.md) instead of running unbounded.
///
/// Semantics:
///  * All limits default to "unlimited"; a default-constructed Budget never
///    exhausts but still counts work, so it doubles as an instrumentation
///    probe.
///  * Counters keep accumulating after exhaustion (they are reporting data);
///    `exhausted()` is sticky — once a limit trips, every later probe fails
///    until `Rearm()`.
///  * The deadline clock starts when the deadline is set (or at `Rearm()`).
///    Deadline probes hit the clock only every `kDeadlineStride` calls so a
///    probe costs a couple of increments and compares on the fast path.
///  * A Budget is shared mutable state probed through `const` pointers
///    (counters are `mutable`); it is NOT thread-safe — use one Budget per
///    concurrent pipeline invocation.
class Budget {
 public:
  static constexpr size_t kUnlimited = std::numeric_limits<size_t>::max();

  /// Deadline probes touch the clock once per this many Check() calls.
  static constexpr size_t kDeadlineStride = 64;

  /// Unlimited budget (counts work, never exhausts).
  Budget() : start_(Clock::now()), deadline_(TimePoint::max()) {}

  /// Convenience: a budget with only a wall-clock deadline, starting now.
  static Budget Deadline(double seconds) {
    Budget b;
    b.set_deadline_seconds(seconds);
    return b;
  }

  // ----- Limit configuration (chainable) -----

  /// Sets the wall-clock deadline `seconds` from now and restarts the clock.
  Budget& set_deadline_seconds(double seconds) {
    start_ = Clock::now();
    deadline_ = start_ + std::chrono::duration_cast<Clock::duration>(
                             std::chrono::duration<double>(seconds));
    return *this;
  }

  /// Caps the number of nodes the pipeline may visit.
  Budget& set_node_cap(size_t cap) {
    node_cap_ = cap;
    return *this;
  }

  /// Caps the number of comparisons (leaf compare() calls and partner
  /// checks, the paper's r1 + r2).
  Budget& set_comparison_cap(size_t cap) {
    comparison_cap_ = cap;
    return *this;
  }

  /// Caps the bytes of working memory (DP tables, tree clones) the pipeline
  /// may hold at once.
  Budget& set_arena_cap_bytes(size_t cap) {
    arena_cap_ = cap;
    return *this;
  }

  /// Clears the exhausted flag, zeroes the counters, and restarts the
  /// deadline clock (the deadline keeps its configured duration).
  void Rearm() {
    const auto duration = deadline_ == TimePoint::max()
                              ? Clock::duration::max()
                              : deadline_ - start_;
    start_ = Clock::now();
    deadline_ = duration == Clock::duration::max() ? TimePoint::max()
                                                   : start_ + duration;
    nodes_ = comparisons_ = arena_ = peak_arena_ = probe_calls_ = 0;
    exhausted_code_ = Code::kOk;
    exhausted_detail_.clear();
  }

  // ----- Probes (cheap; called from inner loops) -----

  /// Counts `n` visited nodes; false once the budget is exhausted.
  bool ChargeNodes(size_t n = 1) const {
    nodes_ += n;
    if (nodes_ > node_cap_) {
      Trip(Code::kResourceExhausted, "node cap");
    }
    return Check();
  }

  /// Counts `n` comparisons; false once the budget is exhausted.
  bool ChargeComparisons(size_t n = 1) const {
    comparisons_ += n;
    if (comparisons_ > comparison_cap_) {
      Trip(Code::kResourceExhausted, "comparison cap");
    }
    return Check();
  }

  /// Records an allocation of `bytes` of working memory; false once the
  /// budget is exhausted. Pair with ReleaseArena when the memory is freed.
  bool ChargeArena(size_t bytes) const {
    arena_ += bytes;
    if (arena_ > peak_arena_) peak_arena_ = arena_;
    if (arena_ > arena_cap_) {
      Trip(Code::kResourceExhausted, "arena cap");
    }
    return Check();
  }

  /// Records that `bytes` of previously charged working memory were freed.
  void ReleaseArena(size_t bytes) const {
    arena_ = bytes > arena_ ? 0 : arena_ - bytes;
  }

  /// The stride probe: true while the budget holds. Checks the sticky flag
  /// every call and the deadline clock every kDeadlineStride calls.
  bool Check() const {
    if (exhausted_code_ != Code::kOk) return false;
    if ((++probe_calls_ % kDeadlineStride) == 0) return CheckDeadline();
    return true;
  }

  /// The phase-boundary probe: like Check() but always consults the clock.
  bool CheckNow() const {
    if (exhausted_code_ != Code::kOk) return false;
    return CheckDeadline();
  }

  /// Predicts whether an operation needing `nodes` node visits,
  /// `comparisons` comparisons, and `arena_bytes` of working memory can
  /// possibly fit in what remains. Used by the degradation ladder to skip a
  /// rung that is doomed before burning budget on it.
  bool CouldAfford(size_t nodes, size_t comparisons,
                   size_t arena_bytes) const {
    if (exhausted_code_ != Code::kOk) return false;
    if (node_cap_ != kUnlimited && nodes_ + nodes > node_cap_) return false;
    if (comparison_cap_ != kUnlimited &&
        comparisons_ + comparisons > comparison_cap_) {
      return false;
    }
    if (arena_cap_ != kUnlimited && arena_ + arena_bytes > arena_cap_) {
      return false;
    }
    return true;
  }

  // ----- State -----

  bool exhausted() const { return exhausted_code_ != Code::kOk; }

  /// kDeadlineExceeded or kResourceExhausted once tripped; kOk before.
  Code exhaustion_code() const { return exhausted_code_; }

  /// Which limit tripped ("deadline", "node cap", ...); empty before.
  const std::string& exhaustion_detail() const { return exhausted_detail_; }

  /// OK while within budget; the exhaustion Status (code + tripped limit +
  /// counters) once tripped.
  Status ToStatus() const;

  // ----- Counters (for DiffReport) -----

  size_t nodes_visited() const { return nodes_; }
  size_t comparisons() const { return comparisons_; }
  size_t arena_bytes() const { return arena_; }
  size_t peak_arena_bytes() const { return peak_arena_; }

  /// Seconds since the deadline clock (re)started.
  double elapsed_seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  using TimePoint = Clock::time_point;

  bool CheckDeadline() const {
    if (deadline_ != TimePoint::max() && Clock::now() >= deadline_) {
      Trip(Code::kDeadlineExceeded, "deadline");
      return false;
    }
    return true;
  }

  void Trip(Code code, const char* what) const {
    if (exhausted_code_ == Code::kOk) {
      exhausted_code_ = code;
      exhausted_detail_ = what;
    }
  }

  TimePoint start_;
  TimePoint deadline_;
  size_t node_cap_ = kUnlimited;
  size_t comparison_cap_ = kUnlimited;
  size_t arena_cap_ = kUnlimited;

  mutable size_t nodes_ = 0;
  mutable size_t comparisons_ = 0;
  mutable size_t arena_ = 0;
  mutable size_t peak_arena_ = 0;
  mutable size_t probe_calls_ = 0;
  mutable Code exhausted_code_ = Code::kOk;
  mutable std::string exhausted_detail_;
};

// Null-safe wrappers for the `const Budget*` threaded through the pipeline:
// a null budget means "unlimited" and costs one pointer compare.

inline bool BudgetOk(const Budget* b) { return b == nullptr || !b->exhausted(); }

inline bool BudgetCheck(const Budget* b) { return b == nullptr || b->Check(); }

inline bool BudgetCheckNow(const Budget* b) {
  return b == nullptr || b->CheckNow();
}

inline bool BudgetChargeNodes(const Budget* b, size_t n = 1) {
  return b == nullptr || b->ChargeNodes(n);
}

inline bool BudgetChargeComparisons(const Budget* b, size_t n = 1) {
  return b == nullptr || b->ChargeComparisons(n);
}

inline bool BudgetChargeArena(const Budget* b, size_t bytes) {
  return b == nullptr || b->ChargeArena(bytes);
}

inline void BudgetReleaseArena(const Budget* b, size_t bytes) {
  if (b != nullptr) b->ReleaseArena(bytes);
}

/// The exhaustion status of a possibly-null budget (OK for null).
inline Status BudgetStatus(const Budget* b) {
  return b == nullptr ? Status::Ok() : b->ToStatus();
}

/// True for the two codes an exhausted budget produces.
inline bool IsExhaustion(Code code) {
  return code == Code::kResourceExhausted || code == Code::kDeadlineExceeded;
}

}  // namespace treediff

#endif  // TREEDIFF_UTIL_BUDGET_H_
