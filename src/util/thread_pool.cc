#include "util/thread_pool.h"

#include <algorithm>
#include <utility>

namespace treediff {

ThreadPool::ThreadPool(Options options)
    : capacity_(std::max<size_t>(options.queue_capacity, 1)) {
  const int n = std::max(options.num_threads, 1);
  workers_.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() { Shutdown(); }

bool ThreadPool::TrySubmit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (shutdown_ || queue_.size() >= capacity_) return false;
    queue_.push_back(std::move(task));
  }
  not_empty_.notify_one();
  return true;
}

bool ThreadPool::Submit(std::function<void()> task) {
  {
    std::unique_lock<std::mutex> lock(mu_);
    not_full_.wait(lock,
                   [this] { return shutdown_ || queue_.size() < capacity_; });
    if (shutdown_) return false;
    queue_.push_back(std::move(task));
  }
  not_empty_.notify_one();
  return true;
}

size_t ThreadPool::QueueDepth() const {
  std::lock_guard<std::mutex> lock(mu_);
  return queue_.size();
}

void ThreadPool::Shutdown() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (shutdown_ && workers_.empty()) return;
    shutdown_ = true;
  }
  not_empty_.notify_all();
  not_full_.notify_all();
  for (std::thread& w : workers_) {
    if (w.joinable()) w.join();
  }
  workers_.clear();
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      not_empty_.wait(lock, [this] { return shutdown_ || !queue_.empty(); });
      if (queue_.empty()) return;  // Shutdown with a drained queue.
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    not_full_.notify_one();
    task();
  }
}

}  // namespace treediff
