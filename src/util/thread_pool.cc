#include "util/thread_pool.h"

#include <algorithm>
#include <utility>

namespace treediff {

ThreadPool::ThreadPool(Options options)
    : capacity_(std::max<size_t>(options.queue_capacity, 1)) {
  const int n = std::max(options.num_threads, 1);
  num_threads_ = n;
  workers_.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() { Shutdown(); }

bool ThreadPool::TrySubmit(std::function<void()> task) {
  {
    MutexLock lock(&mu_);
    if (shutdown_ || queue_.size() >= capacity_) return false;
    queue_.push_back(std::move(task));
  }
  not_empty_.Signal();
  return true;
}

bool ThreadPool::Submit(std::function<void()> task) {
  {
    MutexLock lock(&mu_);
    while (!shutdown_ && queue_.size() >= capacity_) {
      not_full_.Wait(&mu_);
    }
    if (shutdown_) return false;
    queue_.push_back(std::move(task));
  }
  not_empty_.Signal();
  return true;
}

size_t ThreadPool::QueueDepth() const {
  MutexLock lock(&mu_);
  return queue_.size();
}

void ThreadPool::Shutdown() {
  // Claim the workers under the lock: with concurrent Shutdown calls
  // exactly one caller ends up joining each thread (the losers see an
  // empty vector), where joining the shared vector unlocked would join
  // the same std::thread twice — undefined behavior.
  std::vector<std::thread> claimed;
  {
    MutexLock lock(&mu_);
    shutdown_ = true;
    claimed.swap(workers_);
  }
  not_empty_.SignalAll();
  not_full_.SignalAll();
  for (std::thread& w : claimed) {
    if (w.joinable()) w.join();
  }
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      MutexLock lock(&mu_);
      while (!shutdown_ && queue_.empty()) {
        not_empty_.Wait(&mu_);
      }
      if (queue_.empty()) return;  // Shutdown with a drained queue.
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    not_full_.Signal();
    task();
  }
}

}  // namespace treediff
