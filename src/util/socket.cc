#include "util/socket.h"

#include <arpa/inet.h>
#include <cerrno>
#include <cstring>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

namespace treediff {

namespace {

Status Errno(const std::string& what) {
  return Status::Internal(what + ": " + std::strerror(errno));
}

/// Resolves the two spellings of loopback plus dotted-quad literals; the
/// server never needs a resolver for its own bind/connect surface.
StatusOr<in_addr> ParseHost(const std::string& host) {
  in_addr addr{};
  std::string name = host;
  if (name.empty() || name == "localhost") name = "127.0.0.1";
  if (inet_pton(AF_INET, name.c_str(), &addr) != 1) {
    return Status::InvalidArgument("bad IPv4 address \"" + host + "\"");
  }
  return addr;
}

}  // namespace

void OwnedFd::Reset() {
  if (fd_ >= 0) {
    // Best-effort: a failed close on teardown has no recovery.
    (void)::close(fd_);
    fd_ = -1;
  }
}

StatusOr<OwnedFd> ListenTcp(const std::string& host, uint16_t port,
                            int backlog) {
  StatusOr<in_addr> addr = ParseHost(host);
  if (!addr.ok()) return addr.status();

  OwnedFd fd(::socket(AF_INET, SOCK_STREAM, 0));
  if (!fd.valid()) return Errno("socket");

  const int one = 1;
  if (::setsockopt(fd.get(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof one) !=
      0) {
    return Errno("setsockopt(SO_REUSEADDR)");
  }

  sockaddr_in sa{};
  sa.sin_family = AF_INET;
  sa.sin_port = htons(port);
  sa.sin_addr = *addr;
  if (::bind(fd.get(), reinterpret_cast<sockaddr*>(&sa), sizeof sa) != 0) {
    return Errno("bind " + host + ":" + std::to_string(port));
  }
  if (::listen(fd.get(), backlog) != 0) return Errno("listen");
  return fd;
}

StatusOr<OwnedFd> ConnectTcp(const std::string& host, uint16_t port) {
  StatusOr<in_addr> addr = ParseHost(host);
  if (!addr.ok()) return addr.status();

  OwnedFd fd(::socket(AF_INET, SOCK_STREAM, 0));
  if (!fd.valid()) return Errno("socket");

  sockaddr_in sa{};
  sa.sin_family = AF_INET;
  sa.sin_port = htons(port);
  sa.sin_addr = *addr;
  int rc;
  do {
    rc = ::connect(fd.get(), reinterpret_cast<sockaddr*>(&sa), sizeof sa);
  } while (rc != 0 && errno == EINTR);
  if (rc != 0) {
    return Status::Unavailable("connect " + host + ":" +
                               std::to_string(port) + ": " +
                               std::strerror(errno));
  }
  return fd;
}

StatusOr<uint16_t> LocalPort(int fd) {
  sockaddr_in sa{};
  socklen_t len = sizeof sa;
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&sa), &len) != 0) {
    return Errno("getsockname");
  }
  return ntohs(sa.sin_port);
}

Status SetNonBlocking(int fd, bool nonblocking) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0) return Errno("fcntl(F_GETFL)");
  const int updated =
      nonblocking ? (flags | O_NONBLOCK) : (flags & ~O_NONBLOCK);
  if (::fcntl(fd, F_SETFL, updated) != 0) return Errno("fcntl(F_SETFL)");
  return Status::Ok();
}

Status SetNoDelay(int fd) {
  const int one = 1;
  if (::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one) != 0) {
    return Errno("setsockopt(TCP_NODELAY)");
  }
  return Status::Ok();
}

Status WriteAll(int fd, const void* data, size_t len) {
  const char* p = static_cast<const char*>(data);
  while (len > 0) {
    const ssize_t n = ::write(fd, p, len);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Errno("write");
    }
    p += n;
    len -= static_cast<size_t>(n);
  }
  return Status::Ok();
}

Status ReadExact(int fd, void* data, size_t len) {
  char* p = static_cast<char*>(data);
  while (len > 0) {
    const ssize_t n = ::read(fd, p, len);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Errno("read");
    }
    if (n == 0) {
      return Status::Unavailable("connection closed mid-frame");
    }
    p += n;
    len -= static_cast<size_t>(n);
  }
  return Status::Ok();
}

}  // namespace treediff
