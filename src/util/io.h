#ifndef TREEDIFF_UTIL_IO_H_
#define TREEDIFF_UTIL_IO_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>

#include "util/status.h"

namespace treediff {

/// File-system abstraction in the style of production storage engines: the
/// durable VersionStore writes its commit log through these interfaces, so
/// tests can substitute an in-memory file system with deterministic fault
/// injection (see util/fault_env.h) while the release path talks straight
/// to POSIX. All methods return Status; nothing throws.

/// An append-only file. Writes are buffered by the OS; nothing is durable
/// until Sync() returns OK (the commit protocol relies on this distinction).
class WritableFile {
 public:
  virtual ~WritableFile() = default;

  /// Appends `data` at the end of the file.
  virtual Status Append(std::string_view data) = 0;

  /// Forces everything appended so far to stable storage (fsync).
  virtual Status Sync() = 0;

  /// Closes the file. Append/Sync after Close are errors.
  virtual Status Close() = 0;
};

/// A read-only file addressed by offset (pread semantics; safe for
/// concurrent readers).
class RandomAccessFile {
 public:
  virtual ~RandomAccessFile() = default;

  /// Reads up to `n` bytes starting at `offset`. Short reads at end of file
  /// return the available bytes (possibly empty); they are not errors.
  virtual StatusOr<std::string> Read(uint64_t offset, size_t n) const = 0;

  /// Current size of the file in bytes.
  virtual StatusOr<uint64_t> Size() const = 0;
};

/// Factory for files plus the handful of metadata operations the store
/// needs. `Env::Default()` is the POSIX implementation; tests wrap or
/// replace it.
class Env {
 public:
  virtual ~Env() = default;

  /// Opens `path` for appending. With `truncate` the file is created empty
  /// (O_TRUNC); otherwise existing content is preserved and writes append.
  virtual StatusOr<std::unique_ptr<WritableFile>> NewWritableFile(
      const std::string& path, bool truncate) = 0;

  virtual StatusOr<std::unique_ptr<RandomAccessFile>> NewRandomAccessFile(
      const std::string& path) = 0;

  virtual bool FileExists(const std::string& path) = 0;

  /// Atomically replaces `to` with `from` (POSIX rename) and syncs the
  /// parent directory, so the rename itself is durable — the tmp-file +
  /// rename + fsync idiom used to publish a new store.
  virtual Status RenameFile(const std::string& from, const std::string& to) = 0;

  /// Truncates `path` to `size` bytes and syncs it. Recovery uses this to
  /// discard a torn or corrupt log tail.
  virtual Status TruncateFile(const std::string& path, uint64_t size) = 0;

  virtual Status DeleteFile(const std::string& path) = 0;

  /// The process-wide POSIX environment.
  static Env* Default();
};

}  // namespace treediff

#endif  // TREEDIFF_UTIL_IO_H_
