#include "util/fault_env.h"

#include <algorithm>
#include <utility>

namespace treediff {

// ---------------------------------------------------------------------------
// MemEnv

namespace {
using FileStatePtr = std::shared_ptr<MemEnv::FileState>;
}  // namespace

class MemWritableFile : public WritableFile {
 public:
  explicit MemWritableFile(FileStatePtr state) : state_(std::move(state)) {}

  Status Append(std::string_view data) override {
    if (!state_) return Status::FailedPrecondition("append to closed file");
    state_->data.append(data);
    return Status::Ok();
  }

  Status Sync() override {
    if (!state_) return Status::FailedPrecondition("sync of closed file");
    state_->synced = state_->data.size();
    return Status::Ok();
  }

  Status Close() override {
    state_.reset();
    return Status::Ok();
  }

 private:
  FileStatePtr state_;
};

class MemRandomAccessFile : public RandomAccessFile {
 public:
  explicit MemRandomAccessFile(FileStatePtr state) : state_(std::move(state)) {}

  StatusOr<std::string> Read(uint64_t offset, size_t n) const override {
    const std::string& data = state_->data;
    if (offset >= data.size()) return std::string();
    size_t avail = data.size() - static_cast<size_t>(offset);
    return data.substr(static_cast<size_t>(offset), std::min(n, avail));
  }

  StatusOr<uint64_t> Size() const override {
    return static_cast<uint64_t>(state_->data.size());
  }

 private:
  FileStatePtr state_;
};

StatusOr<std::unique_ptr<WritableFile>> MemEnv::NewWritableFile(
    const std::string& path, bool truncate) {
  FileStatePtr& state = files_[path];
  if (!state || truncate) state = std::make_shared<FileState>();
  return std::unique_ptr<WritableFile>(std::make_unique<MemWritableFile>(state));
}

StatusOr<std::unique_ptr<RandomAccessFile>> MemEnv::NewRandomAccessFile(
    const std::string& path) {
  auto it = files_.find(path);
  if (it == files_.end()) {
    return Status::NotFound("no such file: " + path);
  }
  return std::unique_ptr<RandomAccessFile>(
      std::make_unique<MemRandomAccessFile>(it->second));
}

bool MemEnv::FileExists(const std::string& path) {
  return files_.count(path) > 0;
}

Status MemEnv::RenameFile(const std::string& from, const std::string& to) {
  auto it = files_.find(from);
  if (it == files_.end()) return Status::NotFound("rename: no file " + from);
  // Rename is atomic and durable (the real Env fsyncs the directory); the
  // renamed file keeps its own synced watermark.
  files_[to] = it->second;
  files_.erase(it);
  return Status::Ok();
}

Status MemEnv::TruncateFile(const std::string& path, uint64_t size) {
  auto it = files_.find(path);
  if (it == files_.end()) return Status::NotFound("truncate: no file " + path);
  FileState& st = *it->second;
  if (size < st.data.size()) st.data.resize(static_cast<size_t>(size));
  st.synced = std::min<uint64_t>(st.data.size(), size);
  return Status::Ok();
}

Status MemEnv::DeleteFile(const std::string& path) {
  if (files_.erase(path) == 0) {
    return Status::NotFound("delete: no file " + path);
  }
  return Status::Ok();
}

void MemEnv::DropUnsynced() {
  for (auto& [path, state] : files_) {
    state->data.resize(static_cast<size_t>(state->synced));
  }
}

Status MemEnv::CorruptByte(const std::string& path, uint64_t offset,
                           uint8_t mask) {
  auto it = files_.find(path);
  if (it == files_.end()) return Status::NotFound("corrupt: no file " + path);
  if (offset >= it->second->data.size()) {
    return Status::OutOfRange("corrupt: offset beyond end of " + path);
  }
  it->second->data[static_cast<size_t>(offset)] =
      static_cast<char>(it->second->data[static_cast<size_t>(offset)] ^ mask);
  return Status::Ok();
}

StatusOr<std::string> MemEnv::FileBytes(const std::string& path) const {
  auto it = files_.find(path);
  if (it == files_.end()) return Status::NotFound("no such file: " + path);
  return it->second->data;
}

// ---------------------------------------------------------------------------
// FaultInjectingEnv

class FaultWritableFile : public WritableFile {
 public:
  FaultWritableFile(std::unique_ptr<WritableFile> base, FaultInjectingEnv* env)
      : base_(std::move(base)), env_(env) {}

  Status Append(std::string_view data) override {
    TREEDIFF_RETURN_IF_ERROR(env_->CheckDown("append"));
    uint64_t budget = env_->plan_.crash_at_byte == FaultPlan::kNever
                          ? FaultPlan::kNever
                          : env_->plan_.crash_at_byte - env_->bytes_written_;
    if (budget < data.size()) {
      // Torn write: the prefix reaches the base file, then the lights go
      // out — a failure here is indistinguishable from the crash being
      // simulated, so it is dropped on purpose.
      base_->Append(data.substr(0, budget)).IgnoreError();
      env_->bytes_written_ += budget;
      env_->down_ = true;
      return Status::Internal("injected fault: crash mid-append");
    }
    TREEDIFF_RETURN_IF_ERROR(base_->Append(data));
    env_->bytes_written_ += data.size();
    return Status::Ok();
  }

  Status Sync() override {
    TREEDIFF_RETURN_IF_ERROR(env_->CheckDown("sync"));
    ++env_->sync_calls_;
    if (env_->sync_calls_ == env_->plan_.crash_during_sync_at) {
      // Power loss inside fsync: durability of this data is unknown. Leave
      // the base unsynced (the pessimistic outcome) and go down.
      env_->down_ = true;
      return Status::Internal("injected fault: crash during sync");
    }
    if (env_->sync_calls_ == env_->plan_.fail_sync_at) {
      env_->down_ = true;
      return Status::Internal("injected fault: sync failed");
    }
    return base_->Sync();
  }

  Status Close() override {
    // Closing is allowed even when down (destructors run after a crash).
    return base_->Close();
  }

 private:
  std::unique_ptr<WritableFile> base_;
  FaultInjectingEnv* env_;
};

StatusOr<std::unique_ptr<WritableFile>> FaultInjectingEnv::NewWritableFile(
    const std::string& path, bool truncate) {
  TREEDIFF_RETURN_IF_ERROR(CheckDown("open"));
  auto base = base_->NewWritableFile(path, truncate);
  if (!base.ok()) return base.status();
  return std::unique_ptr<WritableFile>(
      std::make_unique<FaultWritableFile>(std::move(*base), this));
}

StatusOr<std::unique_ptr<RandomAccessFile>>
FaultInjectingEnv::NewRandomAccessFile(const std::string& path) {
  TREEDIFF_RETURN_IF_ERROR(CheckDown("open"));
  return base_->NewRandomAccessFile(path);
}

bool FaultInjectingEnv::FileExists(const std::string& path) {
  return base_->FileExists(path);
}

Status FaultInjectingEnv::RenameFile(const std::string& from,
                                     const std::string& to) {
  TREEDIFF_RETURN_IF_ERROR(CheckDown("rename"));
  return base_->RenameFile(from, to);
}

Status FaultInjectingEnv::TruncateFile(const std::string& path, uint64_t size) {
  TREEDIFF_RETURN_IF_ERROR(CheckDown("truncate"));
  return base_->TruncateFile(path, size);
}

Status FaultInjectingEnv::DeleteFile(const std::string& path) {
  TREEDIFF_RETURN_IF_ERROR(CheckDown("delete"));
  return base_->DeleteFile(path);
}

}  // namespace treediff
