#include "util/fault_env.h"

#include <algorithm>
#include <chrono>
#include <thread>
#include <utility>

namespace treediff {

// ---------------------------------------------------------------------------
// MemEnv
//
// Locking: the env mutex guards the path→state map; each FileState carries
// its own mutex guarding its bytes and watermark. Lock order is always
// map-then-file, and no file lock is held while taking another file's, so
// the pair cannot deadlock. Open files keep the state alive via shared_ptr
// even if the path is deleted or renamed away (POSIX unlink semantics).

namespace {
using FileStatePtr = std::shared_ptr<MemEnv::FileState>;
}  // namespace

class MemWritableFile : public WritableFile {
 public:
  explicit MemWritableFile(FileStatePtr state) : state_(std::move(state)) {}

  Status Append(std::string_view data) override {
    if (!state_) return Status::FailedPrecondition("append to closed file");
    MutexLock lock(&state_->mu);
    state_->data.append(data);
    return Status::Ok();
  }

  Status Sync() override {
    if (!state_) return Status::FailedPrecondition("sync of closed file");
    MutexLock lock(&state_->mu);
    state_->synced = state_->data.size();
    return Status::Ok();
  }

  Status Close() override {
    state_.reset();
    return Status::Ok();
  }

 private:
  FileStatePtr state_;
};

class MemRandomAccessFile : public RandomAccessFile {
 public:
  explicit MemRandomAccessFile(FileStatePtr state) : state_(std::move(state)) {}

  StatusOr<std::string> Read(uint64_t offset, size_t n) const override {
    MutexLock lock(&state_->mu);
    const std::string& data = state_->data;
    if (offset >= data.size()) return std::string();
    size_t avail = data.size() - static_cast<size_t>(offset);
    return data.substr(static_cast<size_t>(offset), std::min(n, avail));
  }

  StatusOr<uint64_t> Size() const override {
    MutexLock lock(&state_->mu);
    return static_cast<uint64_t>(state_->data.size());
  }

 private:
  FileStatePtr state_;
};

MemEnv::FileStatePtr MemEnv::Find(const std::string& path) const {
  MutexLock lock(&mu_);
  auto it = files_.find(path);
  return it == files_.end() ? nullptr : it->second;
}

StatusOr<std::unique_ptr<WritableFile>> MemEnv::NewWritableFile(
    const std::string& path, bool truncate) {
  FileStatePtr state;
  {
    MutexLock lock(&mu_);
    FileStatePtr& slot = files_[path];
    if (!slot || truncate) slot = std::make_shared<FileState>();
    state = slot;
  }
  return std::unique_ptr<WritableFile>(
      std::make_unique<MemWritableFile>(std::move(state)));
}

StatusOr<std::unique_ptr<RandomAccessFile>> MemEnv::NewRandomAccessFile(
    const std::string& path) {
  FileStatePtr state = Find(path);
  if (!state) return Status::NotFound("no such file: " + path);
  return std::unique_ptr<RandomAccessFile>(
      std::make_unique<MemRandomAccessFile>(std::move(state)));
}

bool MemEnv::FileExists(const std::string& path) {
  MutexLock lock(&mu_);
  return files_.count(path) > 0;
}

Status MemEnv::RenameFile(const std::string& from, const std::string& to) {
  MutexLock lock(&mu_);
  auto it = files_.find(from);
  if (it == files_.end()) return Status::NotFound("rename: no file " + from);
  // rename(2): atomically replaces any existing destination; a reader that
  // already opened the old `to` keeps reading the old bytes (its state stays
  // alive through the shared_ptr). The renamed file keeps its own synced
  // watermark; the real Env fsyncs the directory to make the swap durable.
  files_[to] = it->second;
  files_.erase(it);
  return Status::Ok();
}

Status MemEnv::TruncateFile(const std::string& path, uint64_t size) {
  FileStatePtr state = Find(path);
  if (!state) return Status::NotFound("truncate: no file " + path);
  MutexLock lock(&state->mu);
  // ftruncate(2): shrinking discards the tail, growing extends with zero
  // bytes, and the durable watermark never rises — synced can only shrink
  // to the new size (the zero fill is not fsync'd data).
  state->data.resize(static_cast<size_t>(size), '\0');
  state->synced = std::min(state->synced, size);
  return Status::Ok();
}

Status MemEnv::DeleteFile(const std::string& path) {
  MutexLock lock(&mu_);
  if (files_.erase(path) == 0) {
    return Status::NotFound("delete: no file " + path);
  }
  return Status::Ok();
}

void MemEnv::DropUnsynced() {
  MutexLock lock(&mu_);
  for (auto& [path, state] : files_) {
    MutexLock file_lock(&state->mu);
    state->data.resize(static_cast<size_t>(state->synced));
  }
}

Status MemEnv::CorruptByte(const std::string& path, uint64_t offset,
                           uint8_t mask) {
  FileStatePtr state = Find(path);
  if (!state) return Status::NotFound("corrupt: no file " + path);
  MutexLock lock(&state->mu);
  if (offset >= state->data.size()) {
    return Status::OutOfRange("corrupt: offset beyond end of " + path);
  }
  state->data[static_cast<size_t>(offset)] =
      static_cast<char>(state->data[static_cast<size_t>(offset)] ^ mask);
  return Status::Ok();
}

StatusOr<std::string> MemEnv::FileBytes(const std::string& path) const {
  FileStatePtr state = Find(path);
  if (!state) return Status::NotFound("no such file: " + path);
  MutexLock lock(&state->mu);
  return state->data;
}

StatusOr<uint64_t> MemEnv::SyncedBytes(const std::string& path) const {
  FileStatePtr state = Find(path);
  if (!state) return Status::NotFound("no such file: " + path);
  MutexLock lock(&state->mu);
  return state->synced;
}

std::vector<std::string> MemEnv::ListFiles() const {
  MutexLock lock(&mu_);
  std::vector<std::string> paths;
  paths.reserve(files_.size());
  for (const auto& [path, state] : files_) paths.push_back(path);
  return paths;  // std::map iterates sorted.
}

// ---------------------------------------------------------------------------
// FaultInjectingEnv

Status FaultInjectingEnv::CheckDown(const char* op) const {
  if (down_) {
    return Status::Internal(std::string("injected fault: env down during ") +
                            op);
  }
  return Status::Ok();
}

bool FaultInjectingEnv::Flip(double p) {
  if (!transient_enabled_ || p <= 0.0) return false;
  return rng_.Bernoulli(p);
}

void FaultInjectingEnv::MaybeDelay() {
  if (plan_.op_delay_p <= 0.0 || plan_.op_delay_seconds <= 0.0) return;
  bool delay;
  {
    MutexLock lock(&mu_);
    delay = Flip(plan_.op_delay_p);
  }
  if (delay) {
    std::this_thread::sleep_for(
        std::chrono::duration<double>(plan_.op_delay_seconds));
  }
}

class FaultWritableFile : public WritableFile {
 public:
  FaultWritableFile(std::unique_ptr<WritableFile> base, FaultInjectingEnv* env)
      : base_(std::move(base)), env_(env) {}

  Status Append(std::string_view data) override {
    env_->MaybeDelay();
    uint64_t torn = 0;       // Bytes that still reach the base file.
    bool crash = false;      // Terminal: env goes down after the torn write.
    bool enospc = false;     // Permanent but the env stays up.
    bool torn_transient = false;  // Transient torn write; env stays up.
    {
      MutexLock lock(&env_->mu_);
      TREEDIFF_RETURN_IF_ERROR(env_->CheckDown("append"));
      if (env_->Flip(env_->plan_.transient_append_p)) {
        // Clean transient failure: no byte reaches the file, so the caller
        // may simply retry the same append.
        ++env_->transient_faults_;
        return Status::Unavailable("injected fault: transient append failure");
      }
      if (!data.empty() && env_->Flip(env_->plan_.torn_append_p)) {
        // Dirty transient failure: a strict prefix lands, the error is
        // reported, and the env keeps running. Retrying the same append
        // without first truncating back duplicates the prefix — the torn
        // follower tail the replication catch-up must repair.
        torn = env_->rng_.Uniform(data.size());
        ++env_->transient_faults_;
        env_->bytes_written_ += torn;
        torn_transient = true;
      }
      if (!torn_transient) {
        const uint64_t crash_budget =
            env_->plan_.crash_at_byte == FaultPlan::kNever
                ? FaultPlan::kNever
                : env_->plan_.crash_at_byte - env_->bytes_written_;
        const uint64_t space_budget =
            env_->plan_.disk_capacity_bytes == FaultPlan::kNever
                ? FaultPlan::kNever
                : env_->plan_.disk_capacity_bytes -
                      std::min(env_->bytes_written_,
                               env_->plan_.disk_capacity_bytes);
        if (crash_budget < data.size() && crash_budget <= space_budget) {
          torn = crash_budget;
          crash = true;
          env_->down_ = true;
        } else if (space_budget < data.size()) {
          torn = space_budget;
          enospc = true;
        } else {
          torn = data.size();
        }
        env_->bytes_written_ += torn;
      }
    }
    if (torn_transient) {
      base_->Append(data.substr(0, static_cast<size_t>(torn))).IgnoreError();
      return Status::Unavailable("injected fault: torn append (prefix wrote)");
    }
    if (crash) {
      // Torn write: the prefix reaches the base file, then the lights go
      // out — a failure here is indistinguishable from the crash being
      // simulated, so it is dropped on purpose.
      base_->Append(data.substr(0, static_cast<size_t>(torn))).IgnoreError();
      return Status::Internal("injected fault: crash mid-append");
    }
    if (enospc) {
      // ENOSPC: write(2) stores what fits and reports the shortfall; the
      // machine stays up, so this is permanent-until-space-frees, not a
      // crash. The partial record is exactly the torn tail recovery handles.
      base_->Append(data.substr(0, static_cast<size_t>(torn))).IgnoreError();
      return Status::ResourceExhausted("injected fault: disk full");
    }
    return base_->Append(data);
  }

  Status Sync() override {
    env_->MaybeDelay();
    {
      MutexLock lock(&env_->mu_);
      TREEDIFF_RETURN_IF_ERROR(env_->CheckDown("sync"));
      ++env_->sync_calls_;
      if (env_->sync_calls_ == env_->plan_.crash_during_sync_at) {
        // Power loss inside fsync: durability of this data is unknown. Leave
        // the base unsynced (the pessimistic outcome) and go down.
        env_->down_ = true;
        return Status::Internal("injected fault: crash during sync");
      }
      if (env_->sync_calls_ == env_->plan_.fail_sync_at) {
        env_->down_ = true;
        return Status::Internal("injected fault: sync failed");
      }
      if (env_->Flip(env_->plan_.transient_sync_p)) {
        // The sync reports failure and the covered bytes stay volatile —
        // per fsyncgate, a second fsync saying OK would prove nothing, so
        // the store must rotate to a fresh file instead of retrying here.
        ++env_->transient_faults_;
        return Status::Unavailable("injected fault: transient sync failure");
      }
    }
    return base_->Sync();
  }

  Status Close() override {
    // Closing is allowed even when down (destructors run after a crash).
    return base_->Close();
  }

 private:
  std::unique_ptr<WritableFile> base_;
  FaultInjectingEnv* env_;
};

class FaultRandomAccessFile : public RandomAccessFile {
 public:
  FaultRandomAccessFile(std::unique_ptr<RandomAccessFile> base,
                        FaultInjectingEnv* env)
      : base_(std::move(base)), env_(env) {}

  StatusOr<std::string> Read(uint64_t offset, size_t n) const override {
    env_->MaybeDelay();
    bool short_read = false;
    {
      MutexLock lock(&env_->mu_);
      TREEDIFF_RETURN_IF_ERROR(env_->CheckDown("read"));
      if (env_->Flip(env_->plan_.transient_read_p)) {
        ++env_->transient_faults_;
        return Status::Unavailable("injected fault: transient read failure");
      }
      short_read = env_->Flip(env_->plan_.short_read_p);
    }
    auto data = base_->Read(offset, n);
    if (!data.ok()) return data;
    if (short_read && !data->empty()) {
      // A short read not at end of file: a strict prefix of the available
      // bytes. Readers that trusted Size() must notice and retry rather
      // than mistake the missing suffix for a torn log tail.
      size_t keep;
      {
        MutexLock lock(&env_->mu_);
        ++env_->transient_faults_;
        keep = static_cast<size_t>(env_->rng_.Uniform(data->size()));
      }
      data->resize(keep);
    }
    return data;
  }

  StatusOr<uint64_t> Size() const override {
    {
      MutexLock lock(&env_->mu_);
      TREEDIFF_RETURN_IF_ERROR(env_->CheckDown("size"));
    }
    return base_->Size();
  }

 private:
  std::unique_ptr<RandomAccessFile> base_;
  FaultInjectingEnv* env_;
};

StatusOr<std::unique_ptr<WritableFile>> FaultInjectingEnv::NewWritableFile(
    const std::string& path, bool truncate) {
  {
    MutexLock lock(&mu_);
    TREEDIFF_RETURN_IF_ERROR(CheckDown("open"));
  }
  auto base = base_->NewWritableFile(path, truncate);
  if (!base.ok()) return base.status();
  return std::unique_ptr<WritableFile>(
      std::make_unique<FaultWritableFile>(std::move(*base), this));
}

StatusOr<std::unique_ptr<RandomAccessFile>>
FaultInjectingEnv::NewRandomAccessFile(const std::string& path) {
  {
    MutexLock lock(&mu_);
    TREEDIFF_RETURN_IF_ERROR(CheckDown("open"));
  }
  auto base = base_->NewRandomAccessFile(path);
  if (!base.ok()) return base.status();
  return std::unique_ptr<RandomAccessFile>(
      std::make_unique<FaultRandomAccessFile>(std::move(*base), this));
}

bool FaultInjectingEnv::FileExists(const std::string& path) {
  return base_->FileExists(path);
}

Status FaultInjectingEnv::RenameFile(const std::string& from,
                                     const std::string& to) {
  MaybeDelay();
  {
    MutexLock lock(&mu_);
    TREEDIFF_RETURN_IF_ERROR(CheckDown("rename"));
    if (Flip(plan_.transient_rename_p)) {
      // The swap never happened: both names still refer to what they did
      // before, so the caller may retry the whole rename.
      ++transient_faults_;
      return Status::Unavailable("injected fault: transient rename failure");
    }
  }
  return base_->RenameFile(from, to);
}

Status FaultInjectingEnv::TruncateFile(const std::string& path,
                                       uint64_t size) {
  MaybeDelay();
  {
    MutexLock lock(&mu_);
    TREEDIFF_RETURN_IF_ERROR(CheckDown("truncate"));
    if (Flip(plan_.transient_truncate_p)) {
      // Nothing changed; the torn tail the caller wanted gone is still
      // there, so the repair must be retried before any further append.
      ++transient_faults_;
      return Status::Unavailable("injected fault: transient truncate failure");
    }
  }
  return base_->TruncateFile(path, size);
}

Status FaultInjectingEnv::DeleteFile(const std::string& path) {
  {
    MutexLock lock(&mu_);
    TREEDIFF_RETURN_IF_ERROR(CheckDown("delete"));
  }
  return base_->DeleteFile(path);
}

uint64_t FaultInjectingEnv::bytes_written() const {
  MutexLock lock(&mu_);
  return bytes_written_;
}

uint64_t FaultInjectingEnv::sync_calls() const {
  MutexLock lock(&mu_);
  return sync_calls_;
}

uint64_t FaultInjectingEnv::transient_faults() const {
  MutexLock lock(&mu_);
  return transient_faults_;
}

bool FaultInjectingEnv::down() const {
  MutexLock lock(&mu_);
  return down_;
}

void FaultInjectingEnv::ClearFault() {
  MutexLock lock(&mu_);
  down_ = false;
}

void FaultInjectingEnv::DisableTransientFaults() {
  MutexLock lock(&mu_);
  transient_enabled_ = false;
}

void FaultInjectingEnv::EnableTransientFaults() {
  MutexLock lock(&mu_);
  transient_enabled_ = true;
}

}  // namespace treediff
