#ifndef TREEDIFF_UTIL_CRC32C_H_
#define TREEDIFF_UTIL_CRC32C_H_

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace treediff {

/// CRC-32C (Castagnoli polynomial 0x1EDC6F41, reflected 0x82F63B78), the
/// checksum production storage engines use for log records: better burst
/// error detection than CRC-32/ISO. Uses the SSE4.2 (x86) or ARMv8 CRC32
/// hardware instructions when the running CPU has them — detected once at
/// runtime — and falls back to portable slicing-by-4 tables otherwise.
/// Both paths produce identical checksums (asserted by crc32c_test), so
/// logs written on one machine verify on any other.

/// Extends `crc` with `data`. Start from kCrc32cInit (0) for a fresh
/// checksum.
uint32_t Crc32cExtend(uint32_t crc, const void* data, size_t n);

/// True when the runtime dispatch selected the hardware CRC instruction
/// path on this machine.
bool Crc32cHardwareEnabled();

namespace internal {
/// The portable table-driven fallback, exposed so tests can cross-check the
/// hardware path against it on the same inputs.
uint32_t Crc32cExtendSoftware(uint32_t crc, const void* data, size_t n);
}  // namespace internal

/// Checksum of one buffer.
inline uint32_t Crc32c(const void* data, size_t n) {
  return Crc32cExtend(0, data, n);
}
inline uint32_t Crc32c(std::string_view data) {
  return Crc32c(data.data(), data.size());
}

/// Masks a CRC that is itself stored inside checksummed or logged data.
/// Computing the CRC of a string that contains embedded CRCs weakens the
/// checksum (the CRC of a CRC is degenerate); storage formats therefore
/// store a masked value (rotate + offset, the scheme LevelDB popularized).
inline uint32_t Crc32cMask(uint32_t crc) {
  return ((crc >> 15) | (crc << 17)) + 0xa282ead8u;
}

/// Inverse of Crc32cMask.
inline uint32_t Crc32cUnmask(uint32_t masked) {
  uint32_t rot = masked - 0xa282ead8u;
  return (rot >> 17) | (rot << 15);
}

}  // namespace treediff

#endif  // TREEDIFF_UTIL_CRC32C_H_
