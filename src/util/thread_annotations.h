#ifndef TREEDIFF_UTIL_THREAD_ANNOTATIONS_H_
#define TREEDIFF_UTIL_THREAD_ANNOTATIONS_H_

/// Clang thread-safety-analysis attributes (-Wthread-safety), in the
/// conventional unprefixed spelling used by LevelDB and the Clang
/// documentation. On compilers without the analysis (GCC, MSVC) every macro
/// expands to nothing, so annotated code builds everywhere while Clang
/// builds — the `static-analysis` CI job compiles with
/// `-Werror=thread-safety-analysis` — turn lock-discipline violations into
/// compile errors.
///
/// The vocabulary, briefly (docs/static-analysis.md has the conventions):
///  * CAPABILITY marks a class as a lockable resource (util/mutex.h).
///  * GUARDED_BY(mu) on a member: reads and writes require holding `mu`.
///  * PT_GUARDED_BY(mu) on a pointer member: dereferencing requires `mu`
///    (the pointer itself may be read freely, e.g. set-once pointers).
///  * REQUIRES(mu) on a function: the caller must already hold `mu`.
///  * EXCLUDES(mu) on a function: the caller must NOT hold `mu` (the
///    function acquires it itself; prevents self-deadlock).
///  * ACQUIRE/RELEASE annotate the lock primitives themselves.
///  * SCOPED_CAPABILITY marks RAII guards (MutexLock).

#if defined(__clang__) && !defined(SWIG)
#define TREEDIFF_THREAD_ANNOTATION_ATTRIBUTE__(x) __attribute__((x))
#else
#define TREEDIFF_THREAD_ANNOTATION_ATTRIBUTE__(x)  // no-op
#endif

#define CAPABILITY(x) TREEDIFF_THREAD_ANNOTATION_ATTRIBUTE__(capability(x))

#define SCOPED_CAPABILITY TREEDIFF_THREAD_ANNOTATION_ATTRIBUTE__(scoped_lockable)

#define GUARDED_BY(x) TREEDIFF_THREAD_ANNOTATION_ATTRIBUTE__(guarded_by(x))

#define PT_GUARDED_BY(x) TREEDIFF_THREAD_ANNOTATION_ATTRIBUTE__(pt_guarded_by(x))

#define ACQUIRED_BEFORE(...) \
  TREEDIFF_THREAD_ANNOTATION_ATTRIBUTE__(acquired_before(__VA_ARGS__))

#define ACQUIRED_AFTER(...) \
  TREEDIFF_THREAD_ANNOTATION_ATTRIBUTE__(acquired_after(__VA_ARGS__))

#define REQUIRES(...) \
  TREEDIFF_THREAD_ANNOTATION_ATTRIBUTE__(requires_capability(__VA_ARGS__))

#define REQUIRES_SHARED(...) \
  TREEDIFF_THREAD_ANNOTATION_ATTRIBUTE__(requires_shared_capability(__VA_ARGS__))

#define ACQUIRE(...) \
  TREEDIFF_THREAD_ANNOTATION_ATTRIBUTE__(acquire_capability(__VA_ARGS__))

#define ACQUIRE_SHARED(...) \
  TREEDIFF_THREAD_ANNOTATION_ATTRIBUTE__(acquire_shared_capability(__VA_ARGS__))

#define RELEASE(...) \
  TREEDIFF_THREAD_ANNOTATION_ATTRIBUTE__(release_capability(__VA_ARGS__))

#define RELEASE_SHARED(...) \
  TREEDIFF_THREAD_ANNOTATION_ATTRIBUTE__(release_shared_capability(__VA_ARGS__))

#define RELEASE_GENERIC(...) \
  TREEDIFF_THREAD_ANNOTATION_ATTRIBUTE__(release_generic_capability(__VA_ARGS__))

#define TRY_ACQUIRE(...) \
  TREEDIFF_THREAD_ANNOTATION_ATTRIBUTE__(try_acquire_capability(__VA_ARGS__))

#define TRY_ACQUIRE_SHARED(...) \
  TREEDIFF_THREAD_ANNOTATION_ATTRIBUTE__(try_acquire_shared_capability(__VA_ARGS__))

#define EXCLUDES(...) \
  TREEDIFF_THREAD_ANNOTATION_ATTRIBUTE__(locks_excluded(__VA_ARGS__))

#define ASSERT_CAPABILITY(x) \
  TREEDIFF_THREAD_ANNOTATION_ATTRIBUTE__(assert_capability(x))

#define ASSERT_SHARED_CAPABILITY(x) \
  TREEDIFF_THREAD_ANNOTATION_ATTRIBUTE__(assert_shared_capability(x))

#define RETURN_CAPABILITY(x) \
  TREEDIFF_THREAD_ANNOTATION_ATTRIBUTE__(lock_returned(x))

#define NO_THREAD_SAFETY_ANALYSIS \
  TREEDIFF_THREAD_ANNOTATION_ATTRIBUTE__(no_thread_safety_analysis)

#endif  // TREEDIFF_UTIL_THREAD_ANNOTATIONS_H_
