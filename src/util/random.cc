#include "util/random.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace treediff {

namespace {

uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  // Expand the seed through SplitMix64 as recommended by the xoshiro authors;
  // this avoids the all-zero state even for seed == 0.
  uint64_t sm = seed;
  for (auto& s : state_) s = SplitMix64(&sm);
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

uint64_t Rng::Uniform(uint64_t bound) {
  assert(bound > 0);
  // Rejection sampling to avoid modulo bias.
  const uint64_t threshold = -bound % bound;
  for (;;) {
    uint64_t r = Next();
    if (r >= threshold) return r % bound;
  }
}

int64_t Rng::UniformInRange(int64_t lo, int64_t hi) {
  assert(lo <= hi);
  uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
  return lo + static_cast<int64_t>(Uniform(span));
}

double Rng::NextDouble() {
  // 53 random bits scaled into [0, 1).
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

bool Rng::Bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return NextDouble() < p;
}

ZipfSampler::ZipfSampler(size_t n, double s) {
  assert(n >= 1);
  cdf_.resize(n);
  double total = 0.0;
  for (size_t r = 0; r < n; ++r) {
    total += 1.0 / std::pow(static_cast<double>(r + 1), s);
    cdf_[r] = total;
  }
  for (auto& c : cdf_) c /= total;
  cdf_.back() = 1.0;  // Guard against floating point shortfall.
}

size_t ZipfSampler::Sample(Rng* rng) const {
  double u = rng->NextDouble();
  auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  if (it == cdf_.end()) return cdf_.size() - 1;
  return static_cast<size_t>(it - cdf_.begin());
}

}  // namespace treediff
