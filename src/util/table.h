#ifndef TREEDIFF_UTIL_TABLE_H_
#define TREEDIFF_UTIL_TABLE_H_

#include <string>
#include <vector>

namespace treediff {

/// Renders rows of strings as an aligned, pipe-delimited console table. The
/// benchmark binaries use this to print the same rows/series the paper's
/// tables and figures report.
class TablePrinter {
 public:
  /// Creates a table with the given column headers.
  explicit TablePrinter(std::vector<std::string> headers);

  /// Appends a row; missing cells render empty, extra cells are dropped.
  void AddRow(std::vector<std::string> row);

  /// Convenience: formats a double with `precision` digits after the point.
  static std::string Fmt(double value, int precision = 2);
  static std::string Fmt(size_t value);
  static std::string Fmt(int64_t value);

  /// Renders the table, including a header separator line.
  std::string ToString() const;

  /// Prints the rendered table to stdout.
  void Print() const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace treediff

#endif  // TREEDIFF_UTIL_TABLE_H_
