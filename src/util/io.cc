#include "util/io.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>

namespace treediff {

namespace {

// strerror(3) formats into a buffer shared across threads; the store and
// service layers hit these I/O paths concurrently, so use strerror_r into
// caller storage. glibc exposes the GNU overload (returns char*, may not
// use buf) unless strict-POSIX macros select the XSI one (returns int);
// these two overloads normalize whichever the libc provides.
[[maybe_unused]] const char* StrerrorResult(int rc, const char* buf) {
  return rc == 0 ? buf : "unknown error";
}
[[maybe_unused]] const char* StrerrorResult(const char* ret,
                                            const char* /*buf*/) {
  return ret;
}

Status ErrnoStatus(const std::string& op, const std::string& path, int err) {
  char buf[128];
  buf[0] = '\0';
  std::string msg = op + " " + path + ": " +
                    StrerrorResult(strerror_r(err, buf, sizeof(buf)), buf);
  // Classify so the retry layer (util/retry.h) and the store's self-healing
  // paths can tell a fault worth retrying from a permanent answer.
  switch (err) {
    case EINTR:   // Interrupted syscall: retry is the textbook response.
    case EAGAIN:  // Momentarily unable (non-blocking fd, kernel pressure).
    case EIO:     // Flaky medium: a reread/rewrite elsewhere may succeed.
      return Status::Unavailable(std::move(msg));
    case ENOSPC:  // Disk full (and quota): permanent until space is freed.
    case EDQUOT:
      return Status::ResourceExhausted(std::move(msg));
    case ENOENT:
      return Status::NotFound(std::move(msg));
    default:
      return Status::Internal(std::move(msg));
  }
}

class PosixWritableFile : public WritableFile {
 public:
  PosixWritableFile(int fd, std::string path) : fd_(fd), path_(std::move(path)) {}

  ~PosixWritableFile() override {
    if (fd_ >= 0) ::close(fd_);
  }

  Status Append(std::string_view data) override {
    if (fd_ < 0) return Status::FailedPrecondition("append to closed file");
    const char* p = data.data();
    size_t left = data.size();
    while (left > 0) {
      ssize_t n = ::write(fd_, p, left);
      if (n < 0) {
        if (errno == EINTR) continue;
        return ErrnoStatus("write", path_, errno);
      }
      p += n;
      left -= static_cast<size_t>(n);
    }
    return Status::Ok();
  }

  Status Sync() override {
    if (fd_ < 0) return Status::FailedPrecondition("sync of closed file");
    if (::fsync(fd_) != 0) return ErrnoStatus("fsync", path_, errno);
    return Status::Ok();
  }

  Status Close() override {
    if (fd_ < 0) return Status::Ok();
    int fd = fd_;
    fd_ = -1;
    if (::close(fd) != 0) return ErrnoStatus("close", path_, errno);
    return Status::Ok();
  }

 private:
  int fd_;
  std::string path_;
};

class PosixRandomAccessFile : public RandomAccessFile {
 public:
  PosixRandomAccessFile(int fd, std::string path)
      : fd_(fd), path_(std::move(path)) {}

  ~PosixRandomAccessFile() override { ::close(fd_); }

  StatusOr<std::string> Read(uint64_t offset, size_t n) const override {
    std::string out;
    out.resize(n);
    size_t got = 0;
    while (got < n) {
      ssize_t r = ::pread(fd_, out.data() + got, n - got,
                          static_cast<off_t>(offset + got));
      if (r < 0) {
        if (errno == EINTR) continue;
        return ErrnoStatus("pread", path_, errno);
      }
      if (r == 0) break;  // End of file: short read.
      got += static_cast<size_t>(r);
    }
    out.resize(got);
    return out;
  }

  StatusOr<uint64_t> Size() const override {
    struct stat st;
    if (::fstat(fd_, &st) != 0) return ErrnoStatus("fstat", path_, errno);
    return static_cast<uint64_t>(st.st_size);
  }

 private:
  int fd_;
  std::string path_;
};

class PosixEnv : public Env {
 public:
  StatusOr<std::unique_ptr<WritableFile>> NewWritableFile(
      const std::string& path, bool truncate) override {
    int flags = O_WRONLY | O_CREAT | (truncate ? O_TRUNC : O_APPEND);
    int fd = ::open(path.c_str(), flags, 0644);
    if (fd < 0) return ErrnoStatus("open", path, errno);
    return std::unique_ptr<WritableFile>(
        std::make_unique<PosixWritableFile>(fd, path));
  }

  StatusOr<std::unique_ptr<RandomAccessFile>> NewRandomAccessFile(
      const std::string& path) override {
    int fd = ::open(path.c_str(), O_RDONLY);
    if (fd < 0) return ErrnoStatus("open", path, errno);
    // open(2) happily opens a directory read-only; the reads then fail with
    // EISDIR deep inside recovery. Reject it here with a clear message.
    struct stat st;
    if (::fstat(fd, &st) == 0 && S_ISDIR(st.st_mode)) {
      ::close(fd);
      return Status::InvalidArgument("path is a directory, not a store: " +
                                     path);
    }
    return std::unique_ptr<RandomAccessFile>(
        std::make_unique<PosixRandomAccessFile>(fd, path));
  }

  bool FileExists(const std::string& path) override {
    return ::access(path.c_str(), F_OK) == 0;
  }

  Status RenameFile(const std::string& from, const std::string& to) override {
    if (std::rename(from.c_str(), to.c_str()) != 0) {
      return ErrnoStatus("rename", from + " -> " + to, errno);
    }
    // Make the rename itself durable: fsync the containing directory.
    std::string dir = to;
    size_t slash = dir.find_last_of('/');
    dir = slash == std::string::npos ? std::string(".") : dir.substr(0, slash);
    int dfd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
    if (dfd < 0) return ErrnoStatus("open dir", dir, errno);
    int rc = ::fsync(dfd);
    int err = errno;
    ::close(dfd);
    if (rc != 0) return ErrnoStatus("fsync dir", dir, err);
    return Status::Ok();
  }

  Status TruncateFile(const std::string& path, uint64_t size) override {
    if (::truncate(path.c_str(), static_cast<off_t>(size)) != 0) {
      return ErrnoStatus("truncate", path, errno);
    }
    int fd = ::open(path.c_str(), O_WRONLY);
    if (fd < 0) return ErrnoStatus("open", path, errno);
    int rc = ::fsync(fd);
    int err = errno;
    ::close(fd);
    if (rc != 0) return ErrnoStatus("fsync", path, err);
    return Status::Ok();
  }

  Status DeleteFile(const std::string& path) override {
    if (::unlink(path.c_str()) != 0) return ErrnoStatus("unlink", path, errno);
    return Status::Ok();
  }
};

}  // namespace

Env* Env::Default() {
  static PosixEnv env;
  return &env;
}

}  // namespace treediff
