#ifndef TREEDIFF_UTIL_THREAD_POOL_H_
#define TREEDIFF_UTIL_THREAD_POOL_H_

#include <cstddef>
#include <deque>
#include <functional>
#include <thread>
#include <vector>

#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace treediff {

/// A fixed-size worker pool over one bounded multi-producer/multi-consumer
/// task queue — the execution substrate of the DiffService. The queue bound
/// is the service's admission-control lever: TrySubmit never blocks and
/// reports a full queue to the caller (which sheds the request) instead of
/// letting work pile up without limit.
///
/// Tasks are plain std::function<void()>; anything a task produces travels
/// through the closure (the service completes a std::promise). Tasks must
/// not throw.
///
/// Destruction (or Shutdown) drains the queue: already-accepted tasks run
/// to completion, then the workers join. Submitting after shutdown fails.
/// All state transitions are guarded by one Mutex and checked by the
/// thread-safety analysis.
class ThreadPool {
 public:
  struct Options {
    /// Worker count; values < 1 are clamped to 1.
    int num_threads = static_cast<int>(std::thread::hardware_concurrency());

    /// Maximum queued (not yet started) tasks; values < 1 are clamped to 1.
    size_t queue_capacity = 1024;
  };

  explicit ThreadPool(Options options);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues `task` unless the queue is at capacity or the pool is shut
  /// down; never blocks. Returns whether the task was accepted.
  bool TrySubmit(std::function<void()> task) EXCLUDES(mu_);

  /// Enqueues `task`, waiting for queue space if necessary. Returns false
  /// only when the pool is (or becomes) shut down.
  bool Submit(std::function<void()> task) EXCLUDES(mu_);

  /// Tasks queued and not yet handed to a worker. A snapshot — concurrent
  /// submits and completions move it immediately.
  size_t QueueDepth() const EXCLUDES(mu_);

  size_t queue_capacity() const { return capacity_; }
  int num_threads() const { return num_threads_; }

  /// Stops accepting tasks, runs everything already queued, joins the
  /// workers. Idempotent and safe to race from several threads: the joiner
  /// claims the worker vector under the lock, so exactly one caller joins
  /// each thread.
  void Shutdown() EXCLUDES(mu_);

 private:
  void WorkerLoop() EXCLUDES(mu_);

  size_t capacity_;
  int num_threads_ = 0;
  mutable Mutex mu_;
  CondVar not_empty_;
  CondVar not_full_;
  std::deque<std::function<void()>> queue_ GUARDED_BY(mu_);
  bool shutdown_ GUARDED_BY(mu_) = false;
  std::vector<std::thread> workers_ GUARDED_BY(mu_);
};

}  // namespace treediff

#endif  // TREEDIFF_UTIL_THREAD_POOL_H_
