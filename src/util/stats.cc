#include "util/stats.h"

#include <algorithm>
#include <cmath>

namespace treediff {

void StatAccumulator::Add(double x) {
  values_.push_back(x);
  sum_ += x;
}

double StatAccumulator::Mean() const {
  if (values_.empty()) return 0.0;
  return sum_ / static_cast<double>(values_.size());
}

double StatAccumulator::Min() const {
  if (values_.empty()) return 0.0;
  return *std::min_element(values_.begin(), values_.end());
}

double StatAccumulator::Max() const {
  if (values_.empty()) return 0.0;
  return *std::max_element(values_.begin(), values_.end());
}

double StatAccumulator::StdDev() const {
  if (values_.size() < 2) return 0.0;
  const double mean = Mean();
  double ss = 0.0;
  for (double v : values_) ss += (v - mean) * (v - mean);
  return std::sqrt(ss / static_cast<double>(values_.size() - 1));
}

double StatAccumulator::Percentile(double p) const {
  if (values_.empty()) return 0.0;
  std::vector<double> sorted = values_;
  std::sort(sorted.begin(), sorted.end());
  if (p <= 0.0) return sorted.front();
  if (p >= 100.0) return sorted.back();
  const double rank = p / 100.0 * static_cast<double>(sorted.size() - 1);
  const size_t lo = static_cast<size_t>(rank);
  const double frac = rank - static_cast<double>(lo);
  if (lo + 1 >= sorted.size()) return sorted.back();
  return sorted[lo] * (1.0 - frac) + sorted[lo + 1] * frac;
}

LinearFit FitLine(const std::vector<double>& x, const std::vector<double>& y) {
  LinearFit fit;
  if (x.size() != y.size() || x.size() < 2) return fit;
  const double n = static_cast<double>(x.size());
  double sx = 0.0, sy = 0.0, sxx = 0.0, sxy = 0.0;
  for (size_t i = 0; i < x.size(); ++i) {
    sx += x[i];
    sy += y[i];
    sxx += x[i] * x[i];
    sxy += x[i] * y[i];
  }
  const double denom = n * sxx - sx * sx;
  if (denom == 0.0) return fit;
  fit.slope = (n * sxy - sx * sy) / denom;
  fit.intercept = (sy - fit.slope * sx) / n;

  const double mean_y = sy / n;
  double ss_tot = 0.0, ss_res = 0.0;
  for (size_t i = 0; i < x.size(); ++i) {
    const double pred = fit.slope * x[i] + fit.intercept;
    ss_tot += (y[i] - mean_y) * (y[i] - mean_y);
    ss_res += (y[i] - pred) * (y[i] - pred);
  }
  fit.r_squared = ss_tot == 0.0 ? 1.0 : 1.0 - ss_res / ss_tot;
  return fit;
}

}  // namespace treediff
