#include "util/budget.h"

#include <sstream>

namespace treediff {

Status Budget::ToStatus() const {
  if (exhausted_code_ == Code::kOk) return Status::Ok();
  std::ostringstream msg;
  msg << "budget exhausted (" << exhausted_detail_ << ") after "
      << nodes_ << " nodes, " << comparisons_ << " comparisons, "
      << peak_arena_ << " peak arena bytes, " << elapsed_seconds() << "s";
  return Status(exhausted_code_, msg.str());
}

}  // namespace treediff
