#include "util/tokenize.h"

#include <cctype>

namespace treediff {

namespace {

bool IsSpaceChar(char c) {
  return std::isspace(static_cast<unsigned char>(c)) != 0;
}

bool IsPunctChar(char c) {
  return std::ispunct(static_cast<unsigned char>(c)) != 0;
}

std::string NormalizeWord(std::string_view word) {
  size_t begin = 0;
  size_t end = word.size();
  while (begin < end && IsPunctChar(word[begin])) ++begin;
  while (end > begin && IsPunctChar(word[end - 1])) --end;
  std::string out;
  out.reserve(end - begin);
  for (size_t i = begin; i < end; ++i) {
    out.push_back(
        static_cast<char>(std::tolower(static_cast<unsigned char>(word[i]))));
  }
  return out;
}

}  // namespace

std::vector<std::string> SplitWords(std::string_view text, bool strip_punct) {
  std::vector<std::string> words;
  size_t i = 0;
  const size_t n = text.size();
  while (i < n) {
    while (i < n && IsSpaceChar(text[i])) ++i;
    size_t start = i;
    while (i < n && !IsSpaceChar(text[i])) ++i;
    if (i > start) {
      std::string_view raw = text.substr(start, i - start);
      if (strip_punct) {
        std::string normalized = NormalizeWord(raw);
        if (!normalized.empty()) words.push_back(std::move(normalized));
      } else {
        words.emplace_back(raw);
      }
    }
  }
  return words;
}

std::string_view TrimWhitespace(std::string_view text) {
  size_t begin = 0;
  size_t end = text.size();
  while (begin < end && IsSpaceChar(text[begin])) ++begin;
  while (end > begin && IsSpaceChar(text[end - 1])) --end;
  return text.substr(begin, end - begin);
}

std::string CollapseWhitespace(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  bool in_space = false;
  for (char c : TrimWhitespace(text)) {
    if (IsSpaceChar(c)) {
      in_space = true;
    } else {
      if (in_space && !out.empty()) out.push_back(' ');
      in_space = false;
      out.push_back(c);
    }
  }
  return out;
}

bool IsBlank(std::string_view text) {
  for (char c : text) {
    if (!IsSpaceChar(c)) return false;
  }
  return true;
}

std::string JoinStrings(const std::vector<std::string>& parts,
                        std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out.append(sep);
    out.append(parts[i]);
  }
  return out;
}

bool StartsWith(std::string_view text, std::string_view prefix) {
  return text.size() >= prefix.size() &&
         text.substr(0, prefix.size()) == prefix;
}

bool EndsWith(std::string_view text, std::string_view suffix) {
  return text.size() >= suffix.size() &&
         text.substr(text.size() - suffix.size()) == suffix;
}

}  // namespace treediff
