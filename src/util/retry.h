#ifndef TREEDIFF_UTIL_RETRY_H_
#define TREEDIFF_UTIL_RETRY_H_

#include <cstdint>
#include <functional>

#include "util/random.h"
#include "util/status.h"

namespace treediff {

/// Deterministic retry with exponential backoff and jitter, for the
/// transient faults a real storage stack produces (interrupted syscalls,
/// flaky media, momentary overload). Two properties production retry loops
/// need and ad-hoc ones lack:
///
///  * **Budgeted**: a hard cap on attempts, so a permanent failure is
///    reported instead of looped on forever.
///  * **Deterministic**: jitter comes from the project's seeded Rng, so a
///    failing (seed, fault plan) pair replays the exact same backoff
///    schedule — the fault-injection tests depend on reproducibility.
///
/// Only `kUnavailable` is retried; every other code is a permanent answer
/// (invalid input, real data loss, exhausted disk) that retrying cannot
/// change. Classification happens where the error is minted: the POSIX Env
/// maps EINTR/EAGAIN to kUnavailable, ENOSPC/EDQUOT to kResourceExhausted;
/// FaultInjectingEnv's probabilistic faults are kUnavailable by design.
struct RetryPolicy {
  /// Total tries, including the first (values < 1 behave as 1).
  int max_attempts = 4;

  /// Backoff before retry k (1-based) is
  ///   min(initial * multiplier^(k-1), max) * jitter,
  /// jitter uniform in [1 - jitter_fraction, 1 + jitter_fraction].
  double initial_backoff_seconds = 0.001;
  double backoff_multiplier = 2.0;
  double max_backoff_seconds = 0.100;
  double jitter_fraction = 0.5;

  /// Seeds the jitter stream (see Retryer).
  uint64_t seed = 0;
};

/// True for errors worth retrying (currently exactly kUnavailable).
bool IsTransientError(const Status& status);

/// One retry loop. Construction seeds the jitter Rng from the policy, so
/// the backoff schedule is a pure function of (policy, failure sequence).
/// Not thread-safe; make one per protected operation or hold the caller's
/// lock across Run.
class Retryer {
 public:
  using SleepFn = std::function<void(double seconds)>;

  /// `sleep` replaces the real clock wait — tests pass a recorder or a
  /// no-op. Null means std::this_thread::sleep_for.
  explicit Retryer(const RetryPolicy& policy, SleepFn sleep = nullptr);

  /// Runs `op` until it succeeds, fails permanently, or the attempt budget
  /// is spent. Returns the last status. `op` must be safe to re-run after
  /// a transient failure (the caller owns that contract; the VersionStore
  /// re-verifies the log tail before re-appending, for example).
  Status Run(const std::function<Status()>& op);

  /// Backoff (with jitter) that preceded retry k during Run, recomputed
  /// fresh: the k-th value drawn from this instance's jitter stream.
  double BackoffSeconds(int retry_index);

  /// Attempts made by the last Run (1 = first try succeeded).
  int attempts() const { return attempts_; }

  /// Retries across every Run of this instance.
  uint64_t total_retries() const { return total_retries_; }

 private:
  RetryPolicy policy_;
  SleepFn sleep_;
  Rng rng_;
  int attempts_ = 0;
  uint64_t total_retries_ = 0;
};

}  // namespace treediff

#endif  // TREEDIFF_UTIL_RETRY_H_
