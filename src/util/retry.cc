#include "util/retry.h"

#include <algorithm>
#include <chrono>
#include <thread>

namespace treediff {

bool IsTransientError(const Status& status) {
  return status.code() == Code::kUnavailable;
}

Retryer::Retryer(const RetryPolicy& policy, SleepFn sleep)
    : policy_(policy), sleep_(std::move(sleep)), rng_(policy.seed) {
  policy_.max_attempts = std::max(policy_.max_attempts, 1);
}

double Retryer::BackoffSeconds(int retry_index) {
  double base = policy_.initial_backoff_seconds;
  for (int i = 1; i < retry_index; ++i) base *= policy_.backoff_multiplier;
  base = std::min(base, policy_.max_backoff_seconds);
  const double j = std::clamp(policy_.jitter_fraction, 0.0, 1.0);
  // NextDouble is in [0, 1): scale into [1 - j, 1 + j).
  const double jitter = 1.0 - j + 2.0 * j * rng_.NextDouble();
  return std::max(base * jitter, 0.0);
}

Status Retryer::Run(const std::function<Status()>& op) {
  attempts_ = 0;
  Status last = Status::Ok();
  for (int attempt = 1; attempt <= policy_.max_attempts; ++attempt) {
    attempts_ = attempt;
    last = op();
    if (last.ok() || !IsTransientError(last)) return last;
    if (attempt == policy_.max_attempts) break;
    ++total_retries_;
    const double backoff = BackoffSeconds(attempt);
    if (sleep_) {
      sleep_(backoff);
    } else if (backoff > 0.0) {
      std::this_thread::sleep_for(std::chrono::duration<double>(backoff));
    }
  }
  return last;
}

}  // namespace treediff
