#ifndef TREEDIFF_SERVICE_TREE_CACHE_H_
#define TREEDIFF_SERVICE_TREE_CACHE_H_

#include <atomic>
#include <cstdint>
#include <list>
#include <memory>
#include <string_view>
#include <unordered_map>
#include <utility>
#include <vector>

#include "tree/tree.h"
#include "tree/tree_index.h"
#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace treediff {

/// One cache entry: a parsed tree plus its fully-built TreeIndex. The
/// constructor freezes the tree (Tree::Freeze — any later mutation fails
/// fast) and warms every index tier (TreeIndex::WarmAll), so a published
/// entry is safe to read from any number of request threads concurrently.
/// Pipeline stages that need a mutable tree (edit-script generation's
/// working copy) clone it; clones start unfrozen.
struct CachedTree {
  Tree tree;
  TreeIndex index;
  uint64_t key = 0;
  size_t bytes = 0;  // Approximate memory footprint, for the LRU budget.

  CachedTree(Tree t, uint64_t cache_key);

  CachedTree(const CachedTree&) = delete;
  CachedTree& operator=(const CachedTree&) = delete;
};

/// A sharded LRU cache of parsed trees keyed by content fingerprint, so a
/// diff against a hot base version skips parse + index entirely. Sharding
/// by key keeps the per-shard mutexes off each other's necks; entries are
/// handed out as shared_ptr<const CachedTree>, so eviction never invalidates
/// a request that is still diffing against the entry.
///
/// Keys are 64-bit content fingerprints (FNV-1a of the document text folded
/// with its CRC-32C — two independent hashes). Distinct documents collide
/// with probability ~2^-64, which the service accepts, as content-addressed
/// stores do.
class TreeCache {
 public:
  struct Options {
    size_t capacity_bytes = 64u << 20;  // Total across shards.
    int shards = 8;                     // Clamped to >= 1.
  };

  struct Stats {
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t insertions = 0;
    uint64_t evictions = 0;
    size_t bytes = 0;
    size_t entries = 0;
  };

  explicit TreeCache(Options options);

  /// The entry under `key`, or null. A hit refreshes LRU recency.
  std::shared_ptr<const CachedTree> Lookup(uint64_t key);

  /// Publishes `tree` under `key` (freezing + warming it) and returns the
  /// cached entry. If a concurrent insert won the race, the tree that got
  /// there first wins and is returned — both copies parsed from the same
  /// content, so either is correct.
  std::shared_ptr<const CachedTree> Insert(uint64_t key, Tree tree);

  /// Number of shards (for tests asserting the sharded layout).
  int shards() const { return static_cast<int>(shards_.size()); }

  Stats stats() const;

  /// Fingerprint of an inline document: its text plus a format tag (the
  /// same bytes parsed as s-expression vs. XML give different trees).
  static uint64_t FingerprintText(std::string_view format_tag,
                                  std::string_view text);

  /// Fingerprint of a stored version: `doc_id` plus version number.
  static uint64_t FingerprintVersion(std::string_view doc_id, int version);

 private:
  struct Shard {
    Mutex mu;
    // Front = most recently used.
    std::list<std::pair<uint64_t, std::shared_ptr<const CachedTree>>> lru
        GUARDED_BY(mu);
    std::unordered_map<
        uint64_t,
        std::list<std::pair<uint64_t,
                            std::shared_ptr<const CachedTree>>>::iterator>
        map GUARDED_BY(mu);
    size_t bytes GUARDED_BY(mu) = 0;
  };

  Shard& ShardFor(uint64_t key) {
    return *shards_[static_cast<size_t>(key) % shards_.size()];
  }

  size_t per_shard_capacity_;
  std::vector<std::unique_ptr<Shard>> shards_;

  std::atomic<uint64_t> hits_{0};
  std::atomic<uint64_t> misses_{0};
  std::atomic<uint64_t> insertions_{0};
  std::atomic<uint64_t> evictions_{0};
};

}  // namespace treediff

#endif  // TREEDIFF_SERVICE_TREE_CACHE_H_
