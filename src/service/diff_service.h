#ifndef TREEDIFF_SERVICE_DIFF_SERVICE_H_
#define TREEDIFF_SERVICE_DIFF_SERVICE_H_

#include <chrono>
#include <functional>
#include <future>
#include <list>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/diff.h"
#include "service/tree_cache.h"
#include "store/replication.h"
#include "store/version_store.h"
#include "util/metrics.h"
#include "util/mutex.h"
#include "util/status.h"
#include "util/thread_annotations.h"
#include "util/thread_pool.h"

namespace treediff {

/// One diff request. Two addressing modes:
///  * **Inline**: `old_doc`/`new_doc` carry the documents as text in
///    `format`; both are parsed (or fetched from the tree cache) into the
///    service's shared label table.
///  * **Stored**: `doc_id` names a VersionStore previously attached with
///    AttachStore or created with CreateStore, and `from_version`/
///    `to_version` select the two versions to diff.
struct DiffRequest {
  enum class Format { kSexpr, kXml };
  Format format = Format::kSexpr;

  std::string old_doc;
  std::string new_doc;

  std::string doc_id;  // Stored mode when non-empty.
  int from_version = -1;
  int to_version = -1;

  /// Per-request budget caps; 0 means "use the service default". The
  /// deadline covers queue wait: a request that waited its whole deadline
  /// out in the queue is shed without running.
  double deadline_seconds = 0.0;
  size_t node_cap = 0;

  /// Where on the degradation ladder to start (admission pressure may push
  /// it further down; see DiffServiceOptions::degrade_queue_fraction).
  DiffRung start_rung = DiffRung::kFastMatch;

  /// Render the edit script as text into DiffResponse::script. Off saves
  /// the serialization when the caller only wants counters.
  bool want_script_text = true;
};

/// What one request produced. `status` is OK for a served diff (possibly
/// degraded); kResourceExhausted / kDeadlineExceeded for a shed request;
/// kNotFound / kOutOfRange / kParseError for bad requests.
struct DiffResponse {
  Status status = Status::Ok();

  std::string script;      // FormatEditScript output (when requested).
  size_t operations = 0;   // Ops in the script.
  DiffRung rung = DiffRung::kFastMatch;
  bool degraded = false;       // Budget forced a ladder step-down.
  bool shed_degraded = false;  // Admission pressure lowered the start rung.

  bool cache_hit_old = false;  // Tree cache served the old / new document.
  bool cache_hit_new = false;

  /// Incremental-serving provenance (DiffServiceOptions::incremental).
  bool matching_cache_hit = false;  // Phase 1 reused a cached matching.
  bool chain_log_hit = false;       // Answered from the store's commit log.
  size_t pruned_subtrees = 0;       // Share-map pre-pass wholesale matches.
  size_t pruned_nodes = 0;          // Nodes settled by those matches.

  double queue_seconds = 0.0;    // Submit -> worker pickup.
  double resolve_seconds = 0.0;  // Parse / materialize / cache fetch.
  double match_seconds = 0.0;    // Phase 1 (matching).
  double gen_seconds = 0.0;      // Phase 2 (edit-script generation).
  double total_seconds = 0.0;    // Submit -> response.
};

/// Circuit-breaker health of one attached store, from the service's view.
/// A healthy store serves normally; a degraded store has had recent
/// server-side failures but still takes traffic; a quarantined store
/// fast-fails every request until its cooldown expires, after which one
/// request is let through as a probe (half-open) and its outcome decides
/// between recovery and another quarantine round.
enum class StoreHealth { kHealthy, kDegraded, kQuarantined };

const char* StoreHealthName(StoreHealth health);

/// Tuning of a DiffService instance.
struct DiffServiceOptions {
  int num_threads = 4;
  size_t queue_capacity = 256;

  size_t cache_capacity_bytes = 64u << 20;
  int cache_shards = 8;

  /// Admission pressure: once the queue is at least this fraction full,
  /// newly admitted requests start at `degraded_start_rung` (if that is
  /// lower than what they asked for) instead of being queued at full cost —
  /// load-shedding by degradation, the DiffRung ladder's serving-side use.
  /// Values > 1.0 disable pressure degradation.
  double degrade_queue_fraction = 0.75;
  DiffRung degraded_start_rung = DiffRung::kKeyedStructural;

  /// Default per-request budget caps; 0 = unlimited.
  double default_deadline_seconds = 0.0;
  size_t default_node_cap = 0;

  /// Store resilience. Transient store errors (kUnavailable) are retried up
  /// to `store_retry_attempts` total tries with doubling backoff starting
  /// at `store_retry_backoff_seconds`; a poisoned durable store is repaired
  /// (VersionStore::Repair) and the operation re-run. After
  /// `breaker_failure_threshold` consecutive server-side failures a store's
  /// circuit breaker opens: its requests fast-fail with kUnavailable for
  /// `breaker_cooldown_seconds` instead of piling onto a sick store.
  int store_retry_attempts = 3;
  double store_retry_backoff_seconds = 0.001;
  int breaker_failure_threshold = 3;
  double breaker_cooldown_seconds = 5.0;

  /// Incremental serving. When on, every request runs the share-map
  /// pre-pass (DiffOptions::share_mode = kIndexed) so matching and
  /// generation cost track the edit rather than the document; unbudgeted
  /// requests additionally reuse the phase-1 matching of an earlier request
  /// over the same (old, new) content fingerprints; and a stored-mode
  /// request for adjacent versions (from = to - 1) is answered straight
  /// from the version store's commit log — the stored delta *is* the
  /// authoritative diff (Materialize replays it), so no pipeline runs at
  /// all. Off by default: the service then behaves byte-identically to the
  /// plain pipeline.
  bool incremental = false;

  /// Capacity of the (old fingerprint, new fingerprint, rung)-keyed
  /// phase-1 matching cache used when `incremental` is on. Entries pin
  /// their tree-cache entries, so size this in tens, not thousands.
  size_t matching_cache_entries = 64;

  /// Period of the background scrubber, which re-verifies the log
  /// checksums of every attached durable store (VersionStore::Scrub);
  /// 0 disables the thread. ScrubNow() works either way.
  double scrub_interval_seconds = 0.0;

  /// Replaces the real store-retry backoff sleep (tests pass a no-op);
  /// null means a real clock wait. The scrubber cadence is not affected.
  std::function<void(double seconds)> sleep;

  /// Base pipeline options (thresholds, matcher choice, cost model, ...).
  /// `budget`, `index1`, and `index2` are overwritten per request. A custom
  /// `comparator` must be thread-safe — the default (null: one
  /// WordLcsComparator per request) is.
  DiffOptions diff;
};

/// An in-process, multi-tenant diff server core: a fixed worker pool pulls
/// requests off a bounded queue, resolves each request's two trees through
/// a sharded content-fingerprint cache (parse and index exactly once per
/// distinct document), runs the paper's pipeline under a per-request
/// budget, and answers through a future. Admission control is two-layered:
/// a full queue sheds new requests immediately (kResourceExhausted), and a
/// nearly-full queue admits requests onto a lower rung of the degradation
/// ladder so they cost less. Counters and latency histograms for every
/// stage live in the service's MetricsRegistry.
///
/// Attached stores are served through a resilience wrapper: transient
/// store errors are retried with backoff, a poisoned durable store is
/// repaired in place (VersionStore::Repair) and the request re-run, and a
/// per-store circuit breaker (StoreHealth) quarantines a store that keeps
/// failing so requests fail fast instead of piling onto it. An optional
/// background scrubber re-verifies every durable store's log checksums on
/// a timer (DiffServiceOptions::scrub_interval_seconds).
///
/// Thread-safety: Submit and the store/metrics accessors may be called
/// from any thread. Shutdown (or destruction) drains in-flight requests.
class DiffService {
 public:
  explicit DiffService(DiffServiceOptions options = {});
  ~DiffService();

  DiffService(const DiffService&) = delete;
  DiffService& operator=(const DiffService&) = delete;

  /// Enqueues a request; the future completes when a worker finishes it
  /// (immediately, with kResourceExhausted, when the queue is full).
  std::future<DiffResponse> Submit(DiffRequest request);

  /// The async path the network front end builds on: enqueues a request and
  /// invokes `done` exactly once with the response. `done` runs on a worker
  /// thread for served requests, or inline on the caller's thread when the
  /// request is shed at admission (full queue) — callers that care about
  /// re-entrancy must tolerate the inline case. `done` must not throw and
  /// should be cheap; heavy completion work belongs on the caller's own
  /// executor.
  void Submit(DiffRequest request, std::function<void(DiffResponse)> done);

  /// Submit + wait.
  DiffResponse SubmitSync(DiffRequest request);

  /// Attaches an externally owned VersionStore under `doc_id`; the store
  /// must outlive the service. All access is serialized per store.
  Status AttachStore(const std::string& doc_id, VersionStore* store)
      EXCLUDES(stores_mu_);

  /// Creates a service-owned in-memory VersionStore whose version 0 is the
  /// given document.
  Status CreateStore(const std::string& doc_id, const std::string& base_doc,
                     DiffRequest::Format format = DiffRequest::Format::kSexpr)
      EXCLUDES(stores_mu_);

  /// Attaches a replication group under `doc_id`. Reads and commits route
  /// through the group (staleness-bounded follower reads, lease-fenced
  /// quorum commits), and the circuit breaker gains a stronger recovery
  /// rung: when the current primary fails past the breaker threshold, the
  /// service promotes the most-caught-up follower (fenced failover) and
  /// retries, instead of quarantining a store it could fail away from.
  Status AttachReplicatedStore(const std::string& doc_id,
                               std::shared_ptr<ReplicatedVersionStore> group)
      EXCLUDES(stores_mu_);

  /// Creates and attaches a service-owned replication group: the base
  /// document is parsed into the service's label table and becomes version
  /// 0 on replicas[0] (the initial primary); the remaining replicas catch
  /// up by log shipping. The group's metrics land in this service's
  /// registry.
  Status CreateReplicatedStore(
      const std::string& doc_id, const std::string& base_doc,
      std::vector<ReplicaConfig> replicas,
      AckMode ack_mode = AckMode::kLeaderOnly,
      DiffRequest::Format format = DiffRequest::Format::kSexpr)
      EXCLUDES(stores_mu_);

  /// Commits a new version to a store created with CreateStore or attached
  /// with AttachStore. Returns the new version number.
  StatusOr<int> CommitVersion(
      const std::string& doc_id, const std::string& doc,
      DiffRequest::Format format = DiffRequest::Format::kSexpr)
      EXCLUDES(stores_mu_);

  /// One attached store's service-side status, for the STATUS endpoint,
  /// operators, and tests.
  struct StoreStatus {
    std::string doc_id;
    int versions = 0;
    bool durable = false;
    StoreHealth health = StoreHealth::kHealthy;
    int consecutive_failures = 0;
    VersionStore::FaultCounters faults;

    /// Replication view (empty/zero for unreplicated stores).
    bool replicated = false;
    uint64_t repl_epoch = 0;
    int repl_primary = -1;
    std::vector<ReplicaStatus> replicas;
  };

  /// Status of every attached store, ordered by doc_id.
  std::vector<StoreStatus> StoreStatuses() EXCLUDES(stores_mu_);

  /// Runs one scrub pass over every attached durable store — the same pass
  /// the background scrubber runs every scrub_interval_seconds. Returns
  /// the number of stores scrubbed.
  int ScrubNow() EXCLUDES(stores_mu_);

  /// The label table shared by every inline document this service parses.
  /// Pre-interning the expected label vocabulary here pins label ids, which
  /// makes concurrent runs byte-identical to sequential ones (ids otherwise
  /// depend on first-touch order across threads).
  const std::shared_ptr<LabelTable>& label_table() const { return labels_; }

  MetricsRegistry& metrics() { return metrics_; }
  TreeCache::Stats cache_stats() const { return cache_.stats(); }
  size_t queue_depth() const { return pool_.QueueDepth(); }

  /// Stops admissions, drains queued requests, joins workers. Idempotent.
  void Shutdown();

 private:
  using Clock = std::chrono::steady_clock;

  struct StoreEntry {
    /// Serializes all use of the store, including parses into its
    /// LabelTable (which Commit-side parsing mutates).
    Mutex mu;
    /// Attached or owned.get(); set before the entry is published under
    /// stores_mu_. For replicated entries this tracks the group's *current
    /// primary* and is re-pointed (under `mu`) when a breaker-driven
    /// failover promotes a follower.
    VersionStore* store PT_GUARDED_BY(mu) = nullptr;
    std::unique_ptr<VersionStore> owned;  // CreateStore-owned stores.

    /// Replication group (null for plain stores; set once before publish).
    /// `primary_holder` pins the current primary so `store` cannot dangle
    /// across the group's own lifecycle events.
    std::shared_ptr<ReplicatedVersionStore> replicated;
    std::shared_ptr<VersionStore> primary_holder GUARDED_BY(mu);

    /// Circuit-breaker state (see StoreHealth). Only server-side failures
    /// count toward the threshold — a client asking for a version that
    /// does not exist (kNotFound/kOutOfRange), failing to parse, or
    /// requesting a version permanently lost to a salvage hole (kDataLoss)
    /// says nothing about the store's ability to serve.
    StoreHealth health GUARDED_BY(mu) = StoreHealth::kHealthy;
    int consecutive_failures GUARDED_BY(mu) = 0;
    Clock::time_point quarantined_until GUARDED_BY(mu){};
  };

  /// Runs one admitted request on a worker thread.
  DiffResponse Process(const DiffRequest& request, Clock::time_point submitted,
                       bool shed_degraded);

  /// One cached phase-1 matching. The entry pins both tree-cache entries:
  /// the matching's node ids are only meaningful against exactly those
  /// trees, and pinning them keeps the ids valid for the entry's lifetime.
  struct MatchingCacheEntry {
    std::shared_ptr<const CachedTree> old_tree;
    std::shared_ptr<const CachedTree> new_tree;
    Matching matching;
    MatchingCacheEntry(std::shared_ptr<const CachedTree> o,
                       std::shared_ptr<const CachedTree> n, Matching m)
        : old_tree(std::move(o)), new_tree(std::move(n)),
          matching(std::move(m)) {}
  };

  /// The cached matching for (old fingerprint, new fingerprint, rung), or
  /// null. A hit is moved to the front of the LRU list.
  std::shared_ptr<const MatchingCacheEntry> LookupMatching(
      uint64_t key_old, uint64_t key_new, DiffRung rung)
      EXCLUDES(match_cache_mu_);

  /// Publishes a phase-1 matching under its key, evicting the LRU tail
  /// beyond DiffServiceOptions::matching_cache_entries.
  void StoreMatching(uint64_t key_old, uint64_t key_new, DiffRung rung,
                     std::shared_ptr<const MatchingCacheEntry> entry)
      EXCLUDES(match_cache_mu_);

  /// Serve-from-log: answers an adjacent stored-mode request (from = to-1)
  /// directly from the store's commit log. Returns true and fills
  /// `response` on success; false means "fall through to the pipeline"
  /// (non-adjacent, store missing the delta, or store error).
  bool ServeFromChainLog(const DiffRequest& request, DiffResponse* response)
      EXCLUDES(stores_mu_);

  /// Resolves one document (inline text or stored version) to a cache
  /// entry; `*cache_hit` reports whether parse/materialize was skipped.
  StatusOr<std::shared_ptr<const CachedTree>> ResolveInline(
      const std::string& text, DiffRequest::Format format, bool* cache_hit);
  StatusOr<std::shared_ptr<const CachedTree>> ResolveVersion(
      const std::string& doc_id, int version, bool* cache_hit)
      EXCLUDES(stores_mu_);

  /// The published entry under `doc_id`, or null. Takes the registry lock
  /// shared: lookups on the request path don't serialize behind each other.
  StoreEntry* FindStore(const std::string& doc_id) EXCLUDES(stores_mu_);

  /// Runs `op` against the entry's store under its lock, wrapped in the
  /// service's resilience policy: breaker fast-fail while quarantined,
  /// transient-error retry with doubling backoff, automatic Repair of a
  /// poisoned durable store, and breaker bookkeeping on the final outcome.
  Status GuardedStoreOp(StoreEntry* entry,
                        const std::function<Status(VersionStore*)>& op);

  /// Body of the background scrubber thread.
  void ScrubLoop() EXCLUDES(scrub_mu_);

  StatusOr<Tree> ParseDoc(const std::string& text, DiffRequest::Format format);

  DiffServiceOptions options_;
  std::shared_ptr<LabelTable> labels_ = std::make_shared<LabelTable>();
  MetricsRegistry metrics_;
  TreeCache cache_;
  ThreadPool pool_;  // Last member: workers must die before what they use.

  /// Guards the registry map (reader/writer: attach/create write, request
  /// lookups read); per-store work holds entry->mu.
  SharedMutex stores_mu_;
  std::map<std::string, std::unique_ptr<StoreEntry>> stores_
      GUARDED_BY(stores_mu_);

  /// Phase-1 matching cache (incremental serving). A plain mutex + intrusive
  /// LRU list: the capacity is tens of entries, so a linear key scan beats
  /// hash-map bookkeeping and keeps eviction trivial.
  struct MatchingCacheSlot {
    uint64_t key_old = 0;
    uint64_t key_new = 0;
    DiffRung rung = DiffRung::kFastMatch;
    std::shared_ptr<const MatchingCacheEntry> entry;
  };
  Mutex match_cache_mu_;
  std::list<MatchingCacheSlot> match_cache_ GUARDED_BY(match_cache_mu_);

  /// Background scrubber (running only when scrub_interval_seconds > 0;
  /// Shutdown stops and joins it before the worker pool).
  Mutex scrub_mu_;
  CondVar scrub_cv_;
  bool scrub_stop_ GUARDED_BY(scrub_mu_) = false;
  std::thread scrubber_;

  // Hot-path metric handles (registered once; recording is pure atomics).
  Counter* requests_ = nullptr;
  Counter* responses_ok_ = nullptr;
  Counter* responses_error_ = nullptr;
  Counter* shed_queue_full_ = nullptr;
  Counter* shed_deadline_ = nullptr;
  Counter* shed_degraded_ = nullptr;
  Counter* cache_hits_ = nullptr;
  Counter* cache_misses_ = nullptr;
  Counter* rung_counters_[4] = {nullptr, nullptr, nullptr, nullptr};
  Counter* prune_subtrees_ = nullptr;
  Counter* prune_nodes_ = nullptr;
  Counter* prune_collisions_ = nullptr;
  Counter* match_cache_hits_ = nullptr;
  Counter* match_cache_misses_ = nullptr;
  Counter* chain_log_hits_ = nullptr;
  Counter* store_retries_ = nullptr;
  Counter* breaker_trips_ = nullptr;
  Counter* breaker_fast_fails_ = nullptr;
  Counter* store_repairs_ = nullptr;
  Counter* store_failovers_ = nullptr;
  Counter* scrub_runs_ = nullptr;
  Counter* scrub_corruption_found_ = nullptr;
  Histogram* queue_wait_h_ = nullptr;
  Histogram* resolve_h_ = nullptr;
  Histogram* match_h_ = nullptr;
  Histogram* gen_h_ = nullptr;
  Histogram* e2e_h_ = nullptr;
};

}  // namespace treediff

#endif  // TREEDIFF_SERVICE_DIFF_SERVICE_H_
