#ifndef TREEDIFF_SERVICE_DIFF_SERVICE_H_
#define TREEDIFF_SERVICE_DIFF_SERVICE_H_

#include <chrono>
#include <future>
#include <map>
#include <memory>
#include <string>

#include "core/diff.h"
#include "service/tree_cache.h"
#include "store/version_store.h"
#include "util/metrics.h"
#include "util/mutex.h"
#include "util/status.h"
#include "util/thread_annotations.h"
#include "util/thread_pool.h"

namespace treediff {

/// One diff request. Two addressing modes:
///  * **Inline**: `old_doc`/`new_doc` carry the documents as text in
///    `format`; both are parsed (or fetched from the tree cache) into the
///    service's shared label table.
///  * **Stored**: `doc_id` names a VersionStore previously attached with
///    AttachStore or created with CreateStore, and `from_version`/
///    `to_version` select the two versions to diff.
struct DiffRequest {
  enum class Format { kSexpr, kXml };
  Format format = Format::kSexpr;

  std::string old_doc;
  std::string new_doc;

  std::string doc_id;  // Stored mode when non-empty.
  int from_version = -1;
  int to_version = -1;

  /// Per-request budget caps; 0 means "use the service default". The
  /// deadline covers queue wait: a request that waited its whole deadline
  /// out in the queue is shed without running.
  double deadline_seconds = 0.0;
  size_t node_cap = 0;

  /// Where on the degradation ladder to start (admission pressure may push
  /// it further down; see DiffServiceOptions::degrade_queue_fraction).
  DiffRung start_rung = DiffRung::kFastMatch;

  /// Render the edit script as text into DiffResponse::script. Off saves
  /// the serialization when the caller only wants counters.
  bool want_script_text = true;
};

/// What one request produced. `status` is OK for a served diff (possibly
/// degraded); kResourceExhausted / kDeadlineExceeded for a shed request;
/// kNotFound / kOutOfRange / kParseError for bad requests.
struct DiffResponse {
  Status status = Status::Ok();

  std::string script;      // FormatEditScript output (when requested).
  size_t operations = 0;   // Ops in the script.
  DiffRung rung = DiffRung::kFastMatch;
  bool degraded = false;       // Budget forced a ladder step-down.
  bool shed_degraded = false;  // Admission pressure lowered the start rung.

  bool cache_hit_old = false;  // Tree cache served the old / new document.
  bool cache_hit_new = false;

  double queue_seconds = 0.0;    // Submit -> worker pickup.
  double resolve_seconds = 0.0;  // Parse / materialize / cache fetch.
  double match_seconds = 0.0;    // Phase 1 (matching).
  double gen_seconds = 0.0;      // Phase 2 (edit-script generation).
  double total_seconds = 0.0;    // Submit -> response.
};

/// Tuning of a DiffService instance.
struct DiffServiceOptions {
  int num_threads = 4;
  size_t queue_capacity = 256;

  size_t cache_capacity_bytes = 64u << 20;
  int cache_shards = 8;

  /// Admission pressure: once the queue is at least this fraction full,
  /// newly admitted requests start at `degraded_start_rung` (if that is
  /// lower than what they asked for) instead of being queued at full cost —
  /// load-shedding by degradation, the DiffRung ladder's serving-side use.
  /// Values > 1.0 disable pressure degradation.
  double degrade_queue_fraction = 0.75;
  DiffRung degraded_start_rung = DiffRung::kKeyedStructural;

  /// Default per-request budget caps; 0 = unlimited.
  double default_deadline_seconds = 0.0;
  size_t default_node_cap = 0;

  /// Base pipeline options (thresholds, matcher choice, cost model, ...).
  /// `budget`, `index1`, and `index2` are overwritten per request. A custom
  /// `comparator` must be thread-safe — the default (null: one
  /// WordLcsComparator per request) is.
  DiffOptions diff;
};

/// An in-process, multi-tenant diff server core: a fixed worker pool pulls
/// requests off a bounded queue, resolves each request's two trees through
/// a sharded content-fingerprint cache (parse and index exactly once per
/// distinct document), runs the paper's pipeline under a per-request
/// budget, and answers through a future. Admission control is two-layered:
/// a full queue sheds new requests immediately (kResourceExhausted), and a
/// nearly-full queue admits requests onto a lower rung of the degradation
/// ladder so they cost less. Counters and latency histograms for every
/// stage live in the service's MetricsRegistry.
///
/// Thread-safety: Submit and the store/metrics accessors may be called
/// from any thread. Shutdown (or destruction) drains in-flight requests.
class DiffService {
 public:
  explicit DiffService(DiffServiceOptions options = {});
  ~DiffService();

  DiffService(const DiffService&) = delete;
  DiffService& operator=(const DiffService&) = delete;

  /// Enqueues a request; the future completes when a worker finishes it
  /// (immediately, with kResourceExhausted, when the queue is full).
  std::future<DiffResponse> Submit(DiffRequest request);

  /// Submit + wait.
  DiffResponse SubmitSync(DiffRequest request);

  /// Attaches an externally owned VersionStore under `doc_id`; the store
  /// must outlive the service. All access is serialized per store.
  Status AttachStore(const std::string& doc_id, VersionStore* store)
      EXCLUDES(stores_mu_);

  /// Creates a service-owned in-memory VersionStore whose version 0 is the
  /// given document.
  Status CreateStore(const std::string& doc_id, const std::string& base_doc,
                     DiffRequest::Format format = DiffRequest::Format::kSexpr)
      EXCLUDES(stores_mu_);

  /// Commits a new version to a store created with CreateStore or attached
  /// with AttachStore. Returns the new version number.
  StatusOr<int> CommitVersion(
      const std::string& doc_id, const std::string& doc,
      DiffRequest::Format format = DiffRequest::Format::kSexpr)
      EXCLUDES(stores_mu_);

  /// The label table shared by every inline document this service parses.
  /// Pre-interning the expected label vocabulary here pins label ids, which
  /// makes concurrent runs byte-identical to sequential ones (ids otherwise
  /// depend on first-touch order across threads).
  const std::shared_ptr<LabelTable>& label_table() const { return labels_; }

  MetricsRegistry& metrics() { return metrics_; }
  TreeCache::Stats cache_stats() const { return cache_.stats(); }
  size_t queue_depth() const { return pool_.QueueDepth(); }

  /// Stops admissions, drains queued requests, joins workers. Idempotent.
  void Shutdown();

 private:
  using Clock = std::chrono::steady_clock;

  struct StoreEntry {
    /// Serializes all use of the store, including parses into its
    /// LabelTable (which Commit-side parsing mutates).
    Mutex mu;
    /// Attached or owned.get(); the pointer is set once before the entry
    /// is published under stores_mu_, so only dereferences need `mu`.
    VersionStore* store PT_GUARDED_BY(mu) = nullptr;
    std::unique_ptr<VersionStore> owned;  // CreateStore-owned stores.
  };

  /// Runs one admitted request on a worker thread.
  DiffResponse Process(const DiffRequest& request, Clock::time_point submitted,
                       bool shed_degraded);

  /// Resolves one document (inline text or stored version) to a cache
  /// entry; `*cache_hit` reports whether parse/materialize was skipped.
  StatusOr<std::shared_ptr<const CachedTree>> ResolveInline(
      const std::string& text, DiffRequest::Format format, bool* cache_hit);
  StatusOr<std::shared_ptr<const CachedTree>> ResolveVersion(
      const std::string& doc_id, int version, bool* cache_hit)
      EXCLUDES(stores_mu_);

  /// The published entry under `doc_id`, or null. Takes the registry lock
  /// shared: lookups on the request path don't serialize behind each other.
  StoreEntry* FindStore(const std::string& doc_id) EXCLUDES(stores_mu_);

  StatusOr<Tree> ParseDoc(const std::string& text, DiffRequest::Format format);

  DiffServiceOptions options_;
  std::shared_ptr<LabelTable> labels_ = std::make_shared<LabelTable>();
  MetricsRegistry metrics_;
  TreeCache cache_;
  ThreadPool pool_;  // Last member: workers must die before what they use.

  /// Guards the registry map (reader/writer: attach/create write, request
  /// lookups read); per-store work holds entry->mu.
  SharedMutex stores_mu_;
  std::map<std::string, std::unique_ptr<StoreEntry>> stores_
      GUARDED_BY(stores_mu_);

  // Hot-path metric handles (registered once; recording is pure atomics).
  Counter* requests_ = nullptr;
  Counter* responses_ok_ = nullptr;
  Counter* responses_error_ = nullptr;
  Counter* shed_queue_full_ = nullptr;
  Counter* shed_deadline_ = nullptr;
  Counter* shed_degraded_ = nullptr;
  Counter* cache_hits_ = nullptr;
  Counter* cache_misses_ = nullptr;
  Counter* rung_counters_[4] = {nullptr, nullptr, nullptr, nullptr};
  Histogram* queue_wait_h_ = nullptr;
  Histogram* resolve_h_ = nullptr;
  Histogram* match_h_ = nullptr;
  Histogram* gen_h_ = nullptr;
  Histogram* e2e_h_ = nullptr;
};

}  // namespace treediff

#endif  // TREEDIFF_SERVICE_DIFF_SERVICE_H_
