#include "service/tree_cache.h"

#include <algorithm>
#include <string>

#include "util/crc32c.h"

namespace treediff {

namespace {

/// Approximate footprint of a cached entry: the node arena (records +
/// values + child lists) plus the warmed index's per-node arrays. Dead
/// slots count too — they occupy arena either way.
size_t ApproxFootprint(const Tree& tree) {
  // Per id: NodeRec bookkeeping (~80 B) + index scalar/order/fingerprint
  // arrays (5 ints + 2 orders worth of ids + hashes, ~96 B).
  size_t bytes = tree.id_bound() * 176;
  for (NodeId x = 0; x < static_cast<NodeId>(tree.id_bound()); ++x) {
    bytes += tree.value(x).capacity();
    bytes += tree.children(x).capacity() * sizeof(NodeId);
  }
  return bytes;
}

}  // namespace

CachedTree::CachedTree(Tree t, uint64_t cache_key)
    : tree(std::move(t)), index(tree), key(cache_key) {
  tree.Freeze();
  index.WarmAll();
  bytes = ApproxFootprint(tree);
}

TreeCache::TreeCache(Options options)
    : per_shard_capacity_(options.capacity_bytes /
                          static_cast<size_t>(std::max(options.shards, 1))) {
  const int n = std::max(options.shards, 1);
  shards_.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) shards_.push_back(std::make_unique<Shard>());
}

std::shared_ptr<const CachedTree> TreeCache::Lookup(uint64_t key) {
  Shard& shard = ShardFor(key);
  MutexLock lock(&shard.mu);
  auto it = shard.map.find(key);
  if (it == shard.map.end()) {
    misses_.fetch_add(1, std::memory_order_relaxed);
    return nullptr;
  }
  shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
  hits_.fetch_add(1, std::memory_order_relaxed);
  return it->second->second;
}

std::shared_ptr<const CachedTree> TreeCache::Insert(uint64_t key, Tree tree) {
  // Freeze + warm outside the shard lock: this is the expensive part, and a
  // racing duplicate insert merely wastes its own work.
  auto entry = std::make_shared<const CachedTree>(std::move(tree), key);
  Shard& shard = ShardFor(key);
  MutexLock lock(&shard.mu);
  auto it = shard.map.find(key);
  if (it != shard.map.end()) {
    shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
    return it->second->second;  // First insert won.
  }
  shard.lru.emplace_front(key, entry);
  shard.map.emplace(key, shard.lru.begin());
  shard.bytes += entry->bytes;
  insertions_.fetch_add(1, std::memory_order_relaxed);
  // Evict cold entries, but always keep the one just inserted: a single
  // over-budget document must still be served.
  while (shard.bytes > per_shard_capacity_ && shard.lru.size() > 1) {
    auto& victim = shard.lru.back();
    shard.bytes -= victim.second->bytes;
    shard.map.erase(victim.first);
    shard.lru.pop_back();
    evictions_.fetch_add(1, std::memory_order_relaxed);
  }
  return entry;
}

TreeCache::Stats TreeCache::stats() const {
  Stats s;
  s.hits = hits_.load(std::memory_order_relaxed);
  s.misses = misses_.load(std::memory_order_relaxed);
  s.insertions = insertions_.load(std::memory_order_relaxed);
  s.evictions = evictions_.load(std::memory_order_relaxed);
  for (const auto& shard : shards_) {
    MutexLock lock(&shard->mu);
    s.bytes += shard->bytes;
    s.entries += shard->lru.size();
  }
  return s;
}

uint64_t TreeCache::FingerprintText(std::string_view format_tag,
                                    std::string_view text) {
  uint64_t h = HashValueBytes(format_tag);
  h = (h * 1099511628211ull) ^ HashValueBytes(text);
  // Fold in CRC-32C as an independent second hash: a collision now needs
  // to defeat both functions at once.
  return h ^ (static_cast<uint64_t>(Crc32c(text)) << 32);
}

uint64_t TreeCache::FingerprintVersion(std::string_view doc_id, int version) {
  uint64_t h = HashValueBytes("store-version");
  h = (h * 1099511628211ull) ^ HashValueBytes(doc_id);
  return h ^ static_cast<uint64_t>(version);
}

}  // namespace treediff
