#include "service/diff_service.h"

#include <algorithm>
#include <optional>
#include <utility>

#include "core/script_io.h"
#include "doc/xml.h"
#include "tree/builder.h"
#include "util/retry.h"

namespace treediff {

namespace {

double Seconds(std::chrono::steady_clock::duration d) {
  return std::chrono::duration<double>(d).count();
}

/// The lower (cheaper) of two ladder rungs. Rungs are ordered best-first,
/// so "lower on the ladder" is the numerically larger enum value.
DiffRung LowerRung(DiffRung a, DiffRung b) {
  return static_cast<int>(a) >= static_cast<int>(b) ? a : b;
}

/// Errors that say the store itself is sick. Requests for things that do
/// not exist (kNotFound/kOutOfRange), unparseable documents, and versions
/// permanently lost to a salvage hole (kDataLoss) are answered correctly
/// by a healthy store, so they never move the breaker.
bool CountsTowardBreaker(const Status& status) {
  switch (status.code()) {
    case Code::kNotFound:
    case Code::kOutOfRange:
    case Code::kInvalidArgument:
    case Code::kParseError:
    case Code::kDataLoss:
      return false;
    default:
      return true;
  }
}

}  // namespace

const char* StoreHealthName(StoreHealth health) {
  switch (health) {
    case StoreHealth::kHealthy:
      return "healthy";
    case StoreHealth::kDegraded:
      return "degraded";
    case StoreHealth::kQuarantined:
      return "quarantined";
  }
  return "unknown";
}

DiffService::DiffService(DiffServiceOptions options)
    : options_(options),
      cache_(TreeCache::Options{options.cache_capacity_bytes,
                                options.cache_shards}),
      pool_(ThreadPool::Options{std::max(options.num_threads, 1),
                                std::max<size_t>(options.queue_capacity, 1)}) {
  requests_ = metrics_.counter("diff_requests_total");
  responses_ok_ = metrics_.counter("diff_responses_ok_total");
  responses_error_ = metrics_.counter("diff_responses_error_total");
  shed_queue_full_ = metrics_.counter("diff_shed_queue_full_total");
  shed_deadline_ = metrics_.counter("diff_shed_queue_deadline_total");
  shed_degraded_ = metrics_.counter("diff_admitted_degraded_total");
  cache_hits_ = metrics_.counter("tree_cache_hits_total");
  cache_misses_ = metrics_.counter("tree_cache_misses_total");
  for (int r = 0; r < 4; ++r) {
    rung_counters_[r] = metrics_.counter(
        std::string("diff_rung_total{rung=\"") +
        DiffRungName(static_cast<DiffRung>(r)) + "\"}");
  }
  prune_subtrees_ = metrics_.counter("diff_prune_subtrees_total");
  prune_nodes_ = metrics_.counter("diff_prune_nodes_total");
  prune_collisions_ = metrics_.counter("diff_prune_collisions_total");
  match_cache_hits_ = metrics_.counter("diff_match_cache_hits_total");
  match_cache_misses_ = metrics_.counter("diff_match_cache_misses_total");
  chain_log_hits_ = metrics_.counter("diff_chain_log_hits_total");
  store_retries_ = metrics_.counter("store_retry_total");
  breaker_trips_ = metrics_.counter("store_breaker_trips_total");
  breaker_fast_fails_ = metrics_.counter("store_breaker_fast_fails_total");
  store_repairs_ = metrics_.counter("store_repairs_total");
  store_failovers_ = metrics_.counter("store_failovers_total");
  scrub_runs_ = metrics_.counter("store_scrub_runs_total");
  scrub_corruption_found_ = metrics_.counter("store_scrub_corruption_total");
  queue_wait_h_ = metrics_.histogram("diff_queue_wait_seconds");
  resolve_h_ = metrics_.histogram("diff_resolve_seconds");
  match_h_ = metrics_.histogram("diff_match_seconds");
  gen_h_ = metrics_.histogram("diff_gen_seconds");
  e2e_h_ = metrics_.histogram("diff_e2e_seconds");

  if (options_.scrub_interval_seconds > 0.0) {
    scrubber_ = std::thread([this] { ScrubLoop(); });
  }
}

DiffService::~DiffService() { Shutdown(); }

void DiffService::Shutdown() {
  {
    MutexLock lock(&scrub_mu_);
    scrub_stop_ = true;
  }
  scrub_cv_.SignalAll();
  if (scrubber_.joinable()) scrubber_.join();
  pool_.Shutdown();
}

void DiffService::ScrubLoop() {
  for (;;) {
    {
      MutexLock lock(&scrub_mu_);
      if (!scrub_stop_) {
        scrub_cv_.WaitFor(&scrub_mu_, options_.scrub_interval_seconds);
      }
      if (scrub_stop_) return;
    }
    // Scrub outside scrub_mu_ so Shutdown never waits on store I/O.
    ScrubNow();
  }
}

int DiffService::ScrubNow() {
  // Snapshot the registry first: entries are never removed, so the
  // pointers stay valid after the lock drops, and the slow per-store work
  // does not hold the registry lock against attaches and lookups.
  std::vector<StoreEntry*> entries;
  {
    ReaderMutexLock lock(&stores_mu_);
    entries.reserve(stores_.size());
    for (const auto& [id, entry] : stores_) entries.push_back(entry.get());
  }
  int scrubbed = 0;
  for (StoreEntry* entry : entries) {
    if (entry->replicated != nullptr) {
      // The group scrubs the primary's log *and* re-verifies every
      // follower's CRC chain (divergence detection + resync).
      entry->replicated->Scrub().IgnoreError();
      scrub_runs_->Increment();
      ++scrubbed;
      continue;
    }
    MutexLock lock(&entry->mu);
    if (!entry->store->durable()) continue;
    const StatusOr<ScrubReport> report = entry->store->Scrub();
    scrub_runs_->Increment();
    ++scrubbed;
    if (report.ok() && report->corruption_found) {
      scrub_corruption_found_->Increment();
    }
  }
  return scrubbed;
}

std::vector<DiffService::StoreStatus> DiffService::StoreStatuses() {
  std::vector<std::pair<std::string, StoreEntry*>> entries;
  {
    ReaderMutexLock lock(&stores_mu_);
    entries.reserve(stores_.size());
    for (const auto& [id, entry] : stores_) {
      entries.emplace_back(id, entry.get());
    }
  }
  std::vector<StoreStatus> statuses;
  statuses.reserve(entries.size());
  for (const auto& [id, entry] : entries) {
    StoreStatus status;
    status.doc_id = id;
    {
      MutexLock lock(&entry->mu);
      status.versions = entry->store->VersionCount();
      status.durable = entry->store->durable();
      status.faults = entry->store->fault_counters();
      status.health = entry->health;
      status.consecutive_failures = entry->consecutive_failures;
    }
    if (entry->replicated != nullptr) {
      status.replicated = true;
      status.repl_epoch = entry->replicated->epoch();
      status.repl_primary = entry->replicated->primary_index();
      status.replicas = entry->replicated->Replicas();
    }
    statuses.push_back(std::move(status));
  }
  return statuses;
}

Status DiffService::GuardedStoreOp(
    StoreEntry* entry, const std::function<Status(VersionStore*)>& op) {
  MutexLock lock(&entry->mu);
  if (entry->health == StoreHealth::kQuarantined) {
    if (Clock::now() < entry->quarantined_until) {
      breaker_fast_fails_->Increment();
      return Status::Unavailable(
          "store quarantined by circuit breaker; retry after cooldown");
    }
    // Cooldown over: fall through and let this request probe (half-open).
  }

  const int attempts = std::max(options_.store_retry_attempts, 1);
  Status last = Status::Ok();
  for (int attempt = 0; attempt < attempts; ++attempt) {
    if (attempt > 0) {
      store_retries_->Increment();
      const double backoff = options_.store_retry_backoff_seconds *
                             static_cast<double>(1 << (attempt - 1));
      if (options_.sleep) {
        options_.sleep(backoff);
      } else if (backoff > 0.0) {
        std::this_thread::sleep_for(std::chrono::duration<double>(backoff));
      }
    }
    last = op(entry->store);
    if (last.ok()) break;
    if (last.code() == Code::kFailedPrecondition &&
        entry->store->durable()) {
      // The store poisoned itself after an I/O failure. Heal it by
      // rotation and re-run the operation on the fresh log; no
      // acknowledged commit is lost (the in-memory state is the
      // acknowledged state). A failed repair falls through to the
      // transient/permanent classification below.
      store_repairs_->Increment();
      const Status repaired = entry->store->Repair();
      if (repaired.ok()) continue;
      last = repaired;
    }
    if (!IsTransientError(last)) break;
  }

  if (last.ok()) {
    entry->consecutive_failures = 0;
    entry->health = StoreHealth::kHealthy;
  } else if (CountsTowardBreaker(last)) {
    ++entry->consecutive_failures;
    if (entry->consecutive_failures >=
        std::max(options_.breaker_failure_threshold, 1)) {
      // A replicated entry has a stronger recovery rung than quarantine:
      // fail away from the sick primary. Promote the most-caught-up
      // follower (fenced: the epoch bump invalidates the deposed
      // primary's leases) and probe the new primary with the same op.
      if (entry->replicated != nullptr &&
          entry->replicated->Promote().ok()) {
        store_failovers_->Increment();
        entry->primary_holder = entry->replicated->primary();
        entry->store = entry->primary_holder.get();
        entry->consecutive_failures = 0;
        last = op(entry->store);
        if (last.ok()) {
          entry->health = StoreHealth::kHealthy;
          return last;
        }
        ++entry->consecutive_failures;  // New primary is failing too.
      }
      entry->health = StoreHealth::kQuarantined;
      entry->quarantined_until =
          Clock::now() + std::chrono::duration_cast<Clock::duration>(
                             std::chrono::duration<double>(
                                 options_.breaker_cooldown_seconds));
      breaker_trips_->Increment();
    } else {
      entry->health = StoreHealth::kDegraded;
    }
  }
  return last;
}

void DiffService::Submit(DiffRequest request,
                         std::function<void(DiffResponse)> done) {
  requests_->Increment();
  const Clock::time_point submitted = Clock::now();

  // Pressure probe at admission, not at execution: the decision must be
  // based on how much work is queued ahead of this request.
  bool shed_degraded = false;
  if (options_.degrade_queue_fraction <= 1.0) {
    const size_t depth = pool_.QueueDepth();
    const double fraction =
        static_cast<double>(depth) /
        static_cast<double>(pool_.queue_capacity());
    shed_degraded = fraction >= options_.degrade_queue_fraction;
  }

  // Shared, not moved into the lambda directly: the shed path below still
  // needs the callback when TrySubmit declines the closure.
  auto done_ptr =
      std::make_shared<std::function<void(DiffResponse)>>(std::move(done));

  const bool admitted = pool_.TrySubmit(
      [this, done_ptr, request = std::move(request), submitted,
       shed_degraded]() mutable {
        (*done_ptr)(Process(request, submitted, shed_degraded));
      });
  if (!admitted) {
    shed_queue_full_->Increment();
    responses_error_->Increment();
    DiffResponse shed;
    shed.status =
        Status::ResourceExhausted("request queue full: request shed");
    shed.total_seconds = Seconds(Clock::now() - submitted);
    (*done_ptr)(std::move(shed));
  }
}

std::future<DiffResponse> DiffService::Submit(DiffRequest request) {
  auto promise = std::make_shared<std::promise<DiffResponse>>();
  std::future<DiffResponse> future = promise->get_future();
  Submit(std::move(request), [promise](DiffResponse response) {
    promise->set_value(std::move(response));
  });
  return future;
}

DiffResponse DiffService::SubmitSync(DiffRequest request) {
  return Submit(std::move(request)).get();
}

std::shared_ptr<const DiffService::MatchingCacheEntry>
DiffService::LookupMatching(uint64_t key_old, uint64_t key_new,
                            DiffRung rung) {
  MutexLock lock(&match_cache_mu_);
  for (auto it = match_cache_.begin(); it != match_cache_.end(); ++it) {
    if (it->key_old == key_old && it->key_new == key_new &&
        it->rung == rung) {
      match_cache_.splice(match_cache_.begin(), match_cache_, it);
      return match_cache_.front().entry;
    }
  }
  return nullptr;
}

void DiffService::StoreMatching(
    uint64_t key_old, uint64_t key_new, DiffRung rung,
    std::shared_ptr<const MatchingCacheEntry> entry) {
  MutexLock lock(&match_cache_mu_);
  for (const MatchingCacheSlot& slot : match_cache_) {
    if (slot.key_old == key_old && slot.key_new == key_new &&
        slot.rung == rung) {
      return;  // A concurrent request published the same matching first.
    }
  }
  match_cache_.push_front({key_old, key_new, rung, std::move(entry)});
  const size_t cap = std::max<size_t>(options_.matching_cache_entries, 1);
  while (match_cache_.size() > cap) match_cache_.pop_back();
}

bool DiffService::ServeFromChainLog(const DiffRequest& request,
                                    DiffResponse* response) {
  if (request.doc_id.empty() || request.from_version < 0 ||
      request.to_version != request.from_version + 1) {
    return false;
  }
  StoreEntry* entry = FindStore(request.doc_id);
  if (entry == nullptr) return false;  // Normal path reports kNotFound.

  // The delta that takes from_version to to_version is exactly what the
  // store replays inside Materialize, so answering with it skips resolve,
  // matching, and generation outright. The script must be copied out (and
  // formatted) under the store lock: the DeltaFor pointer dangles across
  // the next Commit/RollbackHead.
  bool served = false;
  size_t operations = 0;
  std::string text;
  const Status status = GuardedStoreOp(entry, [&](VersionStore* store) {
    const EditScript* delta = store->DeltaFor(request.to_version);
    if (delta == nullptr) return Status::Ok();  // Fall through below.
    operations = delta->size();
    if (request.want_script_text) {
      text = FormatEditScript(*delta, *store->label_table());
    }
    served = true;
    return Status::Ok();
  });
  if (!status.ok() || !served) return false;

  response->operations = operations;
  response->script = std::move(text);
  response->chain_log_hit = true;
  chain_log_hits_->Increment();
  return true;
}

DiffResponse DiffService::Process(const DiffRequest& request,
                                  Clock::time_point submitted,
                                  bool shed_degraded) {
  DiffResponse response;
  response.shed_degraded = shed_degraded;
  if (shed_degraded) shed_degraded_->Increment();

  const Clock::time_point started = Clock::now();
  response.queue_seconds = Seconds(started - submitted);
  queue_wait_h_->Observe(response.queue_seconds);

  auto finish = [&](DiffResponse&& r) {
    r.total_seconds = Seconds(Clock::now() - submitted);
    e2e_h_->Observe(r.total_seconds);
    if (r.status.ok()) {
      responses_ok_->Increment();
    } else {
      responses_error_->Increment();
    }
    return std::move(r);
  };

  // Per-request budget. The deadline is end-to-end: time burned waiting in
  // the queue comes off the pipeline's allowance, and a request that aged
  // out entirely while queued is shed before any work is done on it.
  const double deadline = request.deadline_seconds > 0.0
                              ? request.deadline_seconds
                              : options_.default_deadline_seconds;
  const size_t node_cap =
      request.node_cap > 0 ? request.node_cap : options_.default_node_cap;
  Budget budget;
  bool budgeted = false;
  if (deadline > 0.0) {
    const double remaining = deadline - response.queue_seconds;
    if (remaining <= 0.0) {
      shed_deadline_->Increment();
      response.status = Status::DeadlineExceeded(
          "deadline expired while queued: request shed");
      return finish(std::move(response));
    }
    budget.set_deadline_seconds(remaining);
    budgeted = true;
  }
  if (node_cap > 0) {
    budget.set_node_cap(node_cap);
    budgeted = true;
  }

  // Incremental chain path: an adjacent stored-mode request is answered
  // from the commit log without resolving, matching, or generating.
  if (options_.incremental && ServeFromChainLog(request, &response)) {
    return finish(std::move(response));
  }

  // Resolve both documents through the tree cache.
  const Clock::time_point resolve_start = Clock::now();
  StatusOr<std::shared_ptr<const CachedTree>> old_entry = [&] {
    return request.doc_id.empty()
               ? ResolveInline(request.old_doc, request.format,
                               &response.cache_hit_old)
               : ResolveVersion(request.doc_id, request.from_version,
                                &response.cache_hit_old);
  }();
  if (!old_entry.ok()) {
    response.status = old_entry.status();
    return finish(std::move(response));
  }
  StatusOr<std::shared_ptr<const CachedTree>> new_entry = [&] {
    return request.doc_id.empty()
               ? ResolveInline(request.new_doc, request.format,
                               &response.cache_hit_new)
               : ResolveVersion(request.doc_id, request.to_version,
                                &response.cache_hit_new);
  }();
  if (!new_entry.ok()) {
    response.status = new_entry.status();
    return finish(std::move(response));
  }
  response.resolve_seconds = Seconds(Clock::now() - resolve_start);
  resolve_h_->Observe(response.resolve_seconds);

  const CachedTree& old_cached = **old_entry;
  const CachedTree& new_cached = **new_entry;

  DiffOptions diff = options_.diff;
  diff.budget = budgeted ? &budget : nullptr;
  diff.index1 = &old_cached.index;
  diff.index2 = &new_cached.index;
  diff.start_rung = request.start_rung;
  if (shed_degraded) {
    diff.start_rung =
        LowerRung(diff.start_rung, options_.degraded_start_rung);
  }
  if (options_.incremental && diff.share_mode == ShareMode::kOff) {
    diff.share_mode = ShareMode::kIndexed;
  }

  // Matching reuse: only for unbudgeted requests (a budget can stop phase 1
  // anywhere, so only a full, deterministic phase-1 product is cacheable)
  // and keyed by the content fingerprints of both trees plus the effective
  // starting rung. The cached matching pins its tree entries, so the node
  // ids it holds stay valid.
  std::shared_ptr<const MatchingCacheEntry> reused;
  const bool cacheable = options_.incremental && !budgeted;
  if (cacheable) {
    reused = LookupMatching(old_cached.key, new_cached.key, diff.start_rung);
    if (reused != nullptr) {
      diff.reuse_matching = &reused->matching;
      response.matching_cache_hit = true;
      match_cache_hits_->Increment();
    } else {
      match_cache_misses_->Increment();
    }
  }

  StatusOr<DiffResult> result =
      DiffTrees(old_cached.tree, new_cached.tree, diff);
  if (!result.ok()) {
    response.status = result.status();
    return finish(std::move(response));
  }

  if (cacheable && reused == nullptr && !result->report.degraded) {
    StoreMatching(old_cached.key, new_cached.key, diff.start_rung,
                  std::make_shared<MatchingCacheEntry>(
                      *old_entry, *new_entry, result->matching));
  }
  response.pruned_subtrees = result->report.prune_settled_subtrees;
  response.pruned_nodes = result->report.prune_settled_nodes;
  prune_subtrees_->Increment(result->report.prune_settled_subtrees);
  prune_nodes_->Increment(result->report.prune_settled_nodes);
  prune_collisions_->Increment(result->report.prune_collisions);

  response.rung = result->report.rung;
  response.degraded = result->report.degraded;
  response.operations = result->script.size();
  response.match_seconds = result->stats.match_seconds;
  response.gen_seconds = result->stats.script_seconds;
  match_h_->Observe(response.match_seconds);
  gen_h_->Observe(response.gen_seconds);
  rung_counters_[static_cast<int>(response.rung)]->Increment();
  if (request.want_script_text) {
    response.script =
        FormatEditScript(result->script, old_cached.tree.labels());
  }
  return finish(std::move(response));
}

StatusOr<Tree> DiffService::ParseDoc(const std::string& text,
                                     DiffRequest::Format format) {
  return format == DiffRequest::Format::kSexpr ? ParseSexpr(text, labels_)
                                               : ParseXml(text, labels_);
}

StatusOr<std::shared_ptr<const CachedTree>> DiffService::ResolveInline(
    const std::string& text, DiffRequest::Format format, bool* cache_hit) {
  const uint64_t key = TreeCache::FingerprintText(
      format == DiffRequest::Format::kSexpr ? "sexpr" : "xml", text);
  if (auto entry = cache_.Lookup(key)) {
    *cache_hit = true;
    cache_hits_->Increment();
    return entry;
  }
  *cache_hit = false;
  cache_misses_->Increment();
  StatusOr<Tree> tree = ParseDoc(text, format);
  if (!tree.ok()) return tree.status();
  return cache_.Insert(key, std::move(tree).value());
}

DiffService::StoreEntry* DiffService::FindStore(const std::string& doc_id) {
  ReaderMutexLock lock(&stores_mu_);
  auto it = stores_.find(doc_id);
  return it == stores_.end() ? nullptr : it->second.get();
}

StatusOr<std::shared_ptr<const CachedTree>> DiffService::ResolveVersion(
    const std::string& doc_id, int version, bool* cache_hit) {
  StoreEntry* entry = FindStore(doc_id);
  if (entry == nullptr) {
    return Status::NotFound("no store attached under doc_id \"" + doc_id +
                            "\"");
  }
  // Replicated stores salt the cache key with the group epoch: a version
  // number can be reused across a failover (a non-quorum-acked commit lost
  // with the deposed primary, then the slot recommitted under the new
  // epoch), and an unsalted key would keep serving the dead timeline.
  const uint64_t key =
      entry->replicated != nullptr
          ? TreeCache::FingerprintVersion(
                doc_id + "@e" + std::to_string(entry->replicated->epoch()),
                version)
          : TreeCache::FingerprintVersion(doc_id, version);
  if (auto cached = cache_.Lookup(key)) {
    *cache_hit = true;
    cache_hits_->Increment();
    return cached;
  }
  *cache_hit = false;
  cache_misses_->Increment();
  // Materialize through the resilience wrapper (retry / repair / breaker);
  // freezing + indexing happen inside Insert, off the store lock.
  std::optional<Tree> tree;
  const Status status = GuardedStoreOp(entry, [&](VersionStore* store) {
    if (version < 0 || version >= store->VersionCount()) {
      return Status::OutOfRange(
          "version " + std::to_string(version) + " out of range [0, " +
          std::to_string(store->VersionCount() - 1) + "] for \"" + doc_id +
          "\"");
    }
    // Replicated reads go through the group, which prefers a caught-up
    // follower within the staleness bound and falls back to the primary.
    StatusOr<Tree> materialized = entry->replicated != nullptr
                                      ? entry->replicated->Materialize(version)
                                      : store->Materialize(version);
    if (!materialized.ok()) return materialized.status();
    tree = std::move(materialized).value();
    return Status::Ok();
  });
  if (!status.ok()) return status;
  return cache_.Insert(key, std::move(*tree));
}

Status DiffService::AttachStore(const std::string& doc_id,
                                VersionStore* store) {
  if (store == nullptr) {
    return Status::InvalidArgument("AttachStore: null store");
  }
  WriterMutexLock lock(&stores_mu_);
  auto [it, inserted] = stores_.emplace(doc_id, nullptr);
  if (!inserted) {
    return Status::FailedPrecondition("doc_id \"" + doc_id +
                                      "\" already attached");
  }
  it->second = std::make_unique<StoreEntry>();
  it->second->store = store;
  return Status::Ok();
}

Status DiffService::CreateStore(const std::string& doc_id,
                                const std::string& base_doc,
                                DiffRequest::Format format) {
  StatusOr<Tree> base = ParseDoc(base_doc, format);
  if (!base.ok()) return base.status();
  auto owned = std::make_unique<VersionStore>(std::move(base).value(),
                                              options_.diff);
  WriterMutexLock lock(&stores_mu_);
  auto [it, inserted] = stores_.emplace(doc_id, nullptr);
  if (!inserted) {
    return Status::FailedPrecondition("doc_id \"" + doc_id +
                                      "\" already attached");
  }
  it->second = std::make_unique<StoreEntry>();
  it->second->store = owned.get();
  it->second->owned = std::move(owned);
  return Status::Ok();
}

StatusOr<int> DiffService::CommitVersion(const std::string& doc_id,
                                         const std::string& doc,
                                         DiffRequest::Format format) {
  StoreEntry* entry = FindStore(doc_id);
  if (entry == nullptr) {
    return Status::NotFound("no store attached under doc_id \"" + doc_id +
                            "\"");
  }
  int version = -1;
  const Status status = GuardedStoreOp(entry, [&](VersionStore* store) {
    // Commits must use the store's label table, which for attached stores
    // is not the service's inline table. Re-parsing on a retry is safe:
    // interning is idempotent.
    StatusOr<Tree> tree = format == DiffRequest::Format::kSexpr
                              ? ParseSexpr(doc, store->label_table())
                              : ParseXml(doc, store->label_table());
    if (!tree.ok()) return tree.status();
    // Replicated commits go through the group: a lease minted now fences
    // the write against concurrent failovers, and quorum mode blocks for
    // follower acks. Direct store->Commit would bypass both.
    StatusOr<int> committed = entry->replicated != nullptr
                                  ? entry->replicated->Commit(*tree)
                                  : store->Commit(*tree);
    if (!committed.ok()) return committed.status();
    version = *committed;
    return Status::Ok();
  });
  if (!status.ok()) return status;
  return version;
}

Status DiffService::AttachReplicatedStore(
    const std::string& doc_id, std::shared_ptr<ReplicatedVersionStore> group) {
  if (group == nullptr) {
    return Status::InvalidArgument("AttachReplicatedStore: null group");
  }
  auto entry = std::make_unique<StoreEntry>();
  entry->replicated = std::move(group);
  {
    MutexLock entry_lock(&entry->mu);
    entry->primary_holder = entry->replicated->primary();
    entry->store = entry->primary_holder.get();
  }
  WriterMutexLock lock(&stores_mu_);
  auto [it, inserted] = stores_.emplace(doc_id, nullptr);
  if (!inserted) {
    return Status::FailedPrecondition("doc_id \"" + doc_id +
                                      "\" already attached");
  }
  it->second = std::move(entry);
  return Status::Ok();
}

Status DiffService::CreateReplicatedStore(const std::string& doc_id,
                                          const std::string& base_doc,
                                          std::vector<ReplicaConfig> replicas,
                                          AckMode ack_mode,
                                          DiffRequest::Format format) {
  StatusOr<Tree> base = ParseDoc(base_doc, format);
  if (!base.ok()) return base.status();
  ReplicationOptions repl;
  repl.ack_mode = ack_mode;
  repl.metrics = &metrics_;
  repl.store_options.metrics = &metrics_;
  repl.store_options.sleep = options_.sleep;
  auto group = ReplicatedVersionStore::Create(
      std::move(replicas), std::move(base).value(), options_.diff, repl);
  if (!group.ok()) return group.status();
  return AttachReplicatedStore(doc_id,
                               std::shared_ptr<ReplicatedVersionStore>(
                                   std::move(*group)));
}

}  // namespace treediff
