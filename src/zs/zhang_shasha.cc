#include "zs/zhang_shasha.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <string>
#include <map>

namespace treediff {

namespace {

constexpr double kEps = 1e-9;

bool ApproxEq(double a, double b) { return std::fabs(a - b) < kEps; }

/// Postorder view of a Tree, the indexing scheme of the ZS dynamic program.
/// Postorder positions are 1-based; lml[i] is the postorder position of the
/// leftmost leaf of the subtree rooted at position i; keyroots are the
/// positions with no ancestor sharing their leftmost leaf.
struct PostorderView {
  std::vector<NodeId> node;  // node[i], i in 1..n.
  std::vector<int> lml;      // lml[i], i in 1..n.
  std::vector<int> keyroots;
  int n = 0;

  explicit PostorderView(const Tree& t, const TreeIndex* index = nullptr) {
    if (index == nullptr) index = t.attached_index();
    const std::vector<NodeId> order =
        index != nullptr ? index->PostOrder() : t.PostOrder();
    n = static_cast<int>(order.size());
    node.assign(static_cast<size_t>(n) + 1, kInvalidNode);
    lml.assign(static_cast<size_t>(n) + 1, 0);
    std::vector<int> pos(t.id_bound(), 0);
    for (int i = 1; i <= n; ++i) {
      node[static_cast<size_t>(i)] = order[static_cast<size_t>(i - 1)];
      pos[static_cast<size_t>(order[static_cast<size_t>(i - 1)])] = i;
    }
    // Leftmost leaf of a leaf is itself; of an internal node, the leftmost
    // leaf of its first child — whose postorder position precedes the
    // parent's, so one ascending pass closes the recurrence in O(n).
    for (int i = 1; i <= n; ++i) {
      const NodeId x = node[static_cast<size_t>(i)];
      const auto& kids = t.children(x);
      lml[static_cast<size_t>(i)] =
          kids.empty()
              ? i
              : lml[static_cast<size_t>(
                    pos[static_cast<size_t>(kids.front())])];
    }
    // Keyroots: for each distinct lml value, the largest position having it.
    std::vector<int> largest(static_cast<size_t>(n) + 1, 0);
    for (int i = 1; i <= n; ++i) {
      largest[static_cast<size_t>(lml[static_cast<size_t>(i)])] = i;
    }
    for (int i = 1; i <= n; ++i) {
      if (largest[static_cast<size_t>(lml[static_cast<size_t>(i)])] == i) {
        keyroots.push_back(i);
      }
    }
  }
};

class ZsSolver {
 public:
  ZsSolver(const Tree& t1, const Tree& t2, const ZsOptions& opts)
      : t1_(t1),
        t2_(t2),
        opts_(opts),
        v1_(t1, opts.index1),
        v2_(t2, opts.index2) {
    treedist_bytes_ = static_cast<size_t>(v1_.n + 1) *
                      static_cast<size_t>(v2_.n + 1) * sizeof(double);
    if (!BudgetChargeArena(opts_.budget, treedist_bytes_) ||
        !BudgetChargeNodes(opts_.budget,
                           static_cast<size_t>(v1_.n + v2_.n))) {
      aborted_ = true;
      return;
    }
    treedist_.assign(
        static_cast<size_t>(v1_.n + 1),
        std::vector<double>(static_cast<size_t>(v2_.n + 1), 0.0));
  }

  ~ZsSolver() { BudgetReleaseArena(opts_.budget, treedist_bytes_); }

  double Solve() {
    if (aborted_) return 0.0;
    for (int i : v1_.keyroots) {
      if (!BudgetCheckNow(opts_.budget)) {
        aborted_ = true;
        return 0.0;
      }
      for (int j : v2_.keyroots) {
        ForestDist(i, j, /*fd_out=*/nullptr);
        if (aborted_) return 0.0;
      }
    }
    return treedist_[static_cast<size_t>(v1_.n)][static_cast<size_t>(v2_.n)];
  }

  /// True if the budget exhausted mid-run; the computed values are invalid.
  bool aborted() const { return aborted_; }

  std::vector<std::pair<NodeId, NodeId>> Backtrack() {
    std::vector<std::pair<NodeId, NodeId>> mapping;
    BacktrackTreePair(v1_.n, v2_.n, &mapping);
    std::reverse(mapping.begin(), mapping.end());
    return mapping;
  }

 private:
  double Rename(int i, int j) const {
    const NodeId x = v1_.node[static_cast<size_t>(i)];
    const NodeId y = v2_.node[static_cast<size_t>(j)];
    BudgetChargeComparisons(opts_.budget);
    if (t1_.label(x) != t2_.label(y)) return opts_.relabel_cost;
    if (opts_.comparator != nullptr) {
      return std::clamp(opts_.comparator->Compare(t1_, x, t2_, y), 0.0, 2.0);
    }
    return t1_.value(x) == t2_.value(y) ? 0.0 : opts_.update_cost;
  }

  /// Computes the forest distances for the keyroot (or backtrack) pair
  /// (i, j), filling treedist_ for all subtree pairs it closes. If `fd_out`
  /// is non-null the full forest-distance matrix is copied out for
  /// backtracking.
  void ForestDist(int i, int j, std::vector<std::vector<double>>* fd_out) {
    const int li = v1_.lml[static_cast<size_t>(i)];
    const int lj = v2_.lml[static_cast<size_t>(j)];
    const int rows = i - li + 2;  // index 0 = empty forest.
    const int cols = j - lj + 2;
    const size_t fd_bytes =
        static_cast<size_t>(rows) * static_cast<size_t>(cols) * sizeof(double);
    if (!BudgetChargeArena(opts_.budget, fd_bytes)) {
      aborted_ = true;
      BudgetReleaseArena(opts_.budget, fd_bytes);
      return;
    }
    std::vector<std::vector<double>> fd(
        static_cast<size_t>(rows),
        std::vector<double>(static_cast<size_t>(cols), 0.0));
    for (int di = 1; di < rows; ++di) {
      fd[static_cast<size_t>(di)][0] =
          fd[static_cast<size_t>(di - 1)][0] + opts_.delete_cost;
    }
    for (int dj = 1; dj < cols; ++dj) {
      fd[0][static_cast<size_t>(dj)] =
          fd[0][static_cast<size_t>(dj - 1)] + opts_.insert_cost;
    }
    for (int di = li; di <= i; ++di) {
      if (!BudgetCheck(opts_.budget)) {
        aborted_ = true;
        BudgetReleaseArena(opts_.budget, fd_bytes);
        return;
      }
      for (int dj = lj; dj <= j; ++dj) {
        const int r = di - li + 1;
        const int c = dj - lj + 1;
        const double del =
            fd[static_cast<size_t>(r - 1)][static_cast<size_t>(c)] +
            opts_.delete_cost;
        const double ins =
            fd[static_cast<size_t>(r)][static_cast<size_t>(c - 1)] +
            opts_.insert_cost;
        if (v1_.lml[static_cast<size_t>(di)] == li &&
            v2_.lml[static_cast<size_t>(dj)] == lj) {
          const double ren =
              fd[static_cast<size_t>(r - 1)][static_cast<size_t>(c - 1)] +
              Rename(di, dj);
          const double best = std::min({del, ins, ren});
          fd[static_cast<size_t>(r)][static_cast<size_t>(c)] = best;
          treedist_[static_cast<size_t>(di)][static_cast<size_t>(dj)] = best;
        } else {
          const int pr = v1_.lml[static_cast<size_t>(di)] - li;
          const int pc = v2_.lml[static_cast<size_t>(dj)] - lj;
          const double cross =
              fd[static_cast<size_t>(pr)][static_cast<size_t>(pc)] +
              treedist_[static_cast<size_t>(di)][static_cast<size_t>(dj)];
          fd[static_cast<size_t>(r)][static_cast<size_t>(c)] =
              std::min({del, ins, cross});
        }
      }
    }
    BudgetReleaseArena(opts_.budget, fd_bytes);
    if (fd_out != nullptr) *fd_out = std::move(fd);
  }

  /// Decodes an optimal mapping for the subtree pair (i, j) (postorder
  /// positions), appending matched pairs. treedist_ must be fully computed.
  void BacktrackTreePair(int i, int j,
                         std::vector<std::pair<NodeId, NodeId>>* mapping) {
    const int li = v1_.lml[static_cast<size_t>(i)];
    const int lj = v2_.lml[static_cast<size_t>(j)];
    std::vector<std::vector<double>> fd;
    ForestDist(i, j, &fd);
    if (aborted_) return;  // fd is empty; nothing sound to decode.

    // On cost ties, prefer the mapping (rename / subtree-cross) branch over
    // delete+insert: equal-cost optima then keep as much structure mapped
    // as possible, which reads better and gives the [WZS95] move recovery
    // coherent unmapped regions to pair up.
    int di = i, dj = j;
    while (di >= li || dj >= lj) {
      const int r = di - li + 1;
      const int c = dj - lj + 1;
      const double cur = fd[static_cast<size_t>(r)][static_cast<size_t>(c)];
      if (di >= li && dj >= lj) {
        if (v1_.lml[static_cast<size_t>(di)] == li &&
            v2_.lml[static_cast<size_t>(dj)] == lj) {
          if (ApproxEq(cur, fd[static_cast<size_t>(r - 1)]
                              [static_cast<size_t>(c - 1)] +
                                Rename(di, dj))) {
            mapping->emplace_back(v1_.node[static_cast<size_t>(di)],
                                  v2_.node[static_cast<size_t>(dj)]);
            --di;
            --dj;
            continue;
          }
        } else {
          const int pr = v1_.lml[static_cast<size_t>(di)] - li;
          const int pc = v2_.lml[static_cast<size_t>(dj)] - lj;
          if (ApproxEq(cur,
                       fd[static_cast<size_t>(pr)][static_cast<size_t>(pc)] +
                           treedist_[static_cast<size_t>(di)]
                                    [static_cast<size_t>(dj)])) {
            BacktrackTreePair(di, dj, mapping);
            di = v1_.lml[static_cast<size_t>(di)] - 1;
            dj = v2_.lml[static_cast<size_t>(dj)] - 1;
            continue;
          }
        }
      }
      if (di >= li &&
          ApproxEq(cur, fd[static_cast<size_t>(r - 1)][static_cast<size_t>(
                            c)] +
                            opts_.delete_cost)) {
        --di;  // di is deleted.
        continue;
      }
      assert(dj >= lj);
      --dj;  // dj is inserted (the only branch left).
    }
  }

  const Tree& t1_;
  const Tree& t2_;
  ZsOptions opts_;
  PostorderView v1_;
  PostorderView v2_;
  std::vector<std::vector<double>> treedist_;
  size_t treedist_bytes_ = 0;
  bool aborted_ = false;
};

}  // namespace

ZsResult ZhangShasha(const Tree& t1, const Tree& t2,
                     const ZsOptions& options) {
  assert(t1.root() != kInvalidNode && t2.root() != kInvalidNode);
  ZsSolver solver(t1, t2, options);
  ZsResult result;
  result.distance = solver.Solve();
  // On budget exhaustion the DP table is partial; skip the backtrack (it
  // would decode garbage) and return an empty mapping.
  if (!solver.aborted()) result.mapping = solver.Backtrack();
  return result;
}

double ZhangShashaDistance(const Tree& t1, const Tree& t2,
                           const ZsOptions& options) {
  assert(t1.root() != kInvalidNode && t2.root() != kInvalidNode);
  ZsSolver solver(t1, t2, options);
  return solver.Solve();
}

namespace {

/// Memoized recursion over forests (ordered lists of disjoint subtrees),
/// the textbook formulation of ordered-forest edit distance. Exponential
/// state space in principle; fine for the tiny trees used in validation.
class BruteForcer {
 public:
  BruteForcer(const Tree& t1, const Tree& t2, const ZsOptions& opts)
      : t1_(t1), t2_(t2), opts_(opts) {}

  double Run() {
    return ForestDist({t1_.root()}, {t2_.root()});
  }

 private:
  double Rename(NodeId x, NodeId y) const {
    if (t1_.label(x) != t2_.label(y)) return opts_.relabel_cost;
    if (opts_.comparator != nullptr) {
      return std::clamp(opts_.comparator->Compare(t1_, x, t2_, y), 0.0, 2.0);
    }
    return t1_.value(x) == t2_.value(y) ? 0.0 : opts_.update_cost;
  }

  static size_t CountNodes(const Tree& t, const std::vector<NodeId>& forest) {
    size_t count = 0;
    std::vector<NodeId> stack = forest;
    while (!stack.empty()) {
      NodeId x = stack.back();
      stack.pop_back();
      ++count;
      for (NodeId c : t.children(x)) stack.push_back(c);
    }
    return count;
  }

  double ForestDist(const std::vector<NodeId>& f1,
                    const std::vector<NodeId>& f2) {
    if (f1.empty()) {
      return static_cast<double>(CountNodes(t2_, f2)) * opts_.insert_cost;
    }
    if (f2.empty()) {
      return static_cast<double>(CountNodes(t1_, f1)) * opts_.delete_cost;
    }
    auto key = std::make_pair(f1, f2);
    auto it = memo_.find(key);
    if (it != memo_.end()) return it->second;

    const NodeId v = f1.back();
    const NodeId w = f2.back();

    // Delete v: its children are promoted in place.
    std::vector<NodeId> f1_del(f1.begin(), f1.end() - 1);
    for (NodeId c : t1_.children(v)) f1_del.push_back(c);
    double best = ForestDist(f1_del, f2) + opts_.delete_cost;

    // Insert w.
    std::vector<NodeId> f2_ins(f2.begin(), f2.end() - 1);
    for (NodeId c : t2_.children(w)) f2_ins.push_back(c);
    best = std::min(best, ForestDist(f1, f2_ins) + opts_.insert_cost);

    // Match v with w: the subtrees pair off, the rests pair off.
    std::vector<NodeId> f1_rest(f1.begin(), f1.end() - 1);
    std::vector<NodeId> f2_rest(f2.begin(), f2.end() - 1);
    best = std::min(best, ForestDist(f1_rest, f2_rest) +
                              ForestDist(t1_.children(v), t2_.children(w)) +
                              Rename(v, w));

    memo_.emplace(std::move(key), best);
    return best;
  }

  const Tree& t1_;
  const Tree& t2_;
  ZsOptions opts_;
  std::map<std::pair<std::vector<NodeId>, std::vector<NodeId>>, double> memo_;
};

}  // namespace

double BruteForceEditDistance(const Tree& t1, const Tree& t2,
                              const ZsOptions& options) {
  assert(t1.root() != kInvalidNode && t2.root() != kInvalidNode);
  BruteForcer bf(t1, t2, options);
  return bf.Run();
}

namespace {

/// True if every node of the subtree at `x` satisfies `unmapped`.
bool SubtreeAllUnmapped(const Tree& t, NodeId x,
                        const std::vector<char>& unmapped) {
  std::vector<NodeId> stack = {x};
  while (!stack.empty()) {
    NodeId w = stack.back();
    stack.pop_back();
    if (!unmapped[static_cast<size_t>(w)]) return false;
    for (NodeId c : t.children(w)) stack.push_back(c);
  }
  return true;
}

size_t SubtreeSize(const Tree& t, NodeId x, const TreeIndex* index) {
  if (index != nullptr) return static_cast<size_t>(index->SubtreeSize(x));
  size_t count = 0;
  std::vector<NodeId> stack = {x};
  while (!stack.empty()) {
    NodeId w = stack.back();
    stack.pop_back();
    ++count;
    for (NodeId c : t.children(w)) stack.push_back(c);
  }
  return count;
}

/// Pre-order served from the caller-supplied or attached index when one
/// exists, computed otherwise.
std::vector<NodeId> PreOrderOf(const Tree& t, const TreeIndex* index) {
  if (index == nullptr) index = t.attached_index();
  return index != nullptr ? index->PreOrder() : t.PreOrder();
}

/// Structural fingerprint of a subtree (labels + values, pre-order) used to
/// bucket isomorphic candidates cheaply before the exact check.
std::string SubtreeFingerprint(const Tree& t, NodeId x) {
  std::string fp;
  std::vector<std::pair<NodeId, bool>> stack = {{x, false}};
  while (!stack.empty()) {
    auto [w, closing] = stack.back();
    stack.pop_back();
    if (closing) {
      fp.push_back(')');
      continue;
    }
    fp.push_back('(');
    fp += t.label_name(w);
    fp.push_back('=');
    fp += t.value(w);
    stack.push_back({w, true});
    const auto& kids = t.children(w);
    for (auto it = kids.rbegin(); it != kids.rend(); ++it) {
      stack.push_back({*it, false});
    }
  }
  return fp;
}

/// True if the subtrees are exactly equal (labels, values, order).
bool SubtreesEqual(const Tree& t1, NodeId x, const Tree& t2, NodeId y) {
  std::vector<std::pair<NodeId, NodeId>> stack = {{x, y}};
  const bool same_table = t1.label_table().get() == t2.label_table().get();
  while (!stack.empty()) {
    auto [a, b] = stack.back();
    stack.pop_back();
    if (same_table) {
      if (t1.label(a) != t2.label(b)) return false;
    } else if (t1.label_name(a) != t2.label_name(b)) {
      return false;
    }
    if (t1.value(a) != t2.value(b)) return false;
    const auto& ka = t1.children(a);
    const auto& kb = t2.children(b);
    if (ka.size() != kb.size()) return false;
    for (size_t i = 0; i < ka.size(); ++i) stack.push_back({ka[i], kb[i]});
  }
  return true;
}

}  // namespace

ZsWithMovesResult ZhangShashaWithMoves(const Tree& t1, const Tree& t2,
                                       const ZsOptions& options) {
  ZsWithMovesResult result;
  ZsResult zs = ZhangShasha(t1, t2, options);
  result.base_distance = zs.distance;
  result.distance_with_moves = zs.distance;

  std::vector<char> unmapped1(t1.id_bound(), 1), unmapped2(t2.id_bound(), 1);
  for (auto [x, y] : zs.mapping) {
    unmapped1[static_cast<size_t>(x)] = 0;
    unmapped2[static_cast<size_t>(y)] = 0;
  }

  // Maximal fully-unmapped T2 subtrees, bucketed by fingerprint.
  std::map<std::string, std::vector<NodeId>> candidates;
  std::vector<char> used2(t2.id_bound(), 0);
  for (NodeId y : PreOrderOf(t2, options.index2)) {
    const NodeId p = t2.parent(y);
    const bool parent_unmapped =
        p != kInvalidNode && unmapped2[static_cast<size_t>(p)];
    if (parent_unmapped) continue;  // Not maximal.
    if (!unmapped2[static_cast<size_t>(y)]) continue;
    if (!SubtreeAllUnmapped(t2, y, unmapped2)) continue;
    candidates[SubtreeFingerprint(t2, y)].push_back(y);
  }

  // Greedily pair maximal unmapped T1 subtrees with isomorphic candidates.
  for (NodeId x : PreOrderOf(t1, options.index1)) {
    const NodeId p = t1.parent(x);
    const bool parent_unmapped =
        p != kInvalidNode && unmapped1[static_cast<size_t>(p)];
    if (parent_unmapped) continue;
    if (!unmapped1[static_cast<size_t>(x)]) continue;
    if (!SubtreeAllUnmapped(t1, x, unmapped1)) continue;
    auto it = candidates.find(SubtreeFingerprint(t1, x));
    if (it == candidates.end()) continue;
    for (NodeId y : it->second) {
      if (used2[static_cast<size_t>(y)]) continue;
      if (!SubtreesEqual(t1, x, t2, y)) continue;  // Hash-collision guard.
      used2[static_cast<size_t>(y)] = 1;
      ZsMove move;
      move.from = x;
      move.to = y;
      move.subtree_size =
          SubtreeSize(t1, x,
                      options.index1 != nullptr ? options.index1
                                                : t1.attached_index());
      // delete_cost * |subtree| + insert_cost * |subtree| re-priced as one
      // unit-cost move.
      move.savings = static_cast<double>(move.subtree_size) *
                         (options.delete_cost + options.insert_cost) -
                     1.0;
      result.distance_with_moves -= move.savings;
      result.moves.push_back(move);
      break;
    }
  }
  return result;
}

}  // namespace treediff
