#ifndef TREEDIFF_ZS_ZHANG_SHASHA_H_
#define TREEDIFF_ZS_ZHANG_SHASHA_H_

#include <utility>
#include <vector>

#include "core/compare.h"
#include "tree/tree.h"
#include "tree/tree_index.h"
#include "util/budget.h"

namespace treediff {

/// Cost model for the Zhang-Shasha tree edit distance. The ZS operations are
/// node insert, node delete (children are promoted to the deleted node's
/// parent — the more general delete the paper contrasts with in Section 2),
/// and relabel/update.
struct ZsOptions {
  double insert_cost = 1.0;
  double delete_cost = 1.0;

  /// Cost of turning one node into another when their labels are equal. If
  /// `comparator` is null: 0 when values are equal, `update_cost` otherwise.
  /// If `comparator` is set, the compare() distance is used, clamped into
  /// [0, 2] per the paper's cost model.
  double update_cost = 1.0;

  /// Cost of changing a node's label (our edit model never relabels; setting
  /// this above delete+insert makes ZS behave comparably).
  double relabel_cost = 2.0;

  const ValueComparator* comparator = nullptr;

  /// Optional resource budget. The solver charges the treedist table and
  /// each forest-distance matrix against the arena cap, visits against the
  /// node cap, and probes the deadline in the keyroot loops. If the budget
  /// exhausts mid-run the solver aborts: the returned distance/mapping are
  /// meaningless and callers must check `budget->exhausted()` before using
  /// them (the degradation ladder in core/diff.cc does).
  const Budget* budget = nullptr;

  /// Optional precomputed per-tree indexes (the DiffContext's). When set —
  /// or when the trees carry attached indexes — the solver's postorder view
  /// is served from the index instead of re-walking the tree.
  const TreeIndex* index1 = nullptr;
  const TreeIndex* index2 = nullptr;
};

/// Result of the Zhang-Shasha computation.
struct ZsResult {
  /// The optimal (minimum) edit distance under the ZsOptions cost model.
  double distance = 0.0;

  /// An optimal edit mapping: 1:1 pairs (x in T1, y in T2) preserving
  /// ancestor and sibling order; unmapped T1 nodes are deletions, unmapped
  /// T2 nodes insertions, mapped pairs with unequal labels/values
  /// relabels/updates.
  std::vector<std::pair<NodeId, NodeId>> mapping;
};

/// The Zhang-Shasha optimal tree edit distance [ZS89], the baseline the
/// paper compares against in Section 2. Runs in
/// O(|T1| * |T2| * min(depth1, leaves1) * min(depth2, leaves2)) time — for
/// balanced trees the O(n^2 log^2 n) the paper quotes — versus the O(ne+e^2)
/// of FastMatch + EditScript.
///
/// Both trees must be non-empty and share a LabelTable.
ZsResult ZhangShasha(const Tree& t1, const Tree& t2,
                     const ZsOptions& options = {});

/// Distance only (skips the mapping backtrack; slightly faster).
double ZhangShashaDistance(const Tree& t1, const Tree& t2,
                           const ZsOptions& options = {});

/// An independent exponential-time (memoized) forest edit distance used to
/// validate the Zhang-Shasha implementation on tiny trees (<= ~12 nodes).
double BruteForceEditDistance(const Tree& t1, const Tree& t2,
                              const ZsOptions& options = {});

/// One move recovered from a ZS mapping: the unmapped T1 subtree `from` was
/// deleted wholesale and an isomorphic unmapped T2 subtree `to` inserted;
/// pricing the pair as one move saves `savings` cost units.
struct ZsMove {
  NodeId from = kInvalidNode;
  NodeId to = kInvalidNode;
  size_t subtree_size = 0;
  double savings = 0.0;
};

/// The [WZS95] device the paper cites in Section 2: ZS has no move
/// operation, so a relocated subtree costs delete+insert of every node; a
/// post-processing step recovers moves by pairing maximal unmapped T1
/// subtrees with isomorphic unmapped T2 subtrees (greedily, in document
/// order) and re-pricing each pair as a single unit-cost move.
struct ZsWithMovesResult {
  /// The plain ZS optimal distance.
  double base_distance = 0.0;

  /// The distance after re-pricing recovered moves
  /// (base - sum(savings)).
  double distance_with_moves = 0.0;

  std::vector<ZsMove> moves;
};

/// Runs ZhangShasha and the move-recovery post-processing step.
ZsWithMovesResult ZhangShashaWithMoves(const Tree& t1, const Tree& t2,
                                       const ZsOptions& options = {});

}  // namespace treediff

#endif  // TREEDIFF_ZS_ZHANG_SHASHA_H_
