#ifndef TREEDIFF_TREE_LABEL_H_
#define TREEDIFF_TREE_LABEL_H_

#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace treediff {

/// Interned identifier of a node label (e.g., Document, Paragraph, Sentence).
/// The paper assumes labels "are chosen from a fixed but arbitrary set"
/// (Section 3.2); interning gives O(1) label comparisons in the matching
/// algorithms.
using LabelId = int;

/// Sentinel for "no label".
inline constexpr LabelId kInvalidLabel = -1;

/// Bidirectional mapping between label names and dense LabelIds. A table is
/// shared by all trees participating in one comparison so that equal names
/// imply equal ids.
class LabelTable {
 public:
  LabelTable() = default;

  /// Returns the id for `name`, interning it if new.
  LabelId Intern(std::string_view name);

  /// Returns the id for `name`, or kInvalidLabel if it was never interned.
  LabelId Find(std::string_view name) const;

  /// Returns the name of `id`. `id` must have been returned by Intern.
  const std::string& Name(LabelId id) const;

  /// Number of distinct labels interned.
  size_t size() const { return names_.size(); }

 private:
  std::unordered_map<std::string, LabelId> ids_;
  std::vector<std::string> names_;
};

}  // namespace treediff

#endif  // TREEDIFF_TREE_LABEL_H_
