#ifndef TREEDIFF_TREE_LABEL_H_
#define TREEDIFF_TREE_LABEL_H_

#include <deque>
#include <shared_mutex>
#include <string>
#include <string_view>
#include <unordered_map>

namespace treediff {

/// Interned identifier of a node label (e.g., Document, Paragraph, Sentence).
/// The paper assumes labels "are chosen from a fixed but arbitrary set"
/// (Section 3.2); interning gives O(1) label comparisons in the matching
/// algorithms.
using LabelId = int;

/// Sentinel for "no label".
inline constexpr LabelId kInvalidLabel = -1;

/// Bidirectional mapping between label names and dense LabelIds. A table is
/// shared by all trees participating in one comparison so that equal names
/// imply equal ids.
///
/// Thread safety: fully synchronized (a reader-writer lock around the map,
/// shared-path reads for already-interned names), because the DiffService
/// shares one table across every cached tree and concurrent requests parse
/// new documents into it from worker threads. Name() returns a reference
/// that stays valid for the table's lifetime: names are stored in a deque,
/// whose elements never move when the table grows. Note that the *ids*
/// assigned to new labels depend on first-touch order; callers needing
/// deterministic ids across runs must intern their label set up front.
class LabelTable {
 public:
  LabelTable() = default;

  /// Returns the id for `name`, interning it if new.
  LabelId Intern(std::string_view name);

  /// Returns the id for `name`, or kInvalidLabel if it was never interned.
  LabelId Find(std::string_view name) const;

  /// Returns the name of `id`. `id` must have been returned by Intern. The
  /// reference remains valid until the table is destroyed.
  const std::string& Name(LabelId id) const;

  /// Number of distinct labels interned.
  size_t size() const {
    std::shared_lock<std::shared_mutex> lock(mu_);
    return names_.size();
  }

 private:
  // Heterogeneous lookup: find by string_view without materializing a
  // std::string per probe (the parser interns per node).
  struct StringHash {
    using is_transparent = void;
    size_t operator()(std::string_view s) const {
      return std::hash<std::string_view>()(s);
    }
  };
  struct StringEq {
    using is_transparent = void;
    bool operator()(std::string_view a, std::string_view b) const {
      return a == b;
    }
  };

  mutable std::shared_mutex mu_;
  std::unordered_map<std::string, LabelId, StringHash, StringEq> ids_;
  std::deque<std::string> names_;  // Stable addresses; Name() returns refs.
};

}  // namespace treediff

#endif  // TREEDIFF_TREE_LABEL_H_
