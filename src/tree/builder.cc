#include "tree/builder.h"

#include <cctype>
#include <string>

namespace treediff {

namespace {

/// Recursive-descent parser over the s-expression grammar.
class SexprParser {
 public:
  SexprParser(std::string_view text, Tree* tree)
      : text_(text), tree_(tree) {}

  Status Parse() {
    SkipSpace();
    TREEDIFF_RETURN_IF_ERROR(ParseNode(kInvalidNode));
    SkipSpace();
    if (pos_ != text_.size()) {
      return Status::ParseError("trailing characters after tree at offset " +
                                std::to_string(pos_));
    }
    return Status::Ok();
  }

 private:
  void SkipSpace() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool AtEnd() const { return pos_ >= text_.size(); }
  char Peek() const { return text_[pos_]; }

  Status Expect(char c) {
    if (AtEnd() || Peek() != c) {
      return Status::ParseError(std::string("expected '") + c +
                                "' at offset " + std::to_string(pos_));
    }
    ++pos_;
    return Status::Ok();
  }

  Status ParseNode(NodeId parent) {
    TREEDIFF_RETURN_IF_ERROR(Expect('('));
    SkipSpace();
    // Label.
    size_t start = pos_;
    while (!AtEnd() && !std::isspace(static_cast<unsigned char>(Peek())) &&
           Peek() != '(' && Peek() != ')' && Peek() != '"') {
      ++pos_;
    }
    if (pos_ == start) {
      return Status::ParseError("expected label at offset " +
                                std::to_string(pos_));
    }
    std::string_view label = text_.substr(start, pos_ - start);
    SkipSpace();
    // Optional quoted value.
    std::string value;
    if (!AtEnd() && Peek() == '"') {
      ++pos_;
      while (!AtEnd() && Peek() != '"') {
        if (Peek() == '\\' && pos_ + 1 < text_.size()) ++pos_;
        value.push_back(text_[pos_++]);
      }
      TREEDIFF_RETURN_IF_ERROR(Expect('"'));
      SkipSpace();
    }
    NodeId id = parent == kInvalidNode
                    ? tree_->AddRoot(label, std::move(value))
                    : tree_->AddChild(parent, label, std::move(value));
    // Children.
    while (!AtEnd() && Peek() == '(') {
      TREEDIFF_RETURN_IF_ERROR(ParseNode(id));
      SkipSpace();
    }
    return Expect(')');
  }

  std::string_view text_;
  Tree* tree_;
  size_t pos_ = 0;
};

}  // namespace

StatusOr<Tree> ParseSexpr(std::string_view text,
                          std::shared_ptr<LabelTable> labels) {
  Tree tree(std::move(labels));
  SexprParser parser(text, &tree);
  Status st = parser.Parse();
  if (!st.ok()) return st;
  return tree;
}

}  // namespace treediff
