#ifndef TREEDIFF_TREE_TREE_INDEX_H_
#define TREEDIFF_TREE_TREE_INDEX_H_

#include <cstdint>
#include <map>
#include <string_view>
#include <vector>

#include "tree/tree.h"

namespace treediff {

/// Hash of a value string (64-bit FNV-1a). This is the one hash function the
/// whole pipeline keys on: TreeIndex::ValueHash precomputes it per node, the
/// comparators key their caches on it, and the structural matcher folds it
/// into subtree fingerprints. Deterministic across processes (unlike
/// std::hash), so hashes are comparable between indexed and unindexed trees.
uint64_t HashValueBytes(std::string_view bytes);

/// The value hash of node `x`: served from the tree's attached TreeIndex
/// when one exists, computed on the fly otherwise. Either way the result is
/// HashValueBytes(t.value(x)).
uint64_t NodeValueHash(const Tree& t, NodeId x);

/// Precomputed per-tree derived structure, built in one traversal and shared
/// by every stage of the diff pipeline (matching, criteria evaluation,
/// Zhang-Shasha, edit-script generation) through a DiffContext. The seed
/// pipeline recomputed orders, leaf counts, Euler intervals, and raw string
/// comparisons independently per stage; the index computes each once.
///
/// Constructing an index *attaches* it to the tree as an observer: every
/// Tree mutation (the Section 3.2 edit operations) patches or invalidates
/// the index, so Algorithm EditScript's in-place transform of its working
/// tree keeps the index consistent. The index maintains three tiers:
///
///  * scalar tier — depth, subtree size, leaf count, child index, value
///    hash. Patched eagerly on each edit in O(depth * fanout), so the hot
///    O(1) lookups (Tree::ChildIndex, move weights) stay valid mid-script.
///  * order tier — pre/post/BFS orders, Euler intervals, the leaf sequence
///    with per-node leaf ranges, and per-label node chains. Invalidated by
///    structural edits and rebuilt lazily on next access.
///  * fingerprint tier — 64-bit subtree fingerprints, split into a
///    structural hash (labels + shape), a literal hash (values), and their
///    combination (the share-map key). Invalidated by any edit (including
///    value updates) and rebuilt lazily.
///
/// A patched index is indistinguishable from a freshly built one (asserted
/// by index_consistency_test). The index dies gracefully when its tree is
/// destroyed or moved-from, but accessors must not be called afterwards.
///
/// Like Budget, a TreeIndex is shared mutable state accessed through const
/// references (lazy tiers rebuild under the hood); it is NOT thread-safe.
class TreeIndex {
 public:
  /// Builds the index over the live nodes of `tree` and attaches to it.
  explicit TreeIndex(const Tree& tree);
  ~TreeIndex();

  TreeIndex(const TreeIndex&) = delete;
  TreeIndex& operator=(const TreeIndex&) = delete;

  /// The indexed tree. Must not be called after the tree was destroyed.
  const Tree& tree() const { return *tree_; }

  /// False once the indexed tree has been destroyed or moved-from.
  bool attached() const { return tree_ != nullptr; }

  // ----- Scalar tier (O(1), eagerly patched) -----

  /// Distance from the root (root = 0); -1 for dead nodes.
  int Depth(NodeId x) const;

  /// Number of live nodes in the subtree rooted at `x` (including `x`);
  /// 0 for dead nodes.
  int SubtreeSize(NodeId x) const;

  /// Number of leaf descendants of `x`, a leaf counting itself (the paper's
  /// |x|, Matching Criterion 2); 0 for dead nodes.
  int LeafCount(NodeId x) const;

  /// 0-based position of `x` in its parent's child list; -1 for the root
  /// and for dead nodes. Serves Tree::ChildIndex in O(1).
  int ChildIndex(NodeId x) const;

  /// HashValueBytes of v(x). Defined for dead slots too (their value is
  /// retained for revival).
  uint64_t ValueHash(NodeId x) const;

  // ----- Order tier (lazily rebuilt after structural edits) -----

  /// Pre-order / post-order / breadth-first over live nodes; identical to
  /// the Tree traversals of the same name.
  const std::vector<NodeId>& PreOrder() const;
  const std::vector<NodeId>& PostOrder() const;
  const std::vector<NodeId>& BfsOrder() const;

  /// All live leaves in document order.
  const std::vector<NodeId>& Leaves() const;

  /// 0-based position of `x` in PostOrder(); -1 for dead nodes.
  int PostOrderPos(NodeId x) const;

  /// True if `anc` equals `desc` or is an ancestor of `desc` (both live).
  /// O(1) via Euler-tour intervals.
  bool Contains(NodeId anc, NodeId desc) const;

  /// The leaves under `x` occupy Leaves()[LeafRangeBegin(x) ..
  /// LeafRangeEnd(x)), contiguously in document order. Empty range for dead
  /// nodes. Lets |common(x, y)| iterate leaf descendants without walking
  /// interior nodes.
  int LeafRangeBegin(NodeId x) const;
  int LeafRangeEnd(NodeId x) const;

  /// Document-order chains of live nodes per (label, structural kind) — the
  /// paper's chain_T(l), precomputed for FastMatch. Missing labels yield an
  /// empty chain. The map is ordered by LabelId for deterministic iteration.
  const std::vector<NodeId>& LeafChain(LabelId label) const;
  const std::vector<NodeId>& InternalChain(LabelId label) const;
  const std::map<LabelId, std::vector<NodeId>>& LeafChains() const;
  const std::map<LabelId, std::vector<NodeId>>& InternalChains() const;

  // ----- Fingerprint tier (lazily rebuilt after any edit) -----

  /// 64-bit *structural* fingerprint of the subtree rooted at `x`: labels
  /// and shape only (label + child structural hashes in order), blind to
  /// values. Two subtrees agree iff they have the same labeled shape —
  /// the diff_heap-style signal that a value edit left the skeleton
  /// intact. 0 for dead nodes.
  uint64_t StructuralHash(NodeId x) const;

  /// 64-bit *literal* fingerprint of the subtree rooted at `x`: value
  /// hashes only (value hash + child literal hashes in order), blind to
  /// labels. Complements StructuralHash; the pair distinguishes "same
  /// shape, new text" from "same text, new shape". 0 for dead nodes.
  uint64_t LiteralHash(NodeId x) const;

  /// 64-bit combined fingerprint of the subtree rooted at `x`: the
  /// structural and literal hashes mixed, so it covers labels, values, and
  /// shape at once. Equal subtrees (labels, values, shapes) always agree;
  /// unequal ones collide with probability ~2^-64 — which is why every
  /// consumer that promises exactness (the share-map pre-pass, the
  /// structural matcher) re-verifies candidates by actual subtree
  /// comparison. 0 for dead nodes.
  uint64_t SubtreeHash(NodeId x) const;

  // ----- Shared read-only use -----

  /// Forces all three tiers built *now*. An index over a frozen tree (see
  /// Tree::Freeze) that has been warmed is safe to read from any number of
  /// threads concurrently: no mutation ever dirties a tier again, so the
  /// lazy Ensure* paths reduce to plain loads. The service's TreeCache
  /// warms every entry before publishing it.
  void WarmAll() const {
    EnsureScalars();
    EnsureOrders();
    EnsureFingerprints();
  }

  // ----- Mutation hooks (called by the attached Tree; not for users) -----

  void OnInsertLeaf(NodeId x);
  void OnDeleteLeaf(NodeId x, NodeId old_parent);
  void OnReviveLeaf(NodeId x);
  void OnUpdateValue(NodeId x);
  void OnMoveSubtree(NodeId x, NodeId old_parent);
  void OnTruncateDeadTail(size_t bound);
  /// Wholesale change (AddRoot/AddChild/WrapRoot, copy-assignment): marks
  /// every tier for rebuild.
  void OnBulkStructureChange();
  /// The tree is going away (destruction or move-from); the index becomes
  /// permanently detached.
  void OnTreeGone();

 private:
  void EnsureScalars() const;
  void EnsureOrders() const;
  void EnsureFingerprints() const;
  void RebuildScalars() const;
  void RebuildOrders() const;
  void RebuildFingerprints() const;

  /// Grows the scalar arrays to the tree's current id_bound.
  void GrowScalars() const;

  /// Recomputes subtree_size_ / leaf_count_ from child values for `from`
  /// and every ancestor of it.
  void RepairPathUp(NodeId from) const;

  /// Recomputes child_index_ for every child of `parent`.
  void RepairChildIndexes(NodeId parent) const;

  const Tree* tree_;

  // Scalar tier.
  mutable std::vector<int> depth_;
  mutable std::vector<int> subtree_size_;
  mutable std::vector<int> leaf_count_;
  mutable std::vector<int> child_index_;
  mutable std::vector<uint64_t> value_hash_;

  // Order tier.
  mutable std::vector<NodeId> pre_order_;
  mutable std::vector<NodeId> post_order_;
  mutable std::vector<NodeId> bfs_order_;
  mutable std::vector<NodeId> leaves_;
  mutable std::vector<int> post_pos_;
  mutable std::vector<int> tin_;
  mutable std::vector<int> tout_;
  mutable std::vector<int> leaf_begin_;
  mutable std::vector<int> leaf_end_;
  mutable std::map<LabelId, std::vector<NodeId>> leaf_chains_;
  mutable std::map<LabelId, std::vector<NodeId>> internal_chains_;

  // Fingerprint tier. subtree_hash_ is HashCombine(structural, literal),
  // precomputed because it is the hot key of the share-map pre-pass.
  mutable std::vector<uint64_t> structural_hash_;
  mutable std::vector<uint64_t> literal_hash_;
  mutable std::vector<uint64_t> subtree_hash_;

  mutable bool scalars_dirty_ = true;
  mutable bool orders_dirty_ = true;
  mutable bool fingerprints_dirty_ = true;
};

}  // namespace treediff

#endif  // TREEDIFF_TREE_TREE_INDEX_H_
