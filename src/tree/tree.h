#ifndef TREEDIFF_TREE_TREE_H_
#define TREEDIFF_TREE_TREE_H_

#include <memory>
#include <string>
#include <vector>

#include "tree/label.h"
#include "util/status.h"

namespace treediff {

/// Identifier of a node within one Tree. Ids are dense indices into the
/// tree's node arena; they are never reused, so a node deleted by an edit
/// script keeps its id (marked dead). The paper's requirement that "each tree
/// node has a unique identifier" (Section 3.1) is met per tree; identifiers
/// are *not* meaningful across trees, which is exactly the keyless-data
/// setting the matching algorithms address.
using NodeId = int;

/// Sentinel for "no node" (e.g., the parent of the root).
inline constexpr NodeId kInvalidNode = -1;

class TreeIndex;

/// An ordered, labeled tree with values (the paper's data model, Section 3.1).
/// Interior nodes conventionally have empty values; leaves carry the payload
/// (e.g., sentence text). The tree supports the four edit operations of
/// Section 3.2 as mutations, which Algorithm EditScript uses to transform the
/// old tree in place as it emits operations.
class Tree {
 public:
  /// Creates an empty tree whose labels are interned in `labels`. All trees
  /// being compared must share one table. If `labels` is null a fresh table
  /// is created.
  explicit Tree(std::shared_ptr<LabelTable> labels = nullptr);

  // Copies carry the node data but never the attached indexes (an index
  // observes exactly one tree). Copy-assignment into an indexed tree is a
  // wholesale mutation, so its indexes are invalidated, not dropped.
  // Moving a tree out from under an index permanently detaches the index.
  Tree(const Tree& other);
  Tree& operator=(const Tree& other);
  Tree(Tree&& other) noexcept;
  Tree& operator=(Tree&& other) noexcept;
  ~Tree();

  // ----- Construction -----

  /// Adds the root node. Must be called exactly once, before AddChild.
  NodeId AddRoot(LabelId label, std::string value = "");

  /// Appends a new node as the last child of `parent`.
  NodeId AddChild(NodeId parent, LabelId label, std::string value = "");

  /// Convenience overloads that intern the label name.
  NodeId AddRoot(std::string_view label_name, std::string value = "");
  NodeId AddChild(NodeId parent, std::string_view label_name,
                  std::string value = "");

  /// Adds a new node above the current root: the new node becomes the root
  /// and the old root its only child. This is the "dummy root" device of the
  /// insert phase (Section 4.1) for comparing trees whose roots are not
  /// matched. The tree must be non-empty.
  NodeId WrapRoot(LabelId label, std::string value = "");

  // ----- Accessors -----

  /// The root node, or kInvalidNode for an empty tree.
  NodeId root() const { return root_; }

  /// Number of live nodes.
  size_t size() const { return live_count_; }

  /// Total number of node ids ever allocated (dense upper bound for id-indexed
  /// arrays; includes dead nodes).
  size_t id_bound() const { return nodes_.size(); }

  bool Alive(NodeId x) const {
    return x >= 0 && static_cast<size_t>(x) < nodes_.size() &&
           nodes_[static_cast<size_t>(x)].alive;
  }

  LabelId label(NodeId x) const { return node(x).label; }
  const std::string& value(NodeId x) const { return node(x).value; }
  NodeId parent(NodeId x) const { return node(x).parent; }
  const std::vector<NodeId>& children(NodeId x) const {
    return node(x).children;
  }
  bool IsLeaf(NodeId x) const { return node(x).children.empty(); }

  /// The label name of node `x` (via the shared LabelTable).
  const std::string& label_name(NodeId x) const {
    return labels_->Name(label(x));
  }

  /// 0-based position of `x` within its parent's child list. Returns -1 for
  /// the root. Served in O(1) from an attached TreeIndex when one exists,
  /// by an O(fanout) sibling scan otherwise.
  int ChildIndex(NodeId x) const;

  /// True if `anc` equals `desc` or is a proper ancestor of `desc`.
  bool IsAncestorOrSelf(NodeId anc, NodeId desc) const;

  const LabelTable& labels() const { return *labels_; }
  const std::shared_ptr<LabelTable>& label_table() const { return labels_; }

  /// Interns `name` in the shared label table.
  LabelId InternLabel(std::string_view name) { return labels_->Intern(name); }

  // ----- Edit operations (paper Section 3.2) -----
  // Positions `k` are 1-based, matching the paper: INS((x,l,v), y, k) makes x
  // the kth child of y, with 1 <= k <= (number of children of y) + 1.

  /// INS((new, label, value), parent, k). Returns the id of the new leaf.
  StatusOr<NodeId> InsertLeaf(LabelId label, std::string value, NodeId parent,
                              int k);

  /// DEL(x). `x` must be a live leaf (interior nodes must be emptied first,
  /// per the paper's restricted delete). The dead slot retains its label and
  /// value, so the deletion can be reversed with ReviveLeaf.
  Status DeleteLeaf(NodeId x);

  /// Reverses a DeleteLeaf: re-attaches the dead node `x` (with its retained
  /// label and value) as the kth child of `parent`. Used when applying
  /// inverse edit scripts, so node identities survive an undo round-trip.
  Status ReviveLeaf(NodeId x, NodeId parent, int k);

  /// UPD(x, value).
  Status UpdateValue(NodeId x, std::string value);

  /// Pops node slots with id >= `bound` off the arena, restoring the
  /// id_bound() a tree had before those ids were allocated. Every popped
  /// slot must be dead; rejects otherwise. Transactional apply uses this to
  /// roll back the ids minted by inserts, so a rolled-back tree is
  /// indistinguishable from its pre-apply state.
  Status TruncateDeadTail(size_t bound);

  /// MOV(x, new_parent, k): detaches the subtree rooted at `x` and reattaches
  /// it as the kth child of `new_parent` (position counted after detachment,
  /// as in the paper's running examples). Moving a node under its own
  /// descendant or moving the root is rejected.
  Status MoveSubtree(NodeId x, NodeId new_parent, int k);

  // ----- Traversals (live nodes only) -----

  /// Breadth-first order from the root (the order Algorithm EditScript scans
  /// the new tree).
  std::vector<NodeId> BfsOrder() const;

  /// Post-order (children before parents; the delete-phase order).
  std::vector<NodeId> PostOrder() const;

  /// Pre-order (parents before children).
  std::vector<NodeId> PreOrder() const;

  /// All live leaves in left-to-right document order.
  std::vector<NodeId> Leaves() const;

  // ----- Derived structure -----

  /// leaf_counts[x] = |x| = number of leaf descendants of x (a leaf counts
  /// itself). Dead nodes get 0. Used by Matching Criterion 2.
  std::vector<int> LeafCounts() const;

  /// depths[x] = distance from the root (root = 0); dead nodes get -1.
  std::vector<int> Depths() const;

  /// Height of the tree (a single root has height 0); -1 if empty.
  int Height() const;

  /// Pre-order entry/exit stamps enabling O(1) ancestry checks while the tree
  /// is not mutated. Recompute after any edit.
  struct EulerIntervals {
    std::vector<int> tin;
    std::vector<int> tout;

    /// True if `anc` equals `desc` or is an ancestor of `desc`.
    bool Contains(NodeId anc, NodeId desc) const {
      return tin[static_cast<size_t>(anc)] <= tin[static_cast<size_t>(desc)] &&
             tout[static_cast<size_t>(desc)] <= tout[static_cast<size_t>(anc)];
    }
  };
  EulerIntervals ComputeEuler() const;

  // ----- Utilities -----

  /// Deep copy preserving node ids (including dead slots) and sharing the
  /// label table.
  Tree Clone() const;

  /// Structural equality ignoring node identifiers: equal labels, values and
  /// child orders (the paper's isomorphism, Section 3.1).
  static bool Isomorphic(const Tree& a, const Tree& b);

  /// Checks internal invariants (parent/child symmetry, single root,
  /// acyclicity, live_count consistency). Used by tests and after applying
  /// edit scripts.
  Status Validate() const;

  // ----- Freezing (shared read-only use) -----
  // A tree published to several threads at once (the service's TreeCache)
  // must never be mutated: a mutation would corrupt every concurrent reader
  // and invalidate the shared TreeIndex mid-read. Freeze() makes that
  // contract checkable for one bool compare per edit: after Freeze(), the
  // Status-returning edit operations fail with kFailedPrecondition, and the
  // construction operations (AddRoot/AddChild/WrapRoot, assignment into the
  // tree) abort — a worker mutating a cached tree fails fast instead of
  // silently corrupting other requests. Freezing is one-way and sticky
  // across moves; copies and Clone()s start unfrozen (edit-script
  // generation works on a private unfrozen copy).

  /// Marks the tree permanently read-only. Logically const, like index
  /// attachment: observing threads see the same node data before and after.
  void Freeze() const { frozen_ = true; }

  /// True once Freeze() was called.
  bool Frozen() const { return frozen_; }

  /// Renders the tree as an s-expression, e.g.
  /// (D (P (S "a") (S "b")) (P (S "c"))). Values are quoted; empty values
  /// are omitted.
  std::string ToDebugString() const;

  // ----- Index attachment -----
  // A TreeIndex registers itself as an observer so that the edit operations
  // above keep it consistent (see tree_index.h). Attachment is logically
  // const: it does not change the tree, only who is watching it.

  void AttachIndex(TreeIndex* index) const;
  void DetachIndex(TreeIndex* index) const;

  /// The first attached index, or nullptr. Used by ChildIndex and by
  /// pipeline stages that opportunistically reuse an existing index.
  TreeIndex* attached_index() const {
    return observers_.empty() ? nullptr : observers_.front();
  }

 private:
  // The binary tree codec (store/codec.cc) reconstructs a tree's arena
  // exactly — node ids, dead slots, and child order included — which the
  // construction API above cannot express; it goes through this access
  // shim instead of public setters.
  friend class TreeCodecAccess;

  struct NodeRec {
    LabelId label = kInvalidLabel;
    std::string value;
    NodeId parent = kInvalidNode;
    std::vector<NodeId> children;
    bool alive = true;
  };

  const NodeRec& node(NodeId x) const;
  NodeRec& node(NodeId x);
  void DebugStringRec(NodeId x, std::string* out) const;

  /// Aborts with a diagnostic if the tree is frozen. Guards the mutation
  /// entry points that cannot report a Status.
  void AbortIfFrozen(const char* op) const;

  // Observer notifications (no-ops when no index is attached).
  void NotifyInsert(NodeId x) const;
  void NotifyDelete(NodeId x, NodeId old_parent) const;
  void NotifyRevive(NodeId x) const;
  void NotifyUpdate(NodeId x) const;
  void NotifyMove(NodeId x, NodeId old_parent) const;
  void NotifyTruncate(size_t bound) const;
  void NotifyBulk() const;
  void NotifyGoneAndClear() const;

  std::shared_ptr<LabelTable> labels_;
  std::vector<NodeRec> nodes_;
  NodeId root_ = kInvalidNode;
  size_t live_count_ = 0;
  mutable std::vector<TreeIndex*> observers_;
  mutable bool frozen_ = false;
};

}  // namespace treediff

#endif  // TREEDIFF_TREE_TREE_H_
