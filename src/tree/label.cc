#include "tree/label.h"

#include <cassert>
#include <mutex>

namespace treediff {

LabelId LabelTable::Intern(std::string_view name) {
  {
    std::shared_lock<std::shared_mutex> lock(mu_);
    auto it = ids_.find(name);
    if (it != ids_.end()) return it->second;
  }
  std::unique_lock<std::shared_mutex> lock(mu_);
  auto it = ids_.find(name);  // Re-check: another writer may have won.
  if (it != ids_.end()) return it->second;
  LabelId id = static_cast<LabelId>(names_.size());
  names_.emplace_back(name);
  ids_.emplace(names_.back(), id);
  return id;
}

LabelId LabelTable::Find(std::string_view name) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  auto it = ids_.find(name);
  return it == ids_.end() ? kInvalidLabel : it->second;
}

const std::string& LabelTable::Name(LabelId id) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  assert(id >= 0 && static_cast<size_t>(id) < names_.size());
  return names_[static_cast<size_t>(id)];
}

}  // namespace treediff
