#ifndef TREEDIFF_TREE_BUILDER_H_
#define TREEDIFF_TREE_BUILDER_H_

#include <memory>
#include <string_view>

#include "tree/tree.h"
#include "util/status.h"

namespace treediff {

/// Parses a tree from an s-expression, the inverse of Tree::ToDebugString.
/// Grammar:
///
///   tree  := '(' label value? tree* ')'
///   label := one or more characters other than space, quote, parentheses
///   value := '"' characters with \" and \\ escapes '"'
///
/// Example: (D (P (S "a") (S "b")) (P (S "c")))
///
/// Labels are interned into `labels` (a fresh table is created when null).
/// Used pervasively by tests to state fixtures compactly.
StatusOr<Tree> ParseSexpr(std::string_view text,
                          std::shared_ptr<LabelTable> labels = nullptr);

}  // namespace treediff

#endif  // TREEDIFF_TREE_BUILDER_H_
