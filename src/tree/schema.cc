#include "tree/schema.h"

#include <algorithm>

namespace treediff {

void LabelSchema::SetRank(LabelId label, int rank) { ranks_[label] = rank; }

int LabelSchema::Rank(LabelId label) const {
  auto it = ranks_.find(label);
  return it == ranks_.end() ? -1 : it->second;
}

Status LabelSchema::CheckAcyclic(const Tree& tree) const {
  if (tree.root() == kInvalidNode) return Status::Ok();
  for (NodeId x : tree.PreOrder()) {
    const int rx = Rank(tree.label(x));
    if (rx < 0) {
      return Status::FailedPrecondition("label '" + tree.label_name(x) +
                                        "' is not in the schema");
    }
    NodeId p = tree.parent(x);
    if (p != kInvalidNode && Rank(tree.label(p)) <= rx) {
      return Status::FailedPrecondition(
          "edge " + tree.label_name(p) + " -> " + tree.label_name(x) +
          " violates the acyclic-labels condition");
    }
  }
  return Status::Ok();
}

std::vector<LabelId> LabelSchema::LabelsByRank() const {
  std::vector<std::pair<int, LabelId>> order;
  order.reserve(ranks_.size());
  for (const auto& [label, rank] : ranks_) order.emplace_back(rank, label);
  std::sort(order.begin(), order.end());
  std::vector<LabelId> labels;
  labels.reserve(order.size());
  for (const auto& [rank, label] : order) labels.push_back(label);
  return labels;
}

LabelSchema MakeDocumentSchema(LabelTable* labels) {
  LabelSchema schema;
  schema.SetRank(labels->Intern(doc_labels::kSentence), 0);
  schema.SetRank(labels->Intern("codeblock"), 0);
  schema.SetRank(labels->Intern(doc_labels::kParagraph), 1);
  schema.SetRank(labels->Intern(doc_labels::kItem), 2);
  schema.SetRank(labels->Intern(doc_labels::kList), 3);
  schema.SetRank(labels->Intern(doc_labels::kSubsection), 4);
  schema.SetRank(labels->Intern(doc_labels::kSection), 5);
  schema.SetRank(labels->Intern(doc_labels::kDocument), 6);
  return schema;
}

}  // namespace treediff
