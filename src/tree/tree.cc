#include "tree/tree.h"

#include <algorithm>
#include <cassert>
#include <cstdio>
#include <cstdlib>
#include <deque>

#include "tree/tree_index.h"

namespace treediff {

Tree::Tree(std::shared_ptr<LabelTable> labels) : labels_(std::move(labels)) {
  if (!labels_) labels_ = std::make_shared<LabelTable>();
}

Tree::Tree(const Tree& other)
    : labels_(other.labels_),
      nodes_(other.nodes_),
      root_(other.root_),
      live_count_(other.live_count_) {}

Tree& Tree::operator=(const Tree& other) {
  if (this == &other) return *this;
  AbortIfFrozen("copy-assignment");
  labels_ = other.labels_;
  nodes_ = other.nodes_;
  root_ = other.root_;
  live_count_ = other.live_count_;
  NotifyBulk();
  return *this;
}

Tree::Tree(Tree&& other) noexcept
    : labels_(std::move(other.labels_)),
      nodes_(std::move(other.nodes_)),
      root_(other.root_),
      live_count_(other.live_count_),
      frozen_(other.frozen_) {
  other.root_ = kInvalidNode;
  other.live_count_ = 0;
  other.NotifyGoneAndClear();
}

Tree& Tree::operator=(Tree&& other) noexcept {
  if (this == &other) return *this;
  AbortIfFrozen("move-assignment");
  frozen_ = other.frozen_;
  labels_ = std::move(other.labels_);
  nodes_ = std::move(other.nodes_);
  root_ = other.root_;
  live_count_ = other.live_count_;
  other.root_ = kInvalidNode;
  other.live_count_ = 0;
  other.NotifyGoneAndClear();
  NotifyBulk();
  return *this;
}

Tree::~Tree() { NotifyGoneAndClear(); }

void Tree::AbortIfFrozen(const char* op) const {
  if (!frozen_) return;
  // About to abort: the diagnostic is best effort.
  (void)std::fprintf(stderr,
                     "treediff: %s on a frozen tree (see Tree::Freeze)\n", op);
  std::abort();
}

namespace {

inline Status FrozenError(const char* op) {
  return Status::FailedPrecondition(std::string(op) +
                                    ": tree is frozen (Tree::Freeze)");
}

}  // namespace

void Tree::AttachIndex(TreeIndex* index) const { observers_.push_back(index); }

void Tree::DetachIndex(TreeIndex* index) const {
  observers_.erase(std::remove(observers_.begin(), observers_.end(), index),
                   observers_.end());
}

void Tree::NotifyInsert(NodeId x) const {
  for (TreeIndex* obs : observers_) obs->OnInsertLeaf(x);
}

void Tree::NotifyDelete(NodeId x, NodeId old_parent) const {
  for (TreeIndex* obs : observers_) obs->OnDeleteLeaf(x, old_parent);
}

void Tree::NotifyRevive(NodeId x) const {
  for (TreeIndex* obs : observers_) obs->OnReviveLeaf(x);
}

void Tree::NotifyUpdate(NodeId x) const {
  for (TreeIndex* obs : observers_) obs->OnUpdateValue(x);
}

void Tree::NotifyMove(NodeId x, NodeId old_parent) const {
  for (TreeIndex* obs : observers_) obs->OnMoveSubtree(x, old_parent);
}

void Tree::NotifyTruncate(size_t bound) const {
  for (TreeIndex* obs : observers_) obs->OnTruncateDeadTail(bound);
}

void Tree::NotifyBulk() const {
  for (TreeIndex* obs : observers_) obs->OnBulkStructureChange();
}

void Tree::NotifyGoneAndClear() const {
  for (TreeIndex* obs : observers_) obs->OnTreeGone();
  observers_.clear();
}

const Tree::NodeRec& Tree::node(NodeId x) const {
  assert(x >= 0 && static_cast<size_t>(x) < nodes_.size());
  return nodes_[static_cast<size_t>(x)];
}

Tree::NodeRec& Tree::node(NodeId x) {
  assert(x >= 0 && static_cast<size_t>(x) < nodes_.size());
  return nodes_[static_cast<size_t>(x)];
}

NodeId Tree::AddRoot(LabelId label, std::string value) {
  AbortIfFrozen("AddRoot");
  assert(root_ == kInvalidNode && "tree already has a root");
  NodeRec rec;
  rec.label = label;
  rec.value = std::move(value);
  nodes_.push_back(std::move(rec));
  root_ = static_cast<NodeId>(nodes_.size() - 1);
  ++live_count_;
  NotifyBulk();
  return root_;
}

NodeId Tree::AddChild(NodeId parent, LabelId label, std::string value) {
  AbortIfFrozen("AddChild");
  assert(Alive(parent));
  NodeRec rec;
  rec.label = label;
  rec.value = std::move(value);
  rec.parent = parent;
  nodes_.push_back(std::move(rec));
  NodeId id = static_cast<NodeId>(nodes_.size() - 1);
  node(parent).children.push_back(id);
  ++live_count_;
  NotifyBulk();
  return id;
}

NodeId Tree::AddRoot(std::string_view label_name, std::string value) {
  return AddRoot(labels_->Intern(label_name), std::move(value));
}

NodeId Tree::AddChild(NodeId parent, std::string_view label_name,
                      std::string value) {
  return AddChild(parent, labels_->Intern(label_name), std::move(value));
}

NodeId Tree::WrapRoot(LabelId label, std::string value) {
  AbortIfFrozen("WrapRoot");
  assert(root_ != kInvalidNode && "cannot wrap an empty tree");
  NodeRec rec;
  rec.label = label;
  rec.value = std::move(value);
  rec.children.push_back(root_);
  nodes_.push_back(std::move(rec));
  NodeId id = static_cast<NodeId>(nodes_.size() - 1);
  node(root_).parent = id;
  root_ = id;
  ++live_count_;
  NotifyBulk();
  return id;
}

int Tree::ChildIndex(NodeId x) const {
  if (!observers_.empty()) return observers_.front()->ChildIndex(x);
  NodeId p = parent(x);
  if (p == kInvalidNode) return -1;
  const auto& siblings = children(p);
  auto it = std::find(siblings.begin(), siblings.end(), x);
  assert(it != siblings.end());
  return static_cast<int>(it - siblings.begin());
}

bool Tree::IsAncestorOrSelf(NodeId anc, NodeId desc) const {
  for (NodeId cur = desc; cur != kInvalidNode; cur = parent(cur)) {
    if (cur == anc) return true;
  }
  return false;
}

StatusOr<NodeId> Tree::InsertLeaf(LabelId label, std::string value,
                                  NodeId parent, int k) {
  if (frozen_) return FrozenError("insert");
  if (!Alive(parent)) {
    return Status::InvalidArgument("insert: parent is not a live node");
  }
  auto& kids = node(parent).children;
  if (k < 1 || static_cast<size_t>(k) > kids.size() + 1) {
    return Status::OutOfRange("insert: position k out of range");
  }
  NodeRec rec;
  rec.label = label;
  rec.value = std::move(value);
  rec.parent = parent;
  nodes_.push_back(std::move(rec));
  NodeId id = static_cast<NodeId>(nodes_.size() - 1);
  // nodes_ may have reallocated; re-fetch the child list.
  auto& kids2 = node(parent).children;
  kids2.insert(kids2.begin() + (k - 1), id);
  ++live_count_;
  NotifyInsert(id);
  return id;
}

Status Tree::DeleteLeaf(NodeId x) {
  if (frozen_) return FrozenError("delete");
  if (!Alive(x)) return Status::InvalidArgument("delete: node is not live");
  if (!IsLeaf(x)) {
    return Status::FailedPrecondition(
        "delete: node has children (the paper's DEL applies to leaves only)");
  }
  NodeId p = parent(x);
  if (p != kInvalidNode) {
    auto& siblings = node(p).children;
    siblings.erase(std::find(siblings.begin(), siblings.end(), x));
  } else {
    root_ = kInvalidNode;
  }
  node(x).alive = false;
  node(x).parent = kInvalidNode;
  --live_count_;
  NotifyDelete(x, p);
  return Status::Ok();
}

Status Tree::ReviveLeaf(NodeId x, NodeId parent, int k) {
  if (frozen_) return FrozenError("revive");
  if (x < 0 || static_cast<size_t>(x) >= nodes_.size() || node(x).alive) {
    return Status::InvalidArgument("revive: node is not a dead slot");
  }
  if (parent == kInvalidNode) {
    // Restoring a deleted root (the rollback of a whole-tree delete).
    if (root_ != kInvalidNode) {
      return Status::InvalidArgument("revive: tree already has a root");
    }
    if (k != 1) return Status::OutOfRange("revive: root position must be 1");
    node(x).alive = true;
    node(x).parent = kInvalidNode;
    node(x).children.clear();
    root_ = x;
    ++live_count_;
    NotifyRevive(x);
    return Status::Ok();
  }
  if (!Alive(parent)) {
    return Status::InvalidArgument("revive: parent is not a live node");
  }
  auto& kids = node(parent).children;
  if (k < 1 || static_cast<size_t>(k) > kids.size() + 1) {
    return Status::OutOfRange("revive: position k out of range");
  }
  kids.insert(kids.begin() + (k - 1), x);
  node(x).alive = true;
  node(x).parent = parent;
  node(x).children.clear();
  ++live_count_;
  NotifyRevive(x);
  return Status::Ok();
}

Status Tree::TruncateDeadTail(size_t bound) {
  if (frozen_) return FrozenError("truncate");
  if (bound > nodes_.size()) {
    return Status::InvalidArgument("truncate: bound exceeds id_bound");
  }
  for (size_t i = bound; i < nodes_.size(); ++i) {
    if (nodes_[i].alive) {
      return Status::FailedPrecondition(
          "truncate: slot " + std::to_string(i) + " is still live");
    }
  }
  nodes_.resize(bound);
  NotifyTruncate(bound);
  return Status::Ok();
}

Status Tree::UpdateValue(NodeId x, std::string value) {
  if (frozen_) return FrozenError("update");
  if (!Alive(x)) return Status::InvalidArgument("update: node is not live");
  node(x).value = std::move(value);
  NotifyUpdate(x);
  return Status::Ok();
}

Status Tree::MoveSubtree(NodeId x, NodeId new_parent, int k) {
  if (frozen_) return FrozenError("move");
  if (!Alive(x)) return Status::InvalidArgument("move: node is not live");
  if (!Alive(new_parent)) {
    return Status::InvalidArgument("move: target parent is not live");
  }
  if (x == root_) return Status::InvalidArgument("move: cannot move the root");
  if (IsAncestorOrSelf(x, new_parent)) {
    return Status::InvalidArgument(
        "move: target parent is inside the moved subtree");
  }
  // Detach.
  NodeId old_parent = parent(x);
  auto& old_siblings = node(old_parent).children;
  auto old_it = std::find(old_siblings.begin(), old_siblings.end(), x);
  const size_t old_index = static_cast<size_t>(old_it - old_siblings.begin());
  old_siblings.erase(old_it);
  // Attach at k (1-based, counted after detachment).
  auto& kids = node(new_parent).children;
  if (k < 1 || static_cast<size_t>(k) > kids.size() + 1) {
    // Restore the exact original position before failing, so a rejected
    // move leaves the tree (and any attached index) untouched.
    auto& restore = node(old_parent).children;
    restore.insert(restore.begin() + static_cast<ptrdiff_t>(old_index), x);
    return Status::OutOfRange("move: position k out of range");
  }
  kids.insert(kids.begin() + (k - 1), x);
  node(x).parent = new_parent;
  NotifyMove(x, old_parent);
  return Status::Ok();
}

std::vector<NodeId> Tree::BfsOrder() const {
  std::vector<NodeId> order;
  if (root_ == kInvalidNode) return order;
  order.reserve(live_count_);
  std::deque<NodeId> queue = {root_};
  while (!queue.empty()) {
    NodeId x = queue.front();
    queue.pop_front();
    order.push_back(x);
    for (NodeId c : children(x)) queue.push_back(c);
  }
  return order;
}

std::vector<NodeId> Tree::PostOrder() const {
  std::vector<NodeId> order;
  if (root_ == kInvalidNode) return order;
  order.reserve(live_count_);
  // Iterative post-order: push (node, child-cursor) frames.
  std::vector<std::pair<NodeId, size_t>> stack = {{root_, 0}};
  while (!stack.empty()) {
    auto& [x, cursor] = stack.back();
    const auto& kids = children(x);
    if (cursor < kids.size()) {
      NodeId next = kids[cursor++];
      stack.push_back({next, 0});
    } else {
      order.push_back(x);
      stack.pop_back();
    }
  }
  return order;
}

std::vector<NodeId> Tree::PreOrder() const {
  std::vector<NodeId> order;
  if (root_ == kInvalidNode) return order;
  order.reserve(live_count_);
  std::vector<NodeId> stack = {root_};
  while (!stack.empty()) {
    NodeId x = stack.back();
    stack.pop_back();
    order.push_back(x);
    const auto& kids = children(x);
    for (auto it = kids.rbegin(); it != kids.rend(); ++it) stack.push_back(*it);
  }
  return order;
}

std::vector<NodeId> Tree::Leaves() const {
  std::vector<NodeId> leaves;
  for (NodeId x : PreOrder()) {
    if (IsLeaf(x)) leaves.push_back(x);
  }
  return leaves;
}

std::vector<int> Tree::LeafCounts() const {
  std::vector<int> counts(nodes_.size(), 0);
  for (NodeId x : PostOrder()) {
    const auto& kids = children(x);
    if (kids.empty()) {
      counts[static_cast<size_t>(x)] = 1;
    } else {
      int total = 0;
      for (NodeId c : kids) total += counts[static_cast<size_t>(c)];
      counts[static_cast<size_t>(x)] = total;
    }
  }
  return counts;
}

std::vector<int> Tree::Depths() const {
  std::vector<int> depths(nodes_.size(), -1);
  for (NodeId x : BfsOrder()) {
    NodeId p = parent(x);
    depths[static_cast<size_t>(x)] =
        p == kInvalidNode ? 0 : depths[static_cast<size_t>(p)] + 1;
  }
  return depths;
}

int Tree::Height() const {
  if (root_ == kInvalidNode) return -1;
  int h = 0;
  for (int d : Depths()) h = std::max(h, d);
  return h;
}

Tree::EulerIntervals Tree::ComputeEuler() const {
  EulerIntervals e;
  e.tin.assign(nodes_.size(), -1);
  e.tout.assign(nodes_.size(), -1);
  int clock = 0;
  if (root_ == kInvalidNode) return e;
  std::vector<std::pair<NodeId, size_t>> stack = {{root_, 0}};
  e.tin[static_cast<size_t>(root_)] = clock++;
  while (!stack.empty()) {
    auto& [x, cursor] = stack.back();
    const auto& kids = children(x);
    if (cursor < kids.size()) {
      NodeId next = kids[cursor++];
      e.tin[static_cast<size_t>(next)] = clock++;
      stack.push_back({next, 0});
    } else {
      e.tout[static_cast<size_t>(x)] = clock++;
      stack.pop_back();
    }
  }
  return e;
}

Tree Tree::Clone() const {
  Tree copy(labels_);
  copy.nodes_ = nodes_;
  copy.root_ = root_;
  copy.live_count_ = live_count_;
  return copy;
}

bool Tree::Isomorphic(const Tree& a, const Tree& b) {
  if (a.size() != b.size()) return false;
  if ((a.root() == kInvalidNode) != (b.root() == kInvalidNode)) return false;
  if (a.root() == kInvalidNode) return true;
  // Parallel pre-order walk comparing labels, values, and child counts.
  // Labels may come from different tables, so compare names.
  std::vector<std::pair<NodeId, NodeId>> stack = {{a.root(), b.root()}};
  const bool same_table = a.labels_.get() == b.labels_.get();
  while (!stack.empty()) {
    auto [x, y] = stack.back();
    stack.pop_back();
    if (same_table) {
      if (a.label(x) != b.label(y)) return false;
    } else if (a.label_name(x) != b.label_name(y)) {
      return false;
    }
    if (a.value(x) != b.value(y)) return false;
    const auto& ax = a.children(x);
    const auto& by = b.children(y);
    if (ax.size() != by.size()) return false;
    for (size_t i = 0; i < ax.size(); ++i) stack.push_back({ax[i], by[i]});
  }
  return true;
}

Status Tree::Validate() const {
  size_t live = 0;
  for (size_t i = 0; i < nodes_.size(); ++i) {
    const NodeRec& rec = nodes_[i];
    if (!rec.alive) continue;
    ++live;
    NodeId id = static_cast<NodeId>(i);
    if (id == root_) {
      // Must be checked before the traversal below: a root with a parent can
      // close a cycle through the root that BfsOrder would walk forever.
      if (rec.parent != kInvalidNode) {
        return Status::Internal("root node has a parent");
      }
    } else if (rec.parent == kInvalidNode) {
      return Status::Internal("live non-root node has no parent");
    } else {
      if (!Alive(rec.parent)) {
        return Status::Internal("live node has dead parent");
      }
      const auto& siblings = node(rec.parent).children;
      if (std::count(siblings.begin(), siblings.end(), id) != 1) {
        return Status::Internal("parent/child lists are inconsistent");
      }
    }
    for (NodeId c : rec.children) {
      if (!Alive(c)) return Status::Internal("live node has dead child");
      if (node(c).parent != id) {
        return Status::Internal("child's parent pointer is wrong");
      }
    }
  }
  if (live != live_count_) return Status::Internal("live_count mismatch");
  if (root_ != kInvalidNode) {
    // Reachability: every live node must be reached from the root.
    if (BfsOrder().size() != live_count_) {
      return Status::Internal("unreachable live nodes (cycle or forest)");
    }
  } else if (live_count_ != 0) {
    return Status::Internal("no root but live nodes exist");
  }
  return Status::Ok();
}

void Tree::DebugStringRec(NodeId x, std::string* out) const {
  out->push_back('(');
  out->append(label_name(x));
  if (!value(x).empty()) {
    out->append(" \"");
    out->append(value(x));
    out->push_back('"');
  }
  for (NodeId c : children(x)) {
    out->push_back(' ');
    DebugStringRec(c, out);
  }
  out->push_back(')');
}

std::string Tree::ToDebugString() const {
  if (root_ == kInvalidNode) return "()";
  std::string out;
  DebugStringRec(root_, &out);
  return out;
}

}  // namespace treediff
