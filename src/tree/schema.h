#ifndef TREEDIFF_TREE_SCHEMA_H_
#define TREEDIFF_TREE_SCHEMA_H_

#include <string_view>
#include <unordered_map>
#include <vector>

#include "tree/tree.h"
#include "util/status.h"

namespace treediff {

/// The acyclic-labels condition of Section 5.1: there is an ordering <_l on
/// labels such that a node with label l1 appears as a descendant of a node
/// with label l2 only if l1 <_l l2. This schema assigns each label a rank and
/// checks that every parent/child edge strictly decreases rank downward.
///
/// The paper resolves label cycles (e.g., itemize inside enumerate) by merging
/// semantically similar labels; our LaTeX/HTML parsers follow suit by mapping
/// every list environment to the single label "list".
class LabelSchema {
 public:
  LabelSchema() = default;

  /// Assigns `rank` to `label` (higher rank = closer to the root).
  void SetRank(LabelId label, int rank);

  /// Returns the rank of `label`, or -1 if the label is not in the schema.
  int Rank(LabelId label) const;

  /// True if every edge of `tree` satisfies rank(child) < rank(parent).
  /// Labels absent from the schema fail the check.
  Status CheckAcyclic(const Tree& tree) const;

  /// All labels in the schema sorted by ascending rank (leaf-most first), the
  /// order FastMatch processes label chains in.
  std::vector<LabelId> LabelsByRank() const;

 private:
  std::unordered_map<LabelId, int> ranks_;
};

/// Canonical label names of the structured-document schema (Section 7): a
/// Document contains Sections, Sections contain Subsections/Paragraphs/Lists,
/// Lists contain Items, Items and Paragraphs contain Sentences.
namespace doc_labels {
inline constexpr std::string_view kDocument = "document";
inline constexpr std::string_view kSection = "section";
inline constexpr std::string_view kSubsection = "subsection";
inline constexpr std::string_view kParagraph = "paragraph";
inline constexpr std::string_view kList = "list";
inline constexpr std::string_view kItem = "item";
inline constexpr std::string_view kSentence = "sentence";
}  // namespace doc_labels

/// Builds the document schema over `labels` with the natural ordering
/// sentence < paragraph < item < list < subsection < section < document
/// (Section 5.1's example, with all list kinds merged into "list").
LabelSchema MakeDocumentSchema(LabelTable* labels);

}  // namespace treediff

#endif  // TREEDIFF_TREE_SCHEMA_H_
