#include "tree/tree_index.h"

#include <cassert>
#include <utility>

namespace treediff {

namespace {

inline size_t Idx(NodeId x) {
  assert(x >= 0);
  return static_cast<size_t>(x);
}

/// Mixes `v` into `seed` (boost-style). Also used for subtree fingerprints;
/// order-sensitive, so sibling order matters as the paper's isomorphism
/// requires.
inline uint64_t HashCombine(uint64_t seed, uint64_t v) {
  return seed ^ (v + 0x9e3779b97f4a7c15ULL + (seed << 6) + (seed >> 2));
}

}  // namespace

uint64_t HashValueBytes(std::string_view bytes) {
  // 64-bit FNV-1a.
  uint64_t h = 1469598103934665603ULL;
  for (unsigned char c : bytes) {
    h ^= c;
    h *= 1099511628211ULL;
  }
  return h;
}

uint64_t NodeValueHash(const Tree& t, NodeId x) {
  if (const TreeIndex* index = t.attached_index()) return index->ValueHash(x);
  return HashValueBytes(t.value(x));
}

TreeIndex::TreeIndex(const Tree& tree) : tree_(&tree) {
  tree.AttachIndex(this);
  // Scalars and orders are what nearly every stage reads; build them up
  // front. Fingerprints stay lazy (only the structural matcher wants them).
  EnsureScalars();
  EnsureOrders();
}

TreeIndex::~TreeIndex() {
  if (tree_ != nullptr) tree_->DetachIndex(this);
}

// ----- Scalar tier -----

int TreeIndex::Depth(NodeId x) const {
  EnsureScalars();
  return depth_[Idx(x)];
}

int TreeIndex::SubtreeSize(NodeId x) const {
  EnsureScalars();
  return subtree_size_[Idx(x)];
}

int TreeIndex::LeafCount(NodeId x) const {
  EnsureScalars();
  return leaf_count_[Idx(x)];
}

int TreeIndex::ChildIndex(NodeId x) const {
  EnsureScalars();
  return child_index_[Idx(x)];
}

uint64_t TreeIndex::ValueHash(NodeId x) const {
  EnsureScalars();
  return value_hash_[Idx(x)];
}

// ----- Order tier -----

const std::vector<NodeId>& TreeIndex::PreOrder() const {
  EnsureOrders();
  return pre_order_;
}

const std::vector<NodeId>& TreeIndex::PostOrder() const {
  EnsureOrders();
  return post_order_;
}

const std::vector<NodeId>& TreeIndex::BfsOrder() const {
  EnsureOrders();
  return bfs_order_;
}

const std::vector<NodeId>& TreeIndex::Leaves() const {
  EnsureOrders();
  return leaves_;
}

int TreeIndex::PostOrderPos(NodeId x) const {
  EnsureOrders();
  return post_pos_[Idx(x)];
}

bool TreeIndex::Contains(NodeId anc, NodeId desc) const {
  EnsureOrders();
  assert(tin_[Idx(anc)] >= 0 && tin_[Idx(desc)] >= 0);
  return tin_[Idx(anc)] <= tin_[Idx(desc)] &&
         tout_[Idx(desc)] <= tout_[Idx(anc)];
}

int TreeIndex::LeafRangeBegin(NodeId x) const {
  EnsureOrders();
  return leaf_begin_[Idx(x)];
}

int TreeIndex::LeafRangeEnd(NodeId x) const {
  EnsureOrders();
  return leaf_end_[Idx(x)];
}

const std::vector<NodeId>& TreeIndex::LeafChain(LabelId label) const {
  EnsureOrders();
  static const std::vector<NodeId> kEmpty;
  auto it = leaf_chains_.find(label);
  return it == leaf_chains_.end() ? kEmpty : it->second;
}

const std::vector<NodeId>& TreeIndex::InternalChain(LabelId label) const {
  EnsureOrders();
  static const std::vector<NodeId> kEmpty;
  auto it = internal_chains_.find(label);
  return it == internal_chains_.end() ? kEmpty : it->second;
}

const std::map<LabelId, std::vector<NodeId>>& TreeIndex::LeafChains() const {
  EnsureOrders();
  return leaf_chains_;
}

const std::map<LabelId, std::vector<NodeId>>& TreeIndex::InternalChains()
    const {
  EnsureOrders();
  return internal_chains_;
}

// ----- Fingerprint tier -----

uint64_t TreeIndex::StructuralHash(NodeId x) const {
  EnsureFingerprints();
  return structural_hash_[Idx(x)];
}

uint64_t TreeIndex::LiteralHash(NodeId x) const {
  EnsureFingerprints();
  return literal_hash_[Idx(x)];
}

uint64_t TreeIndex::SubtreeHash(NodeId x) const {
  EnsureFingerprints();
  return subtree_hash_[Idx(x)];
}

// ----- Rebuilds -----

void TreeIndex::EnsureScalars() const {
  if (scalars_dirty_) RebuildScalars();
}

void TreeIndex::EnsureOrders() const {
  EnsureScalars();
  if (orders_dirty_) RebuildOrders();
}

void TreeIndex::EnsureFingerprints() const {
  EnsureOrders();
  if (fingerprints_dirty_) RebuildFingerprints();
}

void TreeIndex::RebuildScalars() const {
  assert(tree_ != nullptr && "index used after its tree was destroyed");
  const Tree& t = *tree_;
  const size_t n = t.id_bound();
  depth_.assign(n, -1);
  subtree_size_.assign(n, 0);
  leaf_count_.assign(n, 0);
  child_index_.assign(n, -1);
  value_hash_.resize(n);
  // Dead slots keep their value (for ReviveLeaf), so they get hashes too.
  for (size_t i = 0; i < n; ++i) {
    value_hash_[i] = HashValueBytes(t.value(static_cast<NodeId>(i)));
  }
  if (t.root() != kInvalidNode) {
    std::vector<std::pair<NodeId, size_t>> stack = {{t.root(), 0}};
    depth_[Idx(t.root())] = 0;
    while (!stack.empty()) {
      auto& [x, cursor] = stack.back();
      const auto& kids = t.children(x);
      if (cursor < kids.size()) {
        NodeId next = kids[cursor];
        child_index_[Idx(next)] = static_cast<int>(cursor);
        depth_[Idx(next)] = depth_[Idx(x)] + 1;
        ++cursor;
        stack.push_back({next, 0});
      } else {
        int size = 1;
        int leaves = kids.empty() ? 1 : 0;
        for (NodeId c : kids) {
          size += subtree_size_[Idx(c)];
          leaves += leaf_count_[Idx(c)];
        }
        subtree_size_[Idx(x)] = size;
        leaf_count_[Idx(x)] = leaves;
        stack.pop_back();
      }
    }
  }
  scalars_dirty_ = false;
}

void TreeIndex::RebuildOrders() const {
  assert(tree_ != nullptr && "index used after its tree was destroyed");
  const Tree& t = *tree_;
  const size_t n = t.id_bound();
  pre_order_.clear();
  post_order_.clear();
  leaves_.clear();
  post_pos_.assign(n, -1);
  tin_.assign(n, -1);
  tout_.assign(n, -1);
  leaf_begin_.assign(n, 0);
  leaf_end_.assign(n, 0);
  leaf_chains_.clear();
  internal_chains_.clear();
  if (t.root() != kInvalidNode) {
    pre_order_.reserve(t.size());
    post_order_.reserve(t.size());
    int clock = 0;
    std::vector<std::pair<NodeId, size_t>> stack;
    auto enter = [&](NodeId y) {
      tin_[Idx(y)] = clock++;
      pre_order_.push_back(y);
      leaf_begin_[Idx(y)] = static_cast<int>(leaves_.size());
      if (t.IsLeaf(y)) {
        leaves_.push_back(y);
        leaf_chains_[t.label(y)].push_back(y);
      } else {
        internal_chains_[t.label(y)].push_back(y);
      }
      stack.push_back({y, 0});
    };
    enter(t.root());
    while (!stack.empty()) {
      auto& [x, cursor] = stack.back();
      const auto& kids = t.children(x);
      if (cursor < kids.size()) {
        enter(kids[cursor++]);
      } else {
        tout_[Idx(x)] = clock++;
        leaf_end_[Idx(x)] = static_cast<int>(leaves_.size());
        post_pos_[Idx(x)] = static_cast<int>(post_order_.size());
        post_order_.push_back(x);
        stack.pop_back();
      }
    }
  }
  // BFS = pre-order stably bucketed by depth (within a level both orders
  // sort nodes by ancestor path).
  bfs_order_.clear();
  bfs_order_.reserve(pre_order_.size());
  int max_depth = -1;
  for (NodeId x : pre_order_) max_depth = std::max(max_depth, depth_[Idx(x)]);
  std::vector<std::vector<NodeId>> by_depth(
      static_cast<size_t>(max_depth + 1));
  for (NodeId x : pre_order_) {
    by_depth[static_cast<size_t>(depth_[Idx(x)])].push_back(x);
  }
  for (const auto& level : by_depth) {
    bfs_order_.insert(bfs_order_.end(), level.begin(), level.end());
  }
  orders_dirty_ = false;
}

void TreeIndex::RebuildFingerprints() const {
  assert(tree_ != nullptr && "index used after its tree was destroyed");
  const size_t n = tree_->id_bound();
  structural_hash_.assign(n, 0);
  literal_hash_.assign(n, 0);
  subtree_hash_.assign(n, 0);
  for (NodeId x : post_order_) {
    // Seed the structural hash with 1 so a leaf's structural hash differs
    // from the "no children" literal seed even when label == value hash.
    uint64_t sh = HashCombine(1, static_cast<uint64_t>(tree_->label(x)));
    uint64_t lh = HashCombine(2, value_hash_[Idx(x)]);
    for (NodeId c : tree_->children(x)) {
      sh = HashCombine(sh, structural_hash_[Idx(c)]);
      lh = HashCombine(lh, literal_hash_[Idx(c)]);
    }
    structural_hash_[Idx(x)] = sh;
    literal_hash_[Idx(x)] = lh;
    subtree_hash_[Idx(x)] = HashCombine(sh, lh);
  }
  fingerprints_dirty_ = false;
}

// ----- Eager scalar patches -----

void TreeIndex::GrowScalars() const {
  const size_t n = tree_->id_bound();
  if (depth_.size() >= n) return;
  depth_.resize(n, -1);
  subtree_size_.resize(n, 0);
  leaf_count_.resize(n, 0);
  child_index_.resize(n, -1);
  value_hash_.resize(n, 0);
}

void TreeIndex::RepairPathUp(NodeId from) const {
  for (NodeId q = from; q != kInvalidNode; q = tree_->parent(q)) {
    const auto& kids = tree_->children(q);
    int size = 1;
    int leaves = kids.empty() ? 1 : 0;
    for (NodeId c : kids) {
      size += subtree_size_[Idx(c)];
      leaves += leaf_count_[Idx(c)];
    }
    subtree_size_[Idx(q)] = size;
    leaf_count_[Idx(q)] = leaves;
  }
}

void TreeIndex::RepairChildIndexes(NodeId parent) const {
  const auto& kids = tree_->children(parent);
  for (size_t i = 0; i < kids.size(); ++i) {
    child_index_[Idx(kids[i])] = static_cast<int>(i);
  }
}

// ----- Mutation hooks -----

void TreeIndex::OnInsertLeaf(NodeId x) {
  if (!scalars_dirty_) {
    GrowScalars();
    const NodeId p = tree_->parent(x);
    depth_[Idx(x)] = depth_[Idx(p)] + 1;
    subtree_size_[Idx(x)] = 1;
    leaf_count_[Idx(x)] = 1;
    value_hash_[Idx(x)] = HashValueBytes(tree_->value(x));
    RepairChildIndexes(p);
    RepairPathUp(p);
  }
  orders_dirty_ = true;
  fingerprints_dirty_ = true;
}

void TreeIndex::OnDeleteLeaf(NodeId x, NodeId old_parent) {
  if (!scalars_dirty_) {
    depth_[Idx(x)] = -1;
    subtree_size_[Idx(x)] = 0;
    leaf_count_[Idx(x)] = 0;
    child_index_[Idx(x)] = -1;
    if (old_parent != kInvalidNode) {
      RepairChildIndexes(old_parent);
      RepairPathUp(old_parent);
    }
  }
  orders_dirty_ = true;
  fingerprints_dirty_ = true;
}

void TreeIndex::OnReviveLeaf(NodeId x) {
  if (!scalars_dirty_) {
    const NodeId p = tree_->parent(x);
    // The revived slot kept its value, so value_hash_ is already current.
    subtree_size_[Idx(x)] = 1;
    leaf_count_[Idx(x)] = 1;
    if (p == kInvalidNode) {
      depth_[Idx(x)] = 0;
      child_index_[Idx(x)] = -1;
    } else {
      depth_[Idx(x)] = depth_[Idx(p)] + 1;
      RepairChildIndexes(p);
      RepairPathUp(p);
    }
  }
  orders_dirty_ = true;
  fingerprints_dirty_ = true;
}

void TreeIndex::OnUpdateValue(NodeId x) {
  if (!scalars_dirty_) {
    value_hash_[Idx(x)] = HashValueBytes(tree_->value(x));
  }
  fingerprints_dirty_ = true;
}

void TreeIndex::OnMoveSubtree(NodeId x, NodeId old_parent) {
  if (!scalars_dirty_) {
    const NodeId np = tree_->parent(x);
    const int delta = depth_[Idx(np)] + 1 - depth_[Idx(x)];
    if (delta != 0) {
      std::vector<NodeId> stack = {x};
      while (!stack.empty()) {
        NodeId y = stack.back();
        stack.pop_back();
        depth_[Idx(y)] += delta;
        for (NodeId c : tree_->children(y)) stack.push_back(c);
      }
    }
    RepairChildIndexes(old_parent);
    RepairChildIndexes(np);
    // Repair the old path first: any stale ancestors it leaves on the
    // shared suffix sit on the new path and are fixed by the second pass.
    RepairPathUp(old_parent);
    RepairPathUp(np);
  }
  orders_dirty_ = true;
  fingerprints_dirty_ = true;
}

void TreeIndex::OnTruncateDeadTail(size_t bound) {
  // Popped slots are all dead, so they appear in no order or chain; the
  // id-indexed arrays just shrink to the new bound.
  if (!scalars_dirty_) {
    depth_.resize(bound);
    subtree_size_.resize(bound);
    leaf_count_.resize(bound);
    child_index_.resize(bound);
    value_hash_.resize(bound);
  }
  if (!orders_dirty_) {
    post_pos_.resize(bound);
    tin_.resize(bound);
    tout_.resize(bound);
    leaf_begin_.resize(bound);
    leaf_end_.resize(bound);
  }
  if (!fingerprints_dirty_) {
    structural_hash_.resize(bound);
    literal_hash_.resize(bound);
    subtree_hash_.resize(bound);
  }
}

void TreeIndex::OnBulkStructureChange() {
  scalars_dirty_ = true;
  orders_dirty_ = true;
  fingerprints_dirty_ = true;
}

void TreeIndex::OnTreeGone() { tree_ = nullptr; }

}  // namespace treediff
