#include "core/criteria.h"

#include <algorithm>
#include <cassert>

namespace treediff {

CriteriaEvaluator::CriteriaEvaluator(const Tree& t1, const Tree& t2,
                                     const ValueComparator* comparator,
                                     MatchOptions options,
                                     const Budget* budget)
    : t1_(t1),
      t2_(t2),
      comparator_(comparator),
      options_(options),
      budget_(budget),
      euler2_(t2.ComputeEuler()),
      leaf_counts1_(t1.LeafCounts()),
      leaf_counts2_(t2.LeafCounts()) {
  assert(comparator_ != nullptr);
  assert(t1.label_table().get() == t2.label_table().get() &&
         "trees being compared must share one LabelTable");
}

bool CriteriaEvaluator::LeafEqual(NodeId x, NodeId y) const {
  if (t1_.label(x) != t2_.label(y)) return false;
  BudgetChargeComparisons(budget_);
  return comparator_->Compare(t1_, x, t2_, y) <= options_.leaf_threshold_f;
}

int CriteriaEvaluator::CommonLeaves(NodeId x, NodeId y,
                                    const Matching& m) const {
  // Walk the subtree of x; for each matched leaf w, check whether its partner
  // lies under y. Each containment test is the pair of integer comparisons
  // the paper calls a "partner check" (Section 8).
  int common = 0;
  std::vector<NodeId> stack = {x};
  while (!stack.empty()) {
    NodeId w = stack.back();
    stack.pop_back();
    const auto& kids = t1_.children(w);
    if (kids.empty()) {
      NodeId z = m.PartnerOfT1(w);
      ++partner_checks_;
      BudgetChargeComparisons(budget_);
      if (z != kInvalidNode && euler2_.Contains(y, z)) ++common;
    } else {
      for (NodeId c : kids) stack.push_back(c);
    }
  }
  return common;
}

bool CriteriaEvaluator::InternalEqual(NodeId x, NodeId y,
                                      const Matching& m) const {
  if (t1_.label(x) != t2_.label(y)) return false;
  const int max_size = std::max(LeafCount1(x), LeafCount2(y));
  if (max_size == 0) return true;  // Two childless interior nodes.
  const int common = CommonLeaves(x, y, m);
  return static_cast<double>(common) >
         options_.internal_threshold_t * static_cast<double>(max_size);
}

}  // namespace treediff
