#include "core/criteria.h"

#include <algorithm>
#include <cassert>

namespace treediff {

CriteriaEvaluator::CriteriaEvaluator(const Tree& t1, const Tree& t2,
                                     const ValueComparator* comparator,
                                     MatchOptions options,
                                     const Budget* budget)
    : owned_index1_(std::make_unique<TreeIndex>(t1)),
      owned_index2_(std::make_unique<TreeIndex>(t2)),
      index1_(owned_index1_.get()),
      index2_(owned_index2_.get()),
      t1_(t1),
      t2_(t2),
      comparator_(comparator),
      options_(options),
      budget_(budget) {
  assert(comparator_ != nullptr);
  assert(t1.label_table().get() == t2.label_table().get() &&
         "trees being compared must share one LabelTable");
}

CriteriaEvaluator::CriteriaEvaluator(const TreeIndex& index1,
                                     const TreeIndex& index2,
                                     const ValueComparator* comparator,
                                     MatchOptions options,
                                     const Budget* budget)
    : index1_(&index1),
      index2_(&index2),
      t1_(index1.tree()),
      t2_(index2.tree()),
      comparator_(comparator),
      options_(options),
      budget_(budget) {
  assert(comparator_ != nullptr);
  assert(t1_.label_table().get() == t2_.label_table().get() &&
         "trees being compared must share one LabelTable");
}

bool CriteriaEvaluator::LeafEqual(NodeId x, NodeId y) const {
  if (t1_.label(x) != t2_.label(y)) return false;
  BudgetChargeComparisons(budget_);
  return comparator_->Compare(t1_, x, t2_, y) <= options_.leaf_threshold_f;
}

int CriteriaEvaluator::CommonLeaves(NodeId x, NodeId y,
                                    const Matching& m) const {
  // The leaves under x form a contiguous slice of the T1 index's leaf
  // sequence; for each matched leaf w, check whether its partner lies under
  // y. Each containment test is the pair of integer comparisons the paper
  // calls a "partner check" (Section 8).
  int common = 0;
  const std::vector<NodeId>& leaves = index1_->Leaves();
  const int end = index1_->LeafRangeEnd(x);
  for (int i = index1_->LeafRangeBegin(x); i < end; ++i) {
    NodeId w = leaves[static_cast<size_t>(i)];
    NodeId z = m.PartnerOfT1(w);
    ++partner_checks_;
    BudgetChargeComparisons(budget_);
    if (z != kInvalidNode && index2_->Contains(y, z)) ++common;
  }
  return common;
}

bool CriteriaEvaluator::InternalEqual(NodeId x, NodeId y,
                                      const Matching& m) const {
  if (t1_.label(x) != t2_.label(y)) return false;
  const int max_size = std::max(LeafCount1(x), LeafCount2(y));
  if (max_size == 0) return true;  // Two childless interior nodes.
  const int common = CommonLeaves(x, y, m);
  return static_cast<double>(common) >
         options_.internal_threshold_t * static_cast<double>(max_size);
}

}  // namespace treediff
