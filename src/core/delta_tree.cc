#include "core/delta_tree.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

namespace treediff {

const char* DeltaAnnotationName(DeltaAnnotation ann) {
  switch (ann) {
    case DeltaAnnotation::kIdentical:
      return "IDN";
    case DeltaAnnotation::kUpdated:
      return "UPD";
    case DeltaAnnotation::kInserted:
      return "INS";
    case DeltaAnnotation::kDeleted:
      return "DEL";
    case DeltaAnnotation::kMoved:
      return "MOV";
    case DeltaAnnotation::kMoveMarker:
      return "MRK";
  }
  return "???";
}

size_t DeltaTree::CountAnnotation(DeltaAnnotation ann) const {
  size_t count = 0;
  for (const DeltaNode& n : nodes_) {
    if (n.annotation == ann) ++count;
  }
  return count;
}

namespace {

void DebugStringRec(const DeltaTree& dt, const LabelTable& labels, int index,
                    std::string* out) {
  const DeltaNode& n = dt.node(index);
  out->push_back('(');
  out->append(labels.Name(n.label));
  if (n.annotation != DeltaAnnotation::kIdentical) {
    out->push_back(':');
    out->append(DeltaAnnotationName(n.annotation));
    if (n.move_id >= 0) out->append("#" + std::to_string(n.move_id));
  }
  if (n.value_updated) out->append(":upd");
  if (!n.value.empty()) {
    out->append(" \"");
    out->append(n.value);
    out->push_back('"');
  }
  for (int c : n.children) {
    out->push_back(' ');
    DebugStringRec(dt, labels, c, out);
  }
  out->push_back(')');
}

}  // namespace

std::string DeltaTree::ToDebugString(const LabelTable& labels) const {
  if (root_ < 0) return "()";
  std::string out;
  DebugStringRec(*this, labels, root_, &out);
  return out;
}

/// Assembles a DeltaTree per the construction described in delta_tree.h.
class DeltaTreeBuilder {
 public:
  DeltaTreeBuilder(const Tree& t1, const Tree& t2, const Matching& matching,
                   const EditScript& script)
      : t1_(t1), t2_(t2), m_(matching) {
    // Matched t1 nodes moved by the script (inter-parent and align-phase
    // moves alike). Inserted nodes (ids beyond t1's bound) never move.
    for (const EditOp& op : script.ops()) {
      if (op.kind == EditOpKind::kMove &&
          static_cast<size_t>(op.node) < t1.id_bound()) {
        moved_.insert(op.node);
      }
    }
  }

  StatusOr<DeltaTree> Build() {
    if (m_.PartnerOfT2(t2_.root()) != t1_.root()) {
      if (!m_.HasT1(t1_.root()) && !m_.HasT2(t2_.root()) &&
          t1_.label(t1_.root()) == t2_.label(t2_.root())) {
        m_.Add(t1_.root(), t2_.root());
      } else {
        return Status::FailedPrecondition(
            "delta tree requires the roots to be matched (wrap trees with "
            "Tree::WrapRoot first)");
      }
    }

    // Skeleton: the new tree, annotated.
    dt_.root_ = BuildFromT2(t2_.root());

    // Splice DEL and MOV tombstones at their old positions, per matched
    // internal pair.
    for (const auto& [x, y] : m_.Pairs()) {
      if (!t1_.children(x).empty()) SpliceTombstones(x, y);
    }
    return std::move(dt_);
  }

 private:
  int NewNode(DeltaNode node) {
    dt_.nodes_.push_back(std::move(node));
    return static_cast<int>(dt_.nodes_.size() - 1);
  }

  /// Creates the delta node of T2 node `y` and, recursively, its children.
  int BuildFromT2(NodeId y) {
    DeltaNode n;
    n.label = t2_.label(y);
    n.value = t2_.value(y);
    n.t2_node = y;
    const NodeId x = m_.PartnerOfT2(y);
    if (x == kInvalidNode) {
      n.annotation = DeltaAnnotation::kInserted;
    } else {
      n.t1_node = x;
      const bool updated = t1_.value(x) != t2_.value(y);
      if (updated) {
        n.old_value = t1_.value(x);
        n.value_updated = true;
      }
      if (moved_.count(x) > 0) {
        n.annotation = DeltaAnnotation::kMoveMarker;
        n.move_id = dt_.next_move_id_++;
        move_ids_[x] = n.move_id;
      } else if (updated) {
        n.annotation = DeltaAnnotation::kUpdated;
      } else {
        n.annotation = DeltaAnnotation::kIdentical;
      }
    }
    const int index = NewNode(std::move(n));
    for (NodeId c : t2_.children(y)) {
      const int child = BuildFromT2(c);
      dt_.nodes_[static_cast<size_t>(index)].children.push_back(child);
    }
    t2_delta_[y] = index;
    return index;
  }

  /// A DEL tombstone for the maximal unmatched subtree rooted at T1 node
  /// `x`. Matched descendants were moved out by the script; they appear as
  /// MOV tombstones at their old positions inside the deleted subtree.
  int BuildDeletedSubtree(NodeId x) {
    DeltaNode n;
    n.annotation = DeltaAnnotation::kDeleted;
    n.label = t1_.label(x);
    n.value = t1_.value(x);
    n.t1_node = x;
    const int index = NewNode(std::move(n));
    for (NodeId c : t1_.children(x)) {
      const int child = m_.HasT1(c) ? MakeMoveTombstone(c)
                                    : BuildDeletedSubtree(c);
      dt_.nodes_[static_cast<size_t>(index)].children.push_back(child);
    }
    return index;
  }

  /// A MOV tombstone marking the old position of moved T1 node `x`.
  int MakeMoveTombstone(NodeId x) {
    DeltaNode n;
    n.annotation = DeltaAnnotation::kMoved;
    n.label = t1_.label(x);
    n.value = t1_.value(x);
    n.t1_node = x;
    auto it = move_ids_.find(x);
    n.move_id = it == move_ids_.end() ? -1 : it->second;
    return NewNode(std::move(n));
  }

  /// Splices tombstones for the matched pair (x in T1, y in T2) into the
  /// delta children of y, anchoring each tombstone after the nearest left
  /// T1 sibling that stayed in place.
  void SpliceTombstones(NodeId x, NodeId y) {
    // NewNode can reallocate the node arena, so the child list must be
    // re-fetched after every tombstone construction.
    const size_t parent_index = static_cast<size_t>(t2_delta_[y]);
    size_t insert_at = 0;  // Tombstones before the first anchor go up front.
    for (NodeId c : t1_.children(x)) {
      const NodeId partner = m_.PartnerOfT1(c);
      if (partner != kInvalidNode && moved_.count(c) == 0 &&
          t2_.parent(partner) == y) {
        // Stayed in place: becomes the anchor for following tombstones.
        const auto& kids = dt_.nodes_[parent_index].children;
        auto it = std::find(kids.begin(), kids.end(), t2_delta_[partner]);
        if (it != kids.end()) {
          insert_at = static_cast<size_t>(it - kids.begin()) + 1;
        }
      } else {
        const int tomb = partner == kInvalidNode ? BuildDeletedSubtree(c)
                                                 : MakeMoveTombstone(c);
        auto& kids = dt_.nodes_[parent_index].children;
        kids.insert(kids.begin() + static_cast<ptrdiff_t>(insert_at), tomb);
        ++insert_at;
      }
    }
  }

  const Tree& t1_;
  const Tree& t2_;
  Matching m_;
  std::unordered_set<NodeId> moved_;
  std::unordered_map<NodeId, int> move_ids_;
  std::unordered_map<NodeId, int> t2_delta_;
  DeltaTree dt_;
};

namespace {

/// Rebuilds the old version under `parent`. `index` is a delta node that
/// existed in the old tree at this position (possibly as a tombstone);
/// `markers` maps move_id -> delta index of the MRK destination, whose
/// children hold the moved subtree's contents.
void ReconstructOldRec(const DeltaTree& dt,
                       const std::unordered_map<int, int>& markers,
                       int index, Tree* out, NodeId parent) {
  const DeltaNode& n = dt.node(index);
  if (n.annotation == DeltaAnnotation::kInserted) return;  // New-only.
  if (n.annotation == DeltaAnnotation::kMoveMarker) {
    return;  // Moved-in: its old position is the MOV tombstone elsewhere.
  }

  // The node to materialize; a MOV tombstone redirects to its marker for
  // values and children (the subtree traveled with the move).
  int content_index = index;
  if (n.annotation == DeltaAnnotation::kMoved && n.move_id >= 0) {
    auto it = markers.find(n.move_id);
    if (it != markers.end()) content_index = it->second;
  }
  const DeltaNode& content = dt.node(content_index);
  const std::string& old_value =
      content.value_updated ? content.old_value : content.value;

  NodeId id = parent == kInvalidNode ? out->AddRoot(content.label, old_value)
                                     : out->AddChild(parent, content.label,
                                                     old_value);
  for (int c : content.children) {
    ReconstructOldRec(dt, markers, c, out, id);
  }
}

void ReconstructNewRec(const DeltaTree& dt, int index, Tree* out,
                       NodeId parent) {
  const DeltaNode& n = dt.node(index);
  if (n.annotation == DeltaAnnotation::kDeleted ||
      n.annotation == DeltaAnnotation::kMoved) {
    return;  // Tombstones exist only in the old version.
  }
  NodeId id = parent == kInvalidNode ? out->AddRoot(n.label, n.value)
                                     : out->AddChild(parent, n.label,
                                                     n.value);
  for (int c : n.children) ReconstructNewRec(dt, c, out, id);
}

}  // namespace

StatusOr<Tree> ReconstructOldVersion(const DeltaTree& delta,
                                     std::shared_ptr<LabelTable> labels) {
  if (delta.empty()) {
    return Status::InvalidArgument("cannot reconstruct from an empty delta");
  }
  std::unordered_map<int, int> markers;
  for (size_t i = 0; i < delta.nodes().size(); ++i) {
    const DeltaNode& n = delta.nodes()[i];
    if (n.annotation == DeltaAnnotation::kMoveMarker && n.move_id >= 0) {
      markers[n.move_id] = static_cast<int>(i);
    }
  }
  Tree out(std::move(labels));
  ReconstructOldRec(delta, markers, delta.root(), &out, kInvalidNode);
  if (out.root() == kInvalidNode) {
    return Status::FailedPrecondition(
        "delta root does not exist in the old version");
  }
  return out;
}

StatusOr<Tree> ReconstructNewVersion(const DeltaTree& delta,
                                     std::shared_ptr<LabelTable> labels) {
  if (delta.empty()) {
    return Status::InvalidArgument("cannot reconstruct from an empty delta");
  }
  Tree out(std::move(labels));
  ReconstructNewRec(delta, delta.root(), &out, kInvalidNode);
  if (out.root() == kInvalidNode) {
    return Status::FailedPrecondition(
        "delta root does not exist in the new version");
  }
  return out;
}

StatusOr<DeltaTree> BuildDeltaTree(const Tree& t1, const Tree& t2,
                                   const Matching& matching,
                                   const EditScript& script) {
  if (t1.root() == kInvalidNode || t2.root() == kInvalidNode) {
    return Status::FailedPrecondition("both trees must be non-empty");
  }
  DeltaTreeBuilder builder(t1, t2, matching, script);
  return builder.Build();
}

}  // namespace treediff
