#ifndef TREEDIFF_CORE_EDIT_SCRIPT_GEN_H_
#define TREEDIFF_CORE_EDIT_SCRIPT_GEN_H_

#include <utility>
#include <vector>

#include "core/compare.h"
#include "core/cost_model.h"
#include "core/edit_script.h"
#include "core/matching.h"
#include "tree/tree.h"
#include "util/budget.h"
#include "util/status.h"

namespace treediff {

/// Output of Algorithm EditScript.
struct EditScriptResult {
  /// The minimum-cost edit script conforming to the input matching. Node ids
  /// refer to the old tree; inserted nodes receive fresh ids in application
  /// order, so `script.ApplyTo` on a clone of the old tree reproduces the
  /// transformation.
  EditScript script;

  /// The total matching M' between the transformed old tree and the new tree
  /// (every node on both sides matched); extends the input matching.
  Matching total_matching;

  /// The old tree after applying the script; isomorphic to the new tree.
  Tree transformed;

  /// Weighted edit distance e (Section 5.3): inserts and deletes weigh 1,
  /// a move weighs the number of leaves of the moved subtree, updates 0.
  size_t weighted_edit_distance = 0;

  /// Unweighted edit distance d: the number of operations in the script.
  size_t unweighted_edit_distance = 0;

  /// Align-phase moves (the paper's intra-parent moves; their minimum count
  /// is the number of misaligned nodes D in the O(ND) bound).
  size_t intra_parent_moves = 0;

  /// Moves generated because the parents of a matched pair are not matched.
  size_t inter_parent_moves = 0;
};

/// Algorithm EditScript (Section 4, Figures 8 and 9): given the old tree
/// `t1`, the new tree `t2`, and a (partial) matching between them, produces
/// a minimum-cost edit script that conforms to the matching and transforms
/// `t1` into a tree isomorphic to `t2` (Theorem C.2). Runs in O(ND) time,
/// N = total nodes, D = misaligned nodes.
///
/// Requirements (checked, returning FailedPrecondition on violation):
///  * both trees share one LabelTable and are non-empty;
///  * every matched pair has equal labels (no edit operation relabels);
///  * the roots are matched to each other — except that if both roots are
///    unmatched and carry equal labels the pair is added automatically. For
///    trees whose roots cannot match, wrap both with Tree::WrapRoot (the
///    paper's dummy-root device) before diffing.
///
/// `update_cost_comparator`, if non-null, prices each update as
/// compare(old, new) per the Section 3.2 cost model; otherwise updates cost 1.
///
/// `use_lcs_alignment` selects the AlignChildren strategy: true (default)
/// uses the paper's LCS-based minimum-move alignment (Lemma C.1); false
/// uses a greedy increasing-chain alignment, kept as the ablation baseline
/// showing why the LCS matters (it can emit far more intra-parent moves on
/// adversarial orders while remaining correct).
/// `cost_model`, if non-null, prices inserts/deletes/moves per the general
/// Section 3.2 model (see CostModel); null means unit costs.
///
/// `budget`, if non-null, is charged one node per T2 node scanned and per
/// working-tree node visited in the delete phase; on exhaustion generation
/// stops and the budget's kResourceExhausted/kDeadlineExceeded status is
/// returned (the partially built script is discarded — a partial edit script
/// does not conform to the matching and must never be applied).
///
/// When `t2` carries an attached TreeIndex (the DiffContext pipeline), its
/// BFS order is consumed instead of re-traversing; the mutating working copy
/// of `t1` always gets its own index, which serves O(1) child positions and
/// subtree leaf counts throughout generation.
///
/// `settled_subtrees`, if non-null, lists (t1, t2) root pairs of regions the
/// share-map pre-pass matched wholesale and that survived the repair passes
/// intact (core/share_map.h FilterIntactSettled): every pair inside is in
/// `matching`, values are byte-equal, and child order agrees. The BFS scan
/// skips the *interiors* of those regions — for such nodes the update, move,
/// and align phases are provably no-ops, so the skip cannot change the
/// script. The region roots are still visited (they may move as a unit and
/// participate in their parent's alignment). Under the weighted-alignment
/// strategy (use_lcs_alignment with a cost_model) skipping is disabled: a
/// degenerate cost model with zero move costs makes the
/// heaviest-subsequence alignment emit zero-cost moves even inside
/// identical regions, and byte-identity outranks the speedup there.
StatusOr<EditScriptResult> GenerateEditScript(
    const Tree& t1, const Tree& t2, const Matching& matching,
    const ValueComparator* update_cost_comparator = nullptr,
    bool use_lcs_alignment = true, const CostModel* cost_model = nullptr,
    const Budget* budget = nullptr,
    const std::vector<std::pair<NodeId, NodeId>>* settled_subtrees = nullptr);

}  // namespace treediff

#endif  // TREEDIFF_CORE_EDIT_SCRIPT_GEN_H_
