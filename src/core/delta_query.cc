#include "core/delta_query.h"

#include <vector>

namespace treediff {

namespace {

/// Effective annotation mask of a node: positional annotation plus kUpdated
/// when the value changed on a moved node.
AnnotationMask NodeMask(const DeltaNode& n) {
  AnnotationMask mask = MaskOf(n.annotation);
  if (n.value_updated) mask |= MaskOf(DeltaAnnotation::kUpdated);
  return mask;
}

/// Depth-first walk carrying the path; calls fn(index, path) in document
/// order.
void Walk(const DeltaTree& delta, const LabelTable& labels, int index,
          const std::string& parent_path, int ordinal,
          const std::function<void(int, const std::string&)>& fn) {
  const DeltaNode& n = delta.node(index);
  std::string path = parent_path;
  if (!path.empty()) path += "/";
  path += labels.Name(n.label) + "[" + std::to_string(ordinal) + "]";
  fn(index, path);
  for (size_t i = 0; i < n.children.size(); ++i) {
    Walk(delta, labels, n.children[i], path, static_cast<int>(i), fn);
  }
}

}  // namespace

std::vector<DeltaHit> SelectChanges(const DeltaTree& delta,
                                    const LabelTable& labels,
                                    AnnotationMask mask, LabelId label) {
  std::vector<DeltaHit> hits;
  if (delta.empty()) return hits;
  Walk(delta, labels, delta.root(), "", 0,
       [&](int index, const std::string& path) {
         const DeltaNode& n = delta.node(index);
         if ((NodeMask(n) & mask) == 0) return;
         if (label != kInvalidLabel && n.label != label) return;
         hits.push_back({index, path});
       });
  return hits;
}

ChangeSummary SummarizeSubtree(const DeltaTree& delta, int index) {
  ChangeSummary summary;
  std::vector<int> stack = {index};
  while (!stack.empty()) {
    const int current = stack.back();
    stack.pop_back();
    const DeltaNode& n = delta.node(current);
    switch (n.annotation) {
      case DeltaAnnotation::kInserted:
        ++summary.inserted;
        break;
      case DeltaAnnotation::kDeleted:
        ++summary.deleted;
        break;
      case DeltaAnnotation::kUpdated:
        ++summary.updated;
        break;
      case DeltaAnnotation::kMoveMarker:
        ++summary.moved;
        if (n.value_updated) ++summary.updated;
        break;
      case DeltaAnnotation::kMoved:  // Tombstone; the marker counts.
      case DeltaAnnotation::kIdentical:
        break;
    }
    for (int c : n.children) stack.push_back(c);
  }
  return summary;
}

std::string RenderChangeReport(const DeltaTree& delta,
                               const LabelTable& labels) {
  std::string out;
  if (delta.empty()) return out;

  // A changed region is a node that is itself changed, reported at the
  // highest changed ancestor; descend into IDN nodes only.
  std::function<void(int, const std::string&, int)> visit =
      [&](int index, const std::string& parent_path, int ordinal) {
        const DeltaNode& n = delta.node(index);
        std::string path = parent_path;
        if (!path.empty()) path += "/";
        path += labels.Name(n.label) + "[" + std::to_string(ordinal) + "]";
        if (NodeMask(n) != MaskOf(DeltaAnnotation::kIdentical)) {
          ChangeSummary s = SummarizeSubtree(delta, index);
          out += path;
          out += ": ";
          out += DeltaAnnotationName(n.annotation);
          if (n.value_updated &&
              n.annotation != DeltaAnnotation::kUpdated) {
            out += "+UPD";
          }
          out += " (subtree: " + std::to_string(s.inserted) + " ins, " +
                 std::to_string(s.deleted) + " del, " +
                 std::to_string(s.updated) + " upd, " +
                 std::to_string(s.moved) + " mov)";
          if (!n.value.empty()) {
            out += " \"" + n.value.substr(0, 40) +
                   (n.value.size() > 40 ? "...\"" : "\"");
          }
          out += "\n";
          return;  // Do not descend: the region is reported wholesale.
        }
        for (size_t i = 0; i < n.children.size(); ++i) {
          visit(n.children[i], path, static_cast<int>(i));
        }
      };
  visit(delta.root(), "", 0);
  return out;
}

std::vector<RuleFiring> EvaluateRules(const DeltaTree& delta,
                                      const LabelTable& labels,
                                      const std::vector<ActiveRule>& rules) {
  std::vector<RuleFiring> firings;
  if (delta.empty()) return firings;
  Walk(delta, labels, delta.root(), "", 0,
       [&](int index, const std::string& path) {
         const DeltaNode& n = delta.node(index);
         const AnnotationMask mask = NodeMask(n);
         for (const ActiveRule& rule : rules) {
           if ((mask & rule.mask) == 0) continue;
           if (rule.label != kInvalidLabel && n.label != rule.label) {
             continue;
           }
           if (rule.condition && !rule.condition(n)) continue;
           firings.push_back({&rule, {index, path}});
         }
       });
  return firings;
}

}  // namespace treediff
