#ifndef TREEDIFF_CORE_EDIT_SCRIPT_H_
#define TREEDIFF_CORE_EDIT_SCRIPT_H_

#include <string>
#include <vector>

#include "tree/tree.h"
#include "util/budget.h"
#include "util/status.h"

namespace treediff {

/// Kind of an edit operation (Section 3.2).
enum class EditOpKind {
  kInsert,  // INS((x, l, v), y, k): new leaf x as kth child of y.
  kDelete,  // DEL(x): remove leaf x.
  kUpdate,  // UPD(x, v): set v(x) = v.
  kMove,    // MOV(x, y, k): subtree x becomes kth child of y.
};

/// Returns "INS"/"DEL"/"UPD"/"MOV".
const char* EditOpKindName(EditOpKind kind);

/// One edit operation over a tree. Node ids refer to the old tree's id
/// space; an insert records the id that the new node receives when the
/// script is applied in order (ids are allocated densely, so re-applying the
/// script to a fresh copy of the old tree reproduces the same ids).
struct EditOp {
  EditOpKind kind = EditOpKind::kInsert;

  /// Target node: the new node's id for kInsert; the affected node otherwise.
  NodeId node = kInvalidNode;

  /// Label of the inserted node (kInsert only).
  LabelId label = kInvalidLabel;

  /// New value (kInsert, kUpdate).
  std::string value;

  /// Target parent (kInsert, kMove).
  NodeId parent = kInvalidNode;

  /// 1-based position among the parent's children (kInsert, kMove). For a
  /// move, the position is counted after the subtree is detached.
  int position = 0;

  /// Cost of this operation under the paper's cost model: 1 for
  /// insert/delete/move, compare(old, new) for an update.
  double cost = 1.0;

  static EditOp Insert(NodeId node, LabelId label, std::string value,
                       NodeId parent, int position);
  static EditOp Delete(NodeId node);
  static EditOp Update(NodeId node, std::string value, double cost);
  static EditOp Move(NodeId node, NodeId parent, int position);

  /// Renders e.g. "INS((17, sentence, \"foo\"), 3, 2)" using `labels` for
  /// label names.
  std::string ToString(const LabelTable& labels) const;
};

/// A sequence of edit operations transforming one tree into another
/// (Section 3.2), together with the aggregate measures the paper's analysis
/// uses.
class EditScript {
 public:
  EditScript() = default;

  void Append(EditOp op);

  const std::vector<EditOp>& ops() const { return ops_; }
  size_t size() const { return ops_.size(); }
  bool empty() const { return ops_.empty(); }

  size_t num_inserts() const { return counts_[0]; }
  size_t num_deletes() const { return counts_[1]; }
  size_t num_updates() const { return counts_[2]; }
  size_t num_moves() const { return counts_[3]; }

  /// Total cost: sum of per-op costs (Section 3.2's cost model).
  double TotalCost() const { return total_cost_; }

  /// Applies every operation, in order, to `tree`. **Transactional**: if any
  /// operation is invalid — a bad node id, an orphaned move, an insert whose
  /// recorded id does not match the id the tree allocates (a script
  /// generated against a different tree), or a budget trip — the tree is
  /// rolled back, via an undo log, to a state indistinguishable from its
  /// pre-apply state (node ids, dead slots, and id_bound included), and the
  /// returned Status names the failing op and its index.
  ///
  /// `budget`, if non-null, is charged one node per operation; exhaustion
  /// aborts and rolls back with the budget's status.
  Status ApplyTo(Tree* tree, const Budget* budget = nullptr) const;

  /// Renders one operation per line.
  std::string ToString(const LabelTable& labels) const;

 private:
  std::vector<EditOp> ops_;
  size_t counts_[4] = {0, 0, 0, 0};
  double total_cost_ = 0.0;
};

/// Computes the inverse of `script` with respect to `tree` (the tree the
/// script applies to): applying `script` and then its inverse to a clone of
/// `tree` restores the original exactly — same node identities, not merely
/// an isomorphic tree (deleted nodes are revived in their dead slots).
/// Enables undo/rollback over version chains.
///
/// Fails if `script` does not apply cleanly to `tree`.
StatusOr<EditScript> InvertScript(const EditScript& script, const Tree& tree);

}  // namespace treediff

#endif  // TREEDIFF_CORE_EDIT_SCRIPT_H_
