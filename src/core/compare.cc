#include "core/compare.h"

#include <algorithm>

#include "lcs/lcs.h"
#include "util/tokenize.h"

namespace treediff {

double ExactComparator::CompareImpl(const Tree& t1, NodeId x, const Tree& t2,
                                    NodeId y) const {
  return t1.value(x) == t2.value(y) ? 0.0 : 2.0;
}

const std::vector<std::string>& WordLcsComparator::Tokens(const Tree& t,
                                                          NodeId x) const {
  CacheKey key{&t, x};
  auto it = cache_.find(key);
  if (it != cache_.end()) return it->second;
  auto [ins, inserted] =
      cache_.emplace(key, SplitWords(t.value(x), normalize_words_));
  return ins->second;
}

namespace {

double WordLcsDistanceOnTokens(const std::vector<std::string>& a,
                               const std::vector<std::string>& b) {
  if (a.empty() && b.empty()) return 0.0;
  const size_t common = LcsLength(a, b);
  const double total_off = static_cast<double>(a.size() + b.size()) -
                           2.0 * static_cast<double>(common);
  return total_off / static_cast<double>(std::max(a.size(), b.size()));
}

}  // namespace

double WordLcsComparator::CompareImpl(const Tree& t1, NodeId x, const Tree& t2,
                                      NodeId y) const {
  // Fast path: identical strings need no tokenization.
  if (t1.value(x) == t2.value(y)) return 0.0;
  return WordLcsDistanceOnTokens(Tokens(t1, x), Tokens(t2, y));
}

double WordLcsDistance(const std::string& a, const std::string& b,
                       bool normalize_words) {
  if (a == b) return 0.0;
  return WordLcsDistanceOnTokens(SplitWords(a, normalize_words),
                                 SplitWords(b, normalize_words));
}

}  // namespace treediff
