#include "core/compare.h"

#include <algorithm>

#include "lcs/lcs.h"
#include "tree/tree_index.h"
#include "util/tokenize.h"

namespace treediff {

double ExactComparator::CompareImpl(const Tree& t1, NodeId x, const Tree& t2,
                                    NodeId y) const {
  // Hash-first: with indexed trees an unequal hash proves inequality for
  // free; only equal hashes fall through to the byte compare. Without
  // indexes, hashing would cost as much as comparing, so don't.
  const TreeIndex* i1 = t1.attached_index();
  const TreeIndex* i2 = t2.attached_index();
  if (i1 != nullptr && i2 != nullptr && i1->ValueHash(x) != i2->ValueHash(y)) {
    return 2.0;
  }
  return t1.value(x) == t2.value(y) ? 0.0 : 2.0;
}

const WordLcsComparator::TokenEntry& WordLcsComparator::Tokens(
    const Tree& t, NodeId x, uint64_t value_hash) const {
  auto it = token_cache_.find(value_hash);
  if (it != token_cache_.end()) {
    ++stats_.tokenize_hits;
    return it->second;
  }
  ++stats_.tokenize_misses;
  TokenEntry entry;
  for (std::string& word : SplitWords(t.value(x), normalize_words_)) {
    auto [w, inserted] = word_ids_.try_emplace(
        std::move(word), static_cast<int32_t>(word_ids_.size()));
    entry.ids.push_back(w->second);
  }
  for (size_t i = 0; i < entry.ids.size(); ++i) {
    entry.positions[entry.ids[i]].push_back(static_cast<int32_t>(i));
  }
  return token_cache_.emplace(value_hash, std::move(entry)).first->second;
}

namespace {

/// Hunt–Szymanski LCS length: for each token of `a` in order, take its
/// positions in `b` in descending order; the LCS is the longest strictly
/// increasing subsequence of that stream, found by patience sorting. Exact
/// for any inputs, and O(|a| + r log r) where r is the number of matching
/// position pairs — near zero for the unrelated sentences that dominate
/// matching probes (exactly where Myers' O((|a| + |b|) * D) is quadratic).
size_t LcsLengthByPositions(
    const std::vector<int32_t>& a,
    const std::unordered_map<int32_t, std::vector<int32_t>>& b_positions) {
  std::vector<int32_t> tails;
  for (int32_t token : a) {
    const auto it = b_positions.find(token);
    if (it == b_positions.end()) continue;
    const std::vector<int32_t>& pos = it->second;
    for (auto p = pos.rbegin(); p != pos.rend(); ++p) {
      const auto slot = std::lower_bound(tails.begin(), tails.end(), *p);
      if (slot == tails.end()) {
        tails.push_back(*p);
      } else {
        *slot = *p;
      }
    }
  }
  return tails.size();
}

double WordLcsDistanceOnTokens(size_t a_size, size_t b_size, size_t common) {
  if (a_size == 0 && b_size == 0) return 0.0;
  const double total_off =
      static_cast<double>(a_size + b_size) - 2.0 * static_cast<double>(common);
  return total_off / static_cast<double>(std::max(a_size, b_size));
}

/// Order-insensitive combination of two value hashes into one pair key.
uint64_t PairKey(uint64_t ha, uint64_t hb) {
  const uint64_t lo = std::min(ha, hb);
  const uint64_t hi = std::max(ha, hb);
  return lo ^ (hi + 0x9e3779b97f4a7c15ULL + (lo << 6) + (lo >> 2));
}

}  // namespace

double WordLcsComparator::CompareImpl(const Tree& t1, NodeId x, const Tree& t2,
                                      NodeId y) const {
  const uint64_t hx = NodeValueHash(t1, x);
  const uint64_t hy = NodeValueHash(t2, y);
  // Fast path: identical strings need no tokenization. Unequal hashes prove
  // the strings differ, so the byte compare runs only on a hash match.
  if (hx == hy && t1.value(x) == t2.value(y)) return 0.0;
  const uint64_t pair = PairKey(hx, hy);
  auto hit = pair_cache_.find(pair);
  if (hit != pair_cache_.end()) return hit->second;
  // Materialize both token entries before taking references: the second
  // Tokens call may rehash token_cache_.
  Tokens(t1, x, hx);
  Tokens(t2, y, hy);
  const TokenEntry& a = token_cache_.find(hx)->second;
  const TokenEntry& b = token_cache_.find(hy)->second;
  const size_t common = LcsLengthByPositions(a.ids, b.positions);
  const double d = WordLcsDistanceOnTokens(a.ids.size(), b.ids.size(), common);
  pair_cache_.emplace(pair, d);
  return d;
}

double WordLcsDistance(const std::string& a, const std::string& b,
                       bool normalize_words) {
  if (a == b) return 0.0;
  const std::vector<std::string> ta = SplitWords(a, normalize_words);
  const std::vector<std::string> tb = SplitWords(b, normalize_words);
  return WordLcsDistanceOnTokens(ta.size(), tb.size(), LcsLength(ta, tb));
}

}  // namespace treediff
