#include "core/match.h"

#include <unordered_map>
#include <vector>

namespace treediff {

namespace {

/// A node may match only a node of the same structural kind: the leaf
/// criterion compares values, the internal criterion compares descendant
/// sets, and the two are not interchangeable.
bool Equal(const Tree& t1, NodeId x, const Tree& t2, NodeId y,
           const CriteriaEvaluator& eval, const Matching& m) {
  const bool leaf1 = t1.IsLeaf(x);
  if (leaf1 != t2.IsLeaf(y)) return false;
  return leaf1 ? eval.LeafEqual(x, y) : eval.InternalEqual(x, y, m);
}

}  // namespace

Matching ComputeMatch(const Tree& t1, const Tree& t2,
                      const CriteriaEvaluator& eval) {
  Matching m(t1.id_bound(), t2.id_bound());

  // Bucket T2 candidates by (label, is-leaf) in document order.
  std::unordered_map<LabelId, std::vector<NodeId>> t2_leaves;
  std::unordered_map<LabelId, std::vector<NodeId>> t2_internal;
  for (NodeId y : t2.PreOrder()) {
    (t2.IsLeaf(y) ? t2_leaves : t2_internal)[t2.label(y)].push_back(y);
  }

  // Bottom-up over T1 (post-order visits all descendants of a node before
  // the node itself, so leaf matches are in place when internal nodes are
  // evaluated). On budget exhaustion the partial matching built so far is
  // returned; callers detect exhaustion via the budget itself.
  const Budget* budget = eval.budget();
  for (NodeId x : t1.PostOrder()) {
    if (!BudgetChargeNodes(budget)) break;
    if (m.HasT1(x)) continue;
    auto& bucket = t1.IsLeaf(x) ? t2_leaves : t2_internal;
    auto it = bucket.find(t1.label(x));
    if (it == bucket.end()) continue;
    for (NodeId y : it->second) {
      if (!BudgetCheck(budget)) break;
      if (m.HasT2(y)) continue;
      if (Equal(t1, x, t2, y, eval, m)) {
        m.Add(x, y);
        break;
      }
    }
  }
  return m;
}

}  // namespace treediff
