#include "core/match.h"

#include <vector>

namespace treediff {

namespace {

/// A node may match only a node of the same structural kind: the leaf
/// criterion compares values, the internal criterion compares descendant
/// sets, and the two are not interchangeable.
bool Equal(const Tree& t1, NodeId x, const Tree& t2, NodeId y,
           const CriteriaEvaluator& eval, const Matching& m) {
  const bool leaf1 = t1.IsLeaf(x);
  if (leaf1 != t2.IsLeaf(y)) return false;
  return leaf1 ? eval.LeafEqual(x, y) : eval.InternalEqual(x, y, m);
}

}  // namespace

Matching ComputeMatch(const Tree& t1, const Tree& t2,
                      const CriteriaEvaluator& eval, const Matching* seed) {
  // The HasT1/HasT2 guards below make extension natural: settled T1 nodes
  // are never probed and settled T2 candidates are never taken.
  Matching m = seed != nullptr ? *seed
                               : Matching(t1.id_bound(), t2.id_bound());

  // T2 candidates bucketed by (label, is-leaf) in document order: exactly
  // the per-label chains the T2 index maintains.
  const TreeIndex& index2 = eval.index2();

  // Bottom-up over T1 (post-order visits all descendants of a node before
  // the node itself, so leaf matches are in place when internal nodes are
  // evaluated). On budget exhaustion the partial matching built so far is
  // returned; callers detect exhaustion via the budget itself.
  const Budget* budget = eval.budget();
  for (NodeId x : eval.index1().PostOrder()) {
    if (!BudgetChargeNodes(budget)) break;
    if (m.HasT1(x)) continue;
    const bool leaf = t1.IsLeaf(x);
    const std::vector<NodeId>& bucket = leaf
                                            ? index2.LeafChain(t1.label(x))
                                            : index2.InternalChain(t1.label(x));
    for (NodeId y : bucket) {
      if (!BudgetCheck(budget)) break;
      if (m.HasT2(y)) continue;
      if (Equal(t1, x, t2, y, eval, m)) {
        m.Add(x, y);
        break;
      }
    }
  }
  return m;
}

}  // namespace treediff
