#include "core/share_map.h"

#include <optional>

namespace treediff {

bool SubtreesIdentical(const Tree& t1, NodeId x, const Tree& t2, NodeId y) {
  std::vector<std::pair<NodeId, NodeId>> stack = {{x, y}};
  while (!stack.empty()) {
    auto [a, b] = stack.back();
    stack.pop_back();
    if (t1.label(a) != t2.label(b) || t1.value(a) != t2.value(b)) return false;
    const auto& ka = t1.children(a);
    const auto& kb = t2.children(b);
    if (ka.size() != kb.size()) return false;
    for (size_t i = 0; i < ka.size(); ++i) stack.push_back({ka[i], kb[i]});
  }
  return true;
}

void MatchSubtreePair(const Tree& t1, NodeId x, const Tree& t2, NodeId y,
                      Matching* m) {
  std::vector<std::pair<NodeId, NodeId>> stack = {{x, y}};
  while (!stack.empty()) {
    auto [a, b] = stack.back();
    stack.pop_back();
    m->Add(a, b);
    const auto& ka = t1.children(a);
    const auto& kb = t2.children(b);
    for (size_t i = 0; i < ka.size(); ++i) stack.push_back({ka[i], kb[i]});
  }
}

ShareMap ShareMap::Build(const TreeIndex& index) {
  ShareMap map;
  for (NodeId y : index.PreOrder()) {
    map.buckets_[index.SubtreeHash(y)].push_back(y);
  }
  return map;
}

Matching PrematchSharedSubtrees(
    const DiffContext& ctx, bool use_share_map, ShareStats* stats,
    std::vector<std::pair<NodeId, NodeId>>* settled) {
  const Tree& t1 = ctx.t1();
  const Tree& t2 = ctx.t2();
  const TreeIndex& i1 = ctx.index1();
  const TreeIndex& i2 = ctx.index2();
  Matching m(t1.id_bound(), t2.id_bound());

  std::optional<ShareMap> map;
  if (use_share_map) map = ShareMap::Build(i2);

  // A tainted T2 node has an unmatched root but matched nodes somewhere in
  // its subtree (an earlier, smaller settle landed inside it — duplicate
  // content makes this routine). MatchSubtreePair requires an entirely
  // unmatched subtree, so tainted candidates must be passed over.
  std::vector<char> tainted(static_cast<size_t>(t2.id_bound()), 0);

  // The canonical partner of x: the first T2 node in document order that is
  // not the root, whose subtree is byte-identical to x's, and whose subtree
  // is entirely unmatched. Both candidate sources preserve document order
  // and apply the same filters, so both modes settle the same pairs.
  auto find_twin = [&](NodeId x) -> NodeId {
    ++stats->lookups;
    if (use_share_map) {
      const std::vector<NodeId>* bucket = map->Candidates(i1.SubtreeHash(x));
      if (bucket == nullptr) return kInvalidNode;
      for (NodeId y : *bucket) {
        if (y == t2.root() || m.HasT2(y) ||
            tainted[static_cast<size_t>(y)]) {
          continue;
        }
        if (!SubtreesIdentical(t1, x, t2, y)) {
          ++stats->collisions;
          continue;
        }
        return y;
      }
      return kInvalidNode;
    }
    // Reference mode: same rule without the fingerprint index. The scalar
    // filters (label, sizes, root value hash) only skip candidates that
    // cannot possibly verify; the decision is SubtreesIdentical either way.
    for (NodeId y : i2.PreOrder()) {
      if (y == t2.root() || m.HasT2(y) || tainted[static_cast<size_t>(y)]) {
        continue;
      }
      if (t2.label(y) != t1.label(x) ||
          i2.SubtreeSize(y) != i1.SubtreeSize(x) ||
          i2.LeafCount(y) != i1.LeafCount(x) ||
          i2.ValueHash(y) != i1.ValueHash(x)) {
        continue;
      }
      if (!SubtreesIdentical(t1, x, t2, y)) {
        ++stats->collisions;
        continue;
      }
      return y;
    }
    return kInvalidNode;
  };

  // Top-down over T1 in document order, starting below the root: a settled
  // subtree is maximal (none of its descendants are probed again), so the
  // matchers see whole regions disappear at once.
  std::vector<NodeId> stack;
  const auto& top = t1.children(t1.root());
  for (auto it = top.rbegin(); it != top.rend(); ++it) stack.push_back(*it);
  while (!stack.empty()) {
    const NodeId x = stack.back();
    stack.pop_back();
    const NodeId y = find_twin(x);
    if (y != kInvalidNode) {
      MatchSubtreePair(t1, x, t2, y, &m);
      for (NodeId a = t2.parent(y); a != kInvalidNode; a = t2.parent(a)) {
        tainted[static_cast<size_t>(a)] = 1;
      }
      ++stats->settled_subtrees;
      stats->settled_nodes += static_cast<size_t>(i1.SubtreeSize(x));
      if (settled != nullptr) settled->emplace_back(x, y);
      continue;
    }
    const auto& kids = t1.children(x);
    for (auto it = kids.rbegin(); it != kids.rend(); ++it) stack.push_back(*it);
  }
  return m;
}

void FilterIntactSettled(const Tree& t1, const Tree& t2, const Matching& m,
                         std::vector<std::pair<NodeId, NodeId>>* settled) {
  auto intact = [&](NodeId x, NodeId y) {
    std::vector<std::pair<NodeId, NodeId>> stack = {{x, y}};
    while (!stack.empty()) {
      auto [a, b] = stack.back();
      stack.pop_back();
      if (!m.Contains(a, b)) return false;
      const auto& ka = t1.children(a);
      const auto& kb = t2.children(b);
      if (ka.size() != kb.size()) return false;
      for (size_t i = 0; i < ka.size(); ++i) stack.push_back({ka[i], kb[i]});
    }
    return true;
  };
  size_t kept = 0;
  for (const auto& [x, y] : *settled) {
    if (intact(x, y)) (*settled)[kept++] = {x, y};
  }
  settled->resize(kept);
}

}  // namespace treediff
