#include "core/script_io.h"

#include <cctype>
#include <cstdint>
#include <string>
#include <unordered_set>

namespace treediff {

namespace {

/// Escapes a value for serialization: the inverse of the parser below.
std::string EscapeValue(const std::string& value) {
  std::string out;
  out.reserve(value.size());
  for (char c : value) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
  return out;
}

/// Cursor-based parser over one line.
class LineParser {
 public:
  explicit LineParser(std::string_view line) : line_(line) {}

  void SkipSpace() {
    while (pos_ < line_.size() &&
           std::isspace(static_cast<unsigned char>(line_[pos_]))) {
      ++pos_;
    }
  }

  bool Literal(std::string_view expected) {
    SkipSpace();
    if (line_.substr(pos_).substr(0, expected.size()) != expected) {
      return false;
    }
    pos_ += expected.size();
    return true;
  }

  bool Int(int* out) {
    SkipSpace();
    size_t start = pos_;
    bool negative = false;
    if (pos_ < line_.size() && (line_[pos_] == '-' || line_[pos_] == '+')) {
      negative = line_[pos_] == '-';
      ++pos_;
    }
    // Accumulate into 64 bits with an explicit cap: fuzzed digit runs must
    // parse-fail cleanly, not overflow into undefined behaviour (atoi).
    int64_t value = 0;
    bool any = false, overflow = false;
    while (pos_ < line_.size() &&
           std::isdigit(static_cast<unsigned char>(line_[pos_]))) {
      any = true;
      if (value > (static_cast<int64_t>(1) << 40)) {
        overflow = true;  // Keep consuming digits; reject at the end.
      } else {
        value = value * 10 + (line_[pos_] - '0');
      }
      ++pos_;
    }
    if (!any) {
      pos_ = start;
      return false;
    }
    if (overflow || value > INT32_MAX) {
      pos_ = start;
      return false;
    }
    *out = negative ? -static_cast<int>(value) : static_cast<int>(value);
    return true;
  }

  bool Identifier(std::string* out) {
    SkipSpace();
    size_t start = pos_;
    while (pos_ < line_.size() &&
           (std::isalnum(static_cast<unsigned char>(line_[pos_])) != 0 ||
            line_[pos_] == '_' || line_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) return false;
    *out = std::string(line_.substr(start, pos_ - start));
    return true;
  }

  bool QuotedString(std::string* out) {
    SkipSpace();
    if (pos_ >= line_.size() || line_[pos_] != '"') return false;
    ++pos_;
    out->clear();
    while (pos_ < line_.size() && line_[pos_] != '"') {
      if (line_[pos_] == '\\' && pos_ + 1 < line_.size()) ++pos_;
      out->push_back(line_[pos_++]);
    }
    if (pos_ >= line_.size()) return false;  // Unterminated.
    ++pos_;
    return true;
  }

  bool AtEnd() {
    SkipSpace();
    return pos_ >= line_.size();
  }

 private:
  std::string_view line_;
  size_t pos_ = 0;
};

StatusOr<EditOp> ParseLine(std::string_view line, size_t line_no,
                           LabelTable* labels) {
  LineParser p(line);
  auto fail = [&](const std::string& what) {
    return Status::ParseError("edit script line " + std::to_string(line_no) +
                              ": " + what + ": " + std::string(line));
  };

  if (p.Literal("INS((")) {
    int node = 0, parent = 0, position = 0;
    std::string label, value;
    if (!p.Int(&node) || !p.Literal(",") || !p.Identifier(&label) ||
        !p.Literal(",") || !p.QuotedString(&value) || !p.Literal("),") ||
        !p.Int(&parent) || !p.Literal(",") || !p.Int(&position) ||
        !p.Literal(")") || !p.AtEnd()) {
      return fail("malformed INS");
    }
    if (node < 0) return fail("INS with negative node id");
    if (parent < 0) return fail("INS with negative parent id");
    if (node == parent) return fail("INS with itself as parent");
    if (position < 1) return fail("INS position must be >= 1");
    return EditOp::Insert(node, labels->Intern(label), std::move(value),
                          parent, position);
  }
  if (p.Literal("DEL(")) {
    int node = 0;
    if (!p.Int(&node) || !p.Literal(")") || !p.AtEnd()) {
      return fail("malformed DEL");
    }
    if (node < 0) return fail("DEL with negative node id");
    return EditOp::Delete(node);
  }
  if (p.Literal("UPD(")) {
    int node = 0;
    std::string value;
    if (!p.Int(&node) || !p.Literal(",") || !p.QuotedString(&value) ||
        !p.Literal(")") || !p.AtEnd()) {
      return fail("malformed UPD");
    }
    if (node < 0) return fail("UPD with negative node id");
    return EditOp::Update(node, std::move(value), 1.0);
  }
  if (p.Literal("MOV(")) {
    int node = 0, parent = 0, position = 0;
    if (!p.Int(&node) || !p.Literal(",") || !p.Int(&parent) ||
        !p.Literal(",") || !p.Int(&position) || !p.Literal(")") ||
        !p.AtEnd()) {
      return fail("malformed MOV");
    }
    if (node < 0) return fail("MOV with negative node id");
    if (parent < 0) return fail("MOV with negative parent id");
    if (node == parent) return fail("MOV with itself as parent");
    if (position < 1) return fail("MOV position must be >= 1");
    return EditOp::Move(node, parent, position);
  }
  return fail("unknown operation");
}

}  // namespace

std::string FormatEditScript(const EditScript& script,
                             const LabelTable& labels) {
  std::string out;
  for (const EditOp& op : script.ops()) {
    // Re-render with escaping (EditOp::ToString is for human display; this
    // is the machine round-trip format).
    EditOp escaped = op;
    escaped.value = EscapeValue(op.value);
    out += escaped.ToString(labels);
    out += "\n";
  }
  return out;
}

StatusOr<EditScript> ParseEditScript(std::string_view text,
                                     LabelTable* labels) {
  EditScript script;
  // Semantic validation across lines: a script that applies cleanly can
  // never insert the same node id twice (apply assigns ids densely), so a
  // duplicate is a malformed script and is rejected here with its line
  // number rather than as a confusing id-mismatch at apply time.
  std::unordered_set<NodeId> inserted_ids;
  size_t pos = 0;
  size_t line_no = 0;
  while (pos < text.size()) {
    size_t end = text.find('\n', pos);
    if (end == std::string_view::npos) end = text.size();
    std::string_view line = text.substr(pos, end - pos);
    pos = end + 1;
    ++line_no;
    // Trim and skip blanks/comments.
    size_t begin = 0;
    while (begin < line.size() &&
           std::isspace(static_cast<unsigned char>(line[begin]))) {
      ++begin;
    }
    line = line.substr(begin);
    if (line.empty() || line[0] == '#') continue;
    StatusOr<EditOp> op = ParseLine(line, line_no, labels);
    if (!op.ok()) return op.status();
    if (op->kind == EditOpKind::kInsert &&
        !inserted_ids.insert(op->node).second) {
      return Status::ParseError(
          "edit script line " + std::to_string(line_no) +
          ": duplicate INS id " + std::to_string(op->node) + ": " +
          std::string(line));
    }
    script.Append(std::move(*op));
  }
  return script;
}

}  // namespace treediff
