#include "core/script_io.h"

#include <cctype>
#include <string>

namespace treediff {

namespace {

/// Escapes a value for serialization: the inverse of the parser below.
std::string EscapeValue(const std::string& value) {
  std::string out;
  out.reserve(value.size());
  for (char c : value) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
  return out;
}

/// Cursor-based parser over one line.
class LineParser {
 public:
  explicit LineParser(std::string_view line) : line_(line) {}

  void SkipSpace() {
    while (pos_ < line_.size() &&
           std::isspace(static_cast<unsigned char>(line_[pos_]))) {
      ++pos_;
    }
  }

  bool Literal(std::string_view expected) {
    SkipSpace();
    if (line_.substr(pos_).substr(0, expected.size()) != expected) {
      return false;
    }
    pos_ += expected.size();
    return true;
  }

  bool Int(int* out) {
    SkipSpace();
    size_t start = pos_;
    if (pos_ < line_.size() && (line_[pos_] == '-' || line_[pos_] == '+')) {
      ++pos_;
    }
    while (pos_ < line_.size() &&
           std::isdigit(static_cast<unsigned char>(line_[pos_]))) {
      ++pos_;
    }
    if (pos_ == start) return false;
    *out = std::atoi(std::string(line_.substr(start, pos_ - start)).c_str());
    return true;
  }

  bool Identifier(std::string* out) {
    SkipSpace();
    size_t start = pos_;
    while (pos_ < line_.size() &&
           (std::isalnum(static_cast<unsigned char>(line_[pos_])) != 0 ||
            line_[pos_] == '_' || line_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) return false;
    *out = std::string(line_.substr(start, pos_ - start));
    return true;
  }

  bool QuotedString(std::string* out) {
    SkipSpace();
    if (pos_ >= line_.size() || line_[pos_] != '"') return false;
    ++pos_;
    out->clear();
    while (pos_ < line_.size() && line_[pos_] != '"') {
      if (line_[pos_] == '\\' && pos_ + 1 < line_.size()) ++pos_;
      out->push_back(line_[pos_++]);
    }
    if (pos_ >= line_.size()) return false;  // Unterminated.
    ++pos_;
    return true;
  }

  bool AtEnd() {
    SkipSpace();
    return pos_ >= line_.size();
  }

 private:
  std::string_view line_;
  size_t pos_ = 0;
};

StatusOr<EditOp> ParseLine(std::string_view line, LabelTable* labels) {
  LineParser p(line);
  auto fail = [&](const char* what) {
    return Status::ParseError(std::string(what) + " in edit-script line: " +
                              std::string(line));
  };

  if (p.Literal("INS((")) {
    int node = 0, parent = 0, position = 0;
    std::string label, value;
    if (!p.Int(&node) || !p.Literal(",") || !p.Identifier(&label) ||
        !p.Literal(",") || !p.QuotedString(&value) || !p.Literal("),") ||
        !p.Int(&parent) || !p.Literal(",") || !p.Int(&position) ||
        !p.Literal(")") || !p.AtEnd()) {
      return fail("malformed INS");
    }
    return EditOp::Insert(node, labels->Intern(label), std::move(value),
                          parent, position);
  }
  if (p.Literal("DEL(")) {
    int node = 0;
    if (!p.Int(&node) || !p.Literal(")") || !p.AtEnd()) {
      return fail("malformed DEL");
    }
    return EditOp::Delete(node);
  }
  if (p.Literal("UPD(")) {
    int node = 0;
    std::string value;
    if (!p.Int(&node) || !p.Literal(",") || !p.QuotedString(&value) ||
        !p.Literal(")") || !p.AtEnd()) {
      return fail("malformed UPD");
    }
    return EditOp::Update(node, std::move(value), 1.0);
  }
  if (p.Literal("MOV(")) {
    int node = 0, parent = 0, position = 0;
    if (!p.Int(&node) || !p.Literal(",") || !p.Int(&parent) ||
        !p.Literal(",") || !p.Int(&position) || !p.Literal(")") ||
        !p.AtEnd()) {
      return fail("malformed MOV");
    }
    return EditOp::Move(node, parent, position);
  }
  return fail("unknown operation");
}

}  // namespace

std::string FormatEditScript(const EditScript& script,
                             const LabelTable& labels) {
  std::string out;
  for (const EditOp& op : script.ops()) {
    // Re-render with escaping (EditOp::ToString is for human display; this
    // is the machine round-trip format).
    EditOp escaped = op;
    escaped.value = EscapeValue(op.value);
    out += escaped.ToString(labels);
    out += "\n";
  }
  return out;
}

StatusOr<EditScript> ParseEditScript(std::string_view text,
                                     LabelTable* labels) {
  EditScript script;
  size_t pos = 0;
  while (pos < text.size()) {
    size_t end = text.find('\n', pos);
    if (end == std::string_view::npos) end = text.size();
    std::string_view line = text.substr(pos, end - pos);
    pos = end + 1;
    // Trim and skip blanks/comments.
    size_t begin = 0;
    while (begin < line.size() &&
           std::isspace(static_cast<unsigned char>(line[begin]))) {
      ++begin;
    }
    line = line.substr(begin);
    if (line.empty() || line[0] == '#') continue;
    StatusOr<EditOp> op = ParseLine(line, labels);
    if (!op.ok()) return op.status();
    script.Append(std::move(*op));
  }
  return script;
}

}  // namespace treediff
