#include "core/keyed_match.h"

#include <cstdint>
#include <map>
#include <optional>
#include <string_view>
#include <tuple>
#include <unordered_map>
#include <utility>
#include <vector>

#include "core/share_map.h"
#include "lcs/lcs.h"
#include "tree/tree_index.h"

namespace treediff {

namespace {

/// Pre-order served from an attached TreeIndex when one exists, computed
/// otherwise. Standalone entry points (no DiffContext) go through this.
std::vector<NodeId> PreOrderOf(const Tree& t) {
  if (const TreeIndex* index = t.attached_index()) return index->PreOrder();
  return t.PreOrder();
}

/// Key space: (label, leaf-ness, key) -> node. Duplicate keys map to
/// kInvalidNode, voiding the uniqueness guarantee for that key.
using KeyIndex = std::map<std::tuple<LabelId, bool, std::string>, NodeId>;

KeyIndex IndexKeys(const Tree& t, const KeyFn& key_fn) {
  KeyIndex index;
  for (NodeId x : PreOrderOf(t)) {
    std::optional<std::string> key = key_fn(t, x);
    if (!key.has_value()) continue;
    auto slot = std::make_tuple(t.label(x), t.IsLeaf(x), std::move(*key));
    auto [it, inserted] = index.emplace(std::move(slot), x);
    if (!inserted) it->second = kInvalidNode;  // Duplicate: void the key.
  }
  return index;
}

}  // namespace

Matching ComputeKeyedMatch(const Tree& t1, const Tree& t2,
                           const KeyFn& key_fn, const Matching* seed) {
  Matching m = seed != nullptr ? *seed
                               : Matching(t1.id_bound(), t2.id_bound());
  KeyIndex index2 = IndexKeys(t2, key_fn);
  KeyIndex index1 = IndexKeys(t1, key_fn);
  for (const auto& [slot, x] : index1) {
    if (x == kInvalidNode) continue;  // Duplicate key in T1.
    auto it = index2.find(slot);
    if (it == index2.end() || it->second == kInvalidNode) continue;
    if (m.HasT1(x) || m.HasT2(it->second)) continue;  // Settled by the seed.
    m.Add(x, it->second);
  }
  return m;
}

Matching ComputeHybridMatch(const Tree& t1, const Tree& t2,
                            const KeyFn& key_fn,
                            const CriteriaEvaluator& eval,
                            const Matching* seed) {
  Matching m = ComputeKeyedMatch(t1, t2, key_fn, seed);

  // FastMatch over the remainder: per-(label, kind) chains of unmatched
  // nodes, LCS first, then the quadratic fallback (Figure 11 restricted to
  // the keyless part).
  std::map<std::pair<LabelId, bool>,
           std::pair<std::vector<NodeId>, std::vector<NodeId>>>
      chains;
  for (NodeId x : eval.index1().PreOrder()) {
    if (!m.HasT1(x)) {
      chains[{t1.label(x), t1.IsLeaf(x)}].first.push_back(x);
    }
  }
  for (NodeId y : eval.index2().PreOrder()) {
    if (!m.HasT2(y)) {
      chains[{t2.label(y), t2.IsLeaf(y)}].second.push_back(y);
    }
  }

  // Leaf chains first so the internal criterion sees all leaf matches.
  for (int pass = 0; pass < 2; ++pass) {
    const bool leaves = pass == 0;
    for (auto& [slot, chain] : chains) {
      if (slot.second != leaves) continue;
      auto& s1 = chain.first;
      auto& s2 = chain.second;
      auto equal = [&](NodeId x, NodeId y) {
        // Same fast-forward as FastMatch: after a budget trip the matching
        // is discarded, so answer "equal" to let the in-flight LCS finish
        // in linear time (pairs stay label-legal within a chain).
        if (!BudgetOk(eval.budget())) return true;
        return leaves ? eval.LeafEqual(x, y) : eval.InternalEqual(x, y, m);
      };
      std::vector<LcsPair> lcs =
          Lcs(static_cast<int>(s1.size()), static_cast<int>(s2.size()),
              [&](int i, int j) {
                return equal(s1[static_cast<size_t>(i)],
                             s2[static_cast<size_t>(j)]);
              });
      for (const LcsPair& p : lcs) {
        m.Add(s1[static_cast<size_t>(p.a_index)],
              s2[static_cast<size_t>(p.b_index)]);
      }
      for (NodeId x : s1) {
        if (!BudgetCheck(eval.budget())) break;
        if (m.HasT1(x)) continue;
        for (NodeId y : s2) {
          if (!BudgetCheck(eval.budget())) break;
          if (m.HasT2(y)) continue;
          if (equal(x, y)) {
            m.Add(x, y);
            break;
          }
        }
      }
    }
  }
  return m;
}

Matching ComputeStructuralMatch(const Tree& t1, const Tree& t2,
                                const Matching* seed) {
  // SubtreesIdentical / MatchSubtreePair live in core/share_map.h — the
  // same collision guard and wholesale settling the share-map pre-pass uses.
  Matching m = seed != nullptr ? *seed
                               : Matching(t1.id_bound(), t2.id_bound());
  if (t1.root() == kInvalidNode || t2.root() == kInvalidNode) return m;

  // Subtree fingerprints come from the trees' indexes — the DiffContext's
  // when running in the pipeline, short-lived local ones standalone.
  std::optional<TreeIndex> local1;
  std::optional<TreeIndex> local2;
  const TreeIndex* i1 = t1.attached_index();
  if (i1 == nullptr) i1 = &local1.emplace(t1);
  const TreeIndex* i2 = t2.attached_index();
  if (i2 == nullptr) i2 = &local2.emplace(t2);

  // Pass 1: greedy identical-subtree matching in document order. A root may
  // only pair with the other root, so the root pairing GenerateEditScript
  // requires is never usurped by some interior twin.
  std::unordered_map<uint64_t, std::vector<NodeId>> by_hash;
  for (NodeId y : i2->PreOrder()) {
    by_hash[i2->SubtreeHash(y)].push_back(y);
  }
  std::vector<NodeId> stack = {t1.root()};
  while (!stack.empty()) {
    const NodeId x = stack.back();
    stack.pop_back();
    // A seed pair settles its whole subtree (the pre-pass matches
    // wholesale), so a settled x needs neither probing nor descent.
    bool matched = m.HasT1(x);
    auto it = matched ? by_hash.end() : by_hash.find(i1->SubtreeHash(x));
    if (it != by_hash.end()) {
      for (NodeId y : it->second) {
        if (m.HasT2(y)) continue;
        if ((x == t1.root()) != (y == t2.root())) continue;
        if (!SubtreesIdentical(t1, x, t2, y)) continue;
        MatchSubtreePair(t1, x, t2, y, &m);
        matched = true;
        break;
      }
    }
    if (!matched) {
      const auto& kids = t1.children(x);
      for (auto kit = kids.rbegin(); kit != kids.rend(); ++kit) {
        stack.push_back(*kit);
      }
    }
  }

  // GenerateEditScript needs the roots matched to each other.
  if (!m.HasT1(t1.root()) && !m.HasT2(t2.root()) &&
      t1.label(t1.root()) == t2.label(t2.root())) {
    m.Add(t1.root(), t2.root());
  }

  // Pass 2: leftover leaves by exact (label, value), document order.
  // Pass 3: leftover internal nodes by label alone, document order.
  std::map<std::pair<LabelId, std::string>, std::vector<NodeId>> leaves2;
  std::map<LabelId, std::vector<NodeId>> internal2;
  for (NodeId y : i2->PreOrder()) {
    if (m.HasT2(y) || y == t2.root()) continue;
    if (t2.IsLeaf(y)) {
      leaves2[{t2.label(y), t2.value(y)}].push_back(y);
    } else {
      internal2[t2.label(y)].push_back(y);
    }
  }
  auto take_first_free = [&m](std::vector<NodeId>& bucket) {
    for (NodeId y : bucket) {
      if (!m.HasT2(y)) return y;
    }
    return kInvalidNode;
  };
  for (NodeId x : i1->PreOrder()) {
    if (m.HasT1(x) || x == t1.root()) continue;
    NodeId y = kInvalidNode;
    if (t1.IsLeaf(x)) {
      auto it = leaves2.find({t1.label(x), t1.value(x)});
      if (it != leaves2.end()) y = take_first_free(it->second);
    } else {
      auto it = internal2.find(t1.label(x));
      if (it != internal2.end()) y = take_first_free(it->second);
    }
    if (y != kInvalidNode) m.Add(x, y);
  }
  return m;
}

std::optional<std::string> ValuePrefixKey(const Tree& tree, NodeId node) {
  const std::string& value = tree.value(node);
  constexpr std::string_view kPrefix = "key=";
  if (value.size() <= kPrefix.size() ||
      std::string_view(value).substr(0, kPrefix.size()) != kPrefix) {
    return std::nullopt;
  }
  const size_t end = value.find(' ', kPrefix.size());
  return value.substr(kPrefix.size(), end == std::string::npos
                                          ? std::string::npos
                                          : end - kPrefix.size());
}

}  // namespace treediff
