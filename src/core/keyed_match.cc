#include "core/keyed_match.h"

#include <map>
#include <string_view>
#include <tuple>
#include <unordered_map>
#include <utility>
#include <vector>

#include "lcs/lcs.h"

namespace treediff {

namespace {

/// Key space: (label, leaf-ness, key) -> node. Duplicate keys map to
/// kInvalidNode, voiding the uniqueness guarantee for that key.
using KeyIndex = std::map<std::tuple<LabelId, bool, std::string>, NodeId>;

KeyIndex IndexKeys(const Tree& t, const KeyFn& key_fn) {
  KeyIndex index;
  for (NodeId x : t.PreOrder()) {
    std::optional<std::string> key = key_fn(t, x);
    if (!key.has_value()) continue;
    auto slot = std::make_tuple(t.label(x), t.IsLeaf(x), std::move(*key));
    auto [it, inserted] = index.emplace(std::move(slot), x);
    if (!inserted) it->second = kInvalidNode;  // Duplicate: void the key.
  }
  return index;
}

}  // namespace

Matching ComputeKeyedMatch(const Tree& t1, const Tree& t2,
                           const KeyFn& key_fn) {
  Matching m(t1.id_bound(), t2.id_bound());
  KeyIndex index2 = IndexKeys(t2, key_fn);
  KeyIndex index1 = IndexKeys(t1, key_fn);
  for (const auto& [slot, x] : index1) {
    if (x == kInvalidNode) continue;  // Duplicate key in T1.
    auto it = index2.find(slot);
    if (it == index2.end() || it->second == kInvalidNode) continue;
    m.Add(x, it->second);
  }
  return m;
}

Matching ComputeHybridMatch(const Tree& t1, const Tree& t2,
                            const KeyFn& key_fn,
                            const CriteriaEvaluator& eval) {
  Matching m = ComputeKeyedMatch(t1, t2, key_fn);

  // FastMatch over the remainder: per-(label, kind) chains of unmatched
  // nodes, LCS first, then the quadratic fallback (Figure 11 restricted to
  // the keyless part).
  std::map<std::pair<LabelId, bool>,
           std::pair<std::vector<NodeId>, std::vector<NodeId>>>
      chains;
  for (NodeId x : t1.PreOrder()) {
    if (!m.HasT1(x)) {
      chains[{t1.label(x), t1.IsLeaf(x)}].first.push_back(x);
    }
  }
  for (NodeId y : t2.PreOrder()) {
    if (!m.HasT2(y)) {
      chains[{t2.label(y), t2.IsLeaf(y)}].second.push_back(y);
    }
  }

  // Leaf chains first so the internal criterion sees all leaf matches.
  for (int pass = 0; pass < 2; ++pass) {
    const bool leaves = pass == 0;
    for (auto& [slot, chain] : chains) {
      if (slot.second != leaves) continue;
      auto& s1 = chain.first;
      auto& s2 = chain.second;
      auto equal = [&](NodeId x, NodeId y) {
        return leaves ? eval.LeafEqual(x, y) : eval.InternalEqual(x, y, m);
      };
      std::vector<LcsPair> lcs =
          Lcs(static_cast<int>(s1.size()), static_cast<int>(s2.size()),
              [&](int i, int j) {
                return equal(s1[static_cast<size_t>(i)],
                             s2[static_cast<size_t>(j)]);
              });
      for (const LcsPair& p : lcs) {
        m.Add(s1[static_cast<size_t>(p.a_index)],
              s2[static_cast<size_t>(p.b_index)]);
      }
      for (NodeId x : s1) {
        if (m.HasT1(x)) continue;
        for (NodeId y : s2) {
          if (m.HasT2(y)) continue;
          if (equal(x, y)) {
            m.Add(x, y);
            break;
          }
        }
      }
    }
  }
  return m;
}

std::optional<std::string> ValuePrefixKey(const Tree& tree, NodeId node) {
  const std::string& value = tree.value(node);
  constexpr std::string_view kPrefix = "key=";
  if (value.size() <= kPrefix.size() ||
      std::string_view(value).substr(0, kPrefix.size()) != kPrefix) {
    return std::nullopt;
  }
  const size_t end = value.find(' ', kPrefix.size());
  return value.substr(kPrefix.size(), end == std::string::npos
                                          ? std::string::npos
                                          : end - kPrefix.size());
}

}  // namespace treediff
