#ifndef TREEDIFF_CORE_DIFF_H_
#define TREEDIFF_CORE_DIFF_H_

#include <string>

#include "core/compare.h"
#include "core/cost_model.h"
#include "core/delta_tree.h"
#include "core/diff_context.h"
#include "core/edit_script.h"
#include "core/edit_script_gen.h"
#include "core/matching.h"
#include "tree/schema.h"
#include "tree/tree.h"
#include "util/budget.h"
#include "util/status.h"

namespace treediff {

/// How a DiffTrees call spent its budget and where it landed on the ladder.
/// (DiffRung, DiffRungName, and DiffOptions live in diff_context.h.)
struct DiffReport {
  /// The rung the caller asked for (DiffOptions::start_rung).
  DiffRung requested_rung = DiffRung::kFastMatch;

  /// The rung that produced the returned script.
  DiffRung rung = DiffRung::kFastMatch;

  /// True if `rung` is below `requested_rung` (the budget forced a step
  /// down).
  bool degraded = false;

  /// kOk if the budget never exhausted; otherwise kResourceExhausted or
  /// kDeadlineExceeded plus the limit that tripped ("deadline", "node cap",
  /// "comparison cap", "arena cap").
  Code exhaustion_code = Code::kOk;
  std::string exhaustion_detail;

  /// Budget counters at return. With no budget set, nodes/comparisons are
  /// estimated from the pipeline's own instrumentation and peak_arena_bytes
  /// is 0 (precise tracking needs a Budget).
  size_t nodes_visited = 0;
  size_t comparisons = 0;
  size_t peak_arena_bytes = 0;
  double elapsed_seconds = 0.0;

  /// Comparator tokenization-cache traffic (WordLcsComparator dedups token
  /// vectors by 64-bit value hash; see ValueComparator::cache_stats). Both
  /// zero when the caller supplied a comparator without cache accounting.
  /// Counted per DiffTrees call: a comparator reused across runs reports
  /// only this run's traffic, not the cumulative totals.
  size_t tokenize_cache_hits = 0;
  size_t tokenize_cache_misses = 0;

  /// Share-map pre-pass counters (DiffOptions::share_mode != kOff): twin
  /// lookups issued, subtrees (and nodes) settled wholesale before the
  /// matcher ladder ran, and fingerprint collisions rejected by the
  /// byte-wise verification.
  size_t share_lookups = 0;
  size_t prune_settled_subtrees = 0;
  size_t prune_settled_nodes = 0;
  size_t prune_collisions = 0;

  /// True if phase 1 was skipped because the caller supplied
  /// DiffOptions::reuse_matching (service-level chain reuse).
  bool matching_reused = false;
};

/// Counters and measures reported by DiffTrees; these are the quantities the
/// Section 8 evaluation plots.
struct DiffStats {
  /// Leaf compare() invocations during matching (r1 in Section 8).
  size_t compare_calls = 0;

  /// Partner checks during matching (r2 in Section 8).
  size_t partner_checks = 0;

  /// Pairs repaired by the post-processing pass.
  size_t post_process_rematched = 0;

  /// Pairs added by the context-completion pass.
  size_t context_completed = 0;

  size_t inserts = 0;
  size_t deletes = 0;
  size_t updates = 0;
  size_t moves = 0;
  size_t intra_parent_moves = 0;
  size_t inter_parent_moves = 0;

  /// Weighted edit distance e (Section 5.3) of the generated script.
  size_t weighted_edit_distance = 0;

  /// Unweighted edit distance d: operations in the generated script.
  size_t unweighted_edit_distance = 0;

  /// Total script cost under the Section 3.2 cost model.
  double script_cost = 0.0;

  /// Wall-clock seconds spent in matching and script generation.
  double match_seconds = 0.0;
  double script_seconds = 0.0;
};

/// Result of the end-to-end pipeline.
struct DiffResult {
  /// The "good matching" over original t1/t2 ids (input to EditScript).
  Matching matching;

  /// The minimum-cost conforming edit script.
  EditScript script;

  DiffStats stats;

  /// Ladder rung taken and resource counters (see DiffReport).
  DiffReport report;
};

/// End-to-end change detection (the paper's two-phase method): computes a
/// good matching between `t1` (old) and `t2` (new) under the criteria in
/// `options`, then generates a minimum-cost conforming edit script.
///
/// Internally builds one DiffContext — a TreeIndex per tree plus the
/// resolved comparator and criteria evaluator — and dispatches matching
/// through the Matcher registry (matcher.h), stepping down the DiffRung
/// ladder on budget exhaustion.
///
/// The trees must share one LabelTable. If the roots do not match under the
/// criteria but carry equal labels they are matched anyway (the standard
/// device for document trees, whose roots always correspond); trees with
/// differently-labeled roots must be wrapped (Tree::WrapRoot) by the caller.
StatusOr<DiffResult> DiffTrees(const Tree& t1, const Tree& t2,
                               const DiffOptions& options = {});

/// Convenience: builds the delta tree for a DiffResult (Section 6).
StatusOr<DeltaTree> BuildDeltaTree(const Tree& t1, const Tree& t2,
                                   const DiffResult& result);

}  // namespace treediff

#endif  // TREEDIFF_CORE_DIFF_H_
