#ifndef TREEDIFF_CORE_DIFF_H_
#define TREEDIFF_CORE_DIFF_H_

#include <memory>
#include <string>

#include "core/compare.h"
#include "core/cost_model.h"
#include "core/criteria.h"
#include "core/delta_tree.h"
#include "core/edit_script.h"
#include "core/edit_script_gen.h"
#include "core/matching.h"
#include "tree/schema.h"
#include "tree/tree.h"
#include "util/budget.h"
#include "util/status.h"

namespace treediff {

/// The rungs of the degradation ladder, best first. DiffTrees starts at
/// DiffOptions::start_rung and steps DOWN whenever the budget exhausts, so a
/// budgeted call always returns OK with *some* conforming script rather than
/// failing on a large or adversarial input:
///
///  * kOptimalZs — the Zhang-Shasha optimal baseline (Section 2). Opt-in:
///    O(n^2 log^2 n) time and an O(n^2) DP table. Skipped up front when the
///    budget's explicit caps cannot possibly fit its cost.
///  * kFastMatch — the paper's two-phase method: the criteria-based matcher
///    (FastMatch, or Match when use_fast_match = false) + EditScript. The
///    default rung; with no budget this is exactly the pre-budget pipeline.
///  * kKeyedStructural — ComputeStructuralMatch: exact-subtree hashing plus
///    label/value bucketing, O(n log n), no value comparisons. Runs without
///    consulting the (already exhausted) budget.
///  * kTopLevelReplace — root-only matching: the script deletes every old
///    node and inserts every new one. O(n), the rung of last resort.
enum class DiffRung {
  kOptimalZs = 0,
  kFastMatch = 1,
  kKeyedStructural = 2,
  kTopLevelReplace = 3,
};

/// "OptimalZs", "FastMatch", "KeyedStructural", or "TopLevelReplace".
const char* DiffRungName(DiffRung rung);

/// How a DiffTrees call spent its budget and where it landed on the ladder.
struct DiffReport {
  /// The rung the caller asked for (DiffOptions::start_rung).
  DiffRung requested_rung = DiffRung::kFastMatch;

  /// The rung that produced the returned script.
  DiffRung rung = DiffRung::kFastMatch;

  /// True if `rung` is below `requested_rung` (the budget forced a step
  /// down).
  bool degraded = false;

  /// kOk if the budget never exhausted; otherwise kResourceExhausted or
  /// kDeadlineExceeded plus the limit that tripped ("deadline", "node cap",
  /// "comparison cap", "arena cap").
  Code exhaustion_code = Code::kOk;
  std::string exhaustion_detail;

  /// Budget counters at return. With no budget set, nodes/comparisons are
  /// estimated from the pipeline's own instrumentation and peak_arena_bytes
  /// is 0 (precise tracking needs a Budget).
  size_t nodes_visited = 0;
  size_t comparisons = 0;
  size_t peak_arena_bytes = 0;
  double elapsed_seconds = 0.0;
};

/// Options controlling the end-to-end change-detection pipeline.
struct DiffOptions {
  /// Matching Criterion 1 threshold f (leaves; 0 <= f <= 1).
  double leaf_threshold_f = 0.5;

  /// Matching Criterion 2 threshold t (internal nodes; 1/2 <= t <= 1). The
  /// paper's "match threshold" parameter, swept in Table 1.
  double internal_threshold_t = 0.6;

  /// Use Algorithm FastMatch (Section 5.3); when false, the simple Algorithm
  /// Match (Section 5.2) is used instead.
  bool use_fast_match = true;

  /// Run the Section 8 post-processing pass that repairs mismatches caused
  /// by Matching Criterion 3 violations.
  bool post_process = true;

  /// Run the context-completion pass (see CompleteContextMatching): under
  /// matched parents, pair leftover same-label children in order so short
  /// data values ("<price>12</price>" -> "<price>10</price>") surface as
  /// updates rather than delete+insert. Recommended for data-bearing XML;
  /// off by default to keep the paper's document behaviour.
  bool complete_context = false;

  /// Comparator for leaf values; when null, a WordLcsComparator owned by the
  /// call is used (the LaDiff sentence metric, Section 7).
  const ValueComparator* comparator = nullptr;

  /// Optional label schema; when set, FastMatch processes label chains in
  /// ascending rank order (deterministic and cache-friendly for documents).
  const LabelSchema* schema = nullptr;

  /// Optional general cost model (Section 3.2): prices inserts, deletes,
  /// and moves per node; null = the paper's unit costs. Affects the script
  /// cost accounting, not which operations are chosen.
  const CostModel* cost_model = nullptr;

  /// The Section 9 A(k) optimality/efficiency knob: bound on candidates
  /// examined per node in FastMatch's quadratic fallback (0 = exhaustive).
  /// Smaller values cap the worst case; out-of-order matches beyond the
  /// window are then represented as delete+insert instead of moves.
  int fallback_limit_k = 0;

  /// Optional resource budget (deadline / node / comparison / arena caps).
  /// Null means unlimited — the exact pre-budget pipeline, bit-identical
  /// outputs. Non-null makes DiffTrees degrade down the DiffRung ladder on
  /// exhaustion instead of running unbounded; the taken rung and counters
  /// are returned in DiffResult::report. The budget must outlive the call
  /// and must not be shared with a concurrent pipeline invocation.
  const Budget* budget = nullptr;

  /// Where on the ladder to start. The default, kFastMatch, is the paper's
  /// pipeline; kOptimalZs buys the optimal-baseline script when the budget
  /// affords it; the lower rungs force a cheap match up front.
  DiffRung start_rung = DiffRung::kFastMatch;
};

/// Counters and measures reported by DiffTrees; these are the quantities the
/// Section 8 evaluation plots.
struct DiffStats {
  /// Leaf compare() invocations during matching (r1 in Section 8).
  size_t compare_calls = 0;

  /// Partner checks during matching (r2 in Section 8).
  size_t partner_checks = 0;

  /// Pairs repaired by the post-processing pass.
  size_t post_process_rematched = 0;

  /// Pairs added by the context-completion pass.
  size_t context_completed = 0;

  size_t inserts = 0;
  size_t deletes = 0;
  size_t updates = 0;
  size_t moves = 0;
  size_t intra_parent_moves = 0;
  size_t inter_parent_moves = 0;

  /// Weighted edit distance e (Section 5.3) of the generated script.
  size_t weighted_edit_distance = 0;

  /// Unweighted edit distance d: operations in the generated script.
  size_t unweighted_edit_distance = 0;

  /// Total script cost under the Section 3.2 cost model.
  double script_cost = 0.0;

  /// Wall-clock seconds spent in matching and script generation.
  double match_seconds = 0.0;
  double script_seconds = 0.0;
};

/// Result of the end-to-end pipeline.
struct DiffResult {
  /// The "good matching" over original t1/t2 ids (input to EditScript).
  Matching matching;

  /// The minimum-cost conforming edit script.
  EditScript script;

  DiffStats stats;

  /// Ladder rung taken and resource counters (see DiffReport).
  DiffReport report;
};

/// End-to-end change detection (the paper's two-phase method): computes a
/// good matching between `t1` (old) and `t2` (new) under the criteria in
/// `options`, then generates a minimum-cost conforming edit script.
///
/// The trees must share one LabelTable. If the roots do not match under the
/// criteria but carry equal labels they are matched anyway (the standard
/// device for document trees, whose roots always correspond); trees with
/// differently-labeled roots must be wrapped (Tree::WrapRoot) by the caller.
StatusOr<DiffResult> DiffTrees(const Tree& t1, const Tree& t2,
                               const DiffOptions& options = {});

/// Convenience: builds the delta tree for a DiffResult (Section 6).
StatusOr<DeltaTree> BuildDeltaTree(const Tree& t1, const Tree& t2,
                                   const DiffResult& result);

}  // namespace treediff

#endif  // TREEDIFF_CORE_DIFF_H_
