#ifndef TREEDIFF_CORE_MATCHING_H_
#define TREEDIFF_CORE_MATCHING_H_

#include <cstddef>
#include <utility>
#include <vector>

#include "tree/tree.h"

namespace treediff {

/// A one-to-one (partial) matching between the node identifiers of an old
/// tree T1 and a new tree T2 (Section 3.1). Stored as two dense partner
/// arrays for O(1) lookups in both directions. The T1 side can grow, because
/// Algorithm EditScript inserts new nodes into the working copy of T1 and
/// extends the matching to a total one.
class Matching {
 public:
  /// Creates an empty matching able to hold partners for T1 ids in
  /// [0, t1_id_bound) and T2 ids in [0, t2_id_bound).
  Matching(size_t t1_id_bound, size_t t2_id_bound);

  /// Records the pair (x, y), x in T1 and y in T2. Both must be currently
  /// unmatched (enforced with assert in debug builds).
  void Add(NodeId x, NodeId y);

  /// Removes the pair (x, y); it must be present.
  void Remove(NodeId x, NodeId y);

  bool HasT1(NodeId x) const {
    return PartnerOfT1(x) != kInvalidNode;
  }
  bool HasT2(NodeId y) const {
    return PartnerOfT2(y) != kInvalidNode;
  }

  /// Partner of T1 node `x` in T2, or kInvalidNode.
  NodeId PartnerOfT1(NodeId x) const {
    if (x < 0 || static_cast<size_t>(x) >= t1_to_t2_.size()) {
      return kInvalidNode;
    }
    return t1_to_t2_[static_cast<size_t>(x)];
  }

  /// Partner of T2 node `y` in T1, or kInvalidNode.
  NodeId PartnerOfT2(NodeId y) const {
    if (y < 0 || static_cast<size_t>(y) >= t2_to_t1_.size()) {
      return kInvalidNode;
    }
    return t2_to_t1_[static_cast<size_t>(y)];
  }

  /// True if (x, y) is in the matching.
  bool Contains(NodeId x, NodeId y) const { return PartnerOfT1(x) == y && y != kInvalidNode; }

  /// Number of matched pairs.
  size_t size() const { return size_; }

  /// Grows the T1 partner array to cover ids up to `bound` (used when the
  /// working tree gains inserted nodes).
  void EnsureT1Bound(size_t bound);

  /// All pairs (x, y) in ascending order of x.
  std::vector<std::pair<NodeId, NodeId>> Pairs() const;

 private:
  std::vector<NodeId> t1_to_t2_;
  std::vector<NodeId> t2_to_t1_;
  size_t size_ = 0;
};

}  // namespace treediff

#endif  // TREEDIFF_CORE_MATCHING_H_
