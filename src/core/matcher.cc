#include "core/matcher.h"

#include <utility>

#include "core/fast_match.h"
#include "core/keyed_match.h"
#include "core/match.h"
#include "zs/zhang_shasha.h"

namespace treediff {

Matching RootOnlyMatching(const Tree& t1, const Tree& t2) {
  Matching m(t1.id_bound(), t2.id_bound());
  if (t1.label(t1.root()) == t2.label(t2.root())) {
    m.Add(t1.root(), t2.root());
  }
  return m;
}

namespace {

/// kOptimalZs: the Zhang-Shasha optimal baseline (Section 2), fed the
/// context's postorder indexes. Declines when the budget's explicit caps
/// cannot fit the DP table or the solver exhausts mid-run.
class ZsMatcher final : public Matcher {
 public:
  MatchResult Run(const DiffContext& ctx,
                  const Matching& seed) const override {
    const Tree& t1 = ctx.t1();
    const Tree& t2 = ctx.t2();
    const Budget* budget = ctx.budget();

    // Pre-flight: the ZS DP table is (n1+1)x(n2+1) doubles and the solver
    // visits every node; skip the rung outright when the explicit caps
    // cannot fit that, instead of burning deadline on a doomed start.
    const size_t n1 = t1.size();
    const size_t n2 = t2.size();
    const size_t table_bytes = (n1 + 1) * (n2 + 1) * sizeof(double);
    if (budget != nullptr &&
        !(BudgetOk(budget) && budget->CouldAfford(n1 + n2, 0, table_bytes))) {
      return {};
    }

    ZsOptions zs_options;
    zs_options.budget = budget;
    zs_options.index1 = &ctx.index1();
    zs_options.index2 = &ctx.index2();
    ZsResult zs = ZhangShasha(t1, t2, zs_options);
    if (!BudgetOk(budget)) return {};

    // A ZS mapping may pair nodes with different labels (relabels); our
    // edit model never relabels, so keep only the label-equal pairs. The
    // seed's pre-matched pairs take precedence: ZS pairs touching a settled
    // node are dropped rather than letting the optimal rung un-settle a
    // verified identical region.
    Matching m = seed;
    for (const auto& [x, y] : zs.mapping) {
      if (m.HasT1(x) || m.HasT2(y)) continue;
      if (t1.label(x) == t2.label(y)) m.Add(x, y);
    }
    return {std::move(m)};
  }

  DiffRung rung() const override { return DiffRung::kOptimalZs; }
};

/// kFastMatch: the paper's criteria-based matcher — Algorithm FastMatch
/// (Section 5.3), or Algorithm Match (Section 5.2) when
/// DiffOptions::use_fast_match is false. Declines when the budget is
/// already exhausted or trips mid-run (a partial matching is discarded).
class CriteriaMatcher final : public Matcher {
 public:
  MatchResult Run(const DiffContext& ctx,
                  const Matching& seed) const override {
    const Budget* budget = ctx.budget();
    if (!BudgetOk(budget)) return {};
    const DiffOptions& options = ctx.options();
    Matching m = options.use_fast_match
                     ? ComputeFastMatch(ctx.t1(), ctx.t2(), ctx.evaluator(),
                                        options.schema,
                                        options.fallback_limit_k, &seed)
                     : ComputeMatch(ctx.t1(), ctx.t2(), ctx.evaluator(),
                                    &seed);
    if (!BudgetOk(budget)) return {};
    return {std::move(m)};
  }

  DiffRung rung() const override { return DiffRung::kFastMatch; }
};

/// kKeyedStructural: exact-subtree fingerprint matching plus label/value
/// bucketing, O(n log n), no value comparisons. Never declines — it runs
/// without consulting the (typically already exhausted) budget; that is the
/// degradation contract: bounded work instead of an error.
class StructuralMatcher final : public Matcher {
 public:
  MatchResult Run(const DiffContext& ctx,
                  const Matching& seed) const override {
    return {ComputeStructuralMatch(ctx.t1(), ctx.t2(), &seed)};
  }

  DiffRung rung() const override { return DiffRung::kKeyedStructural; }
};

/// kTopLevelReplace: the rung of last resort, O(n). Never declines.
class TopLevelMatcher final : public Matcher {
 public:
  MatchResult Run(const DiffContext& ctx,
                  const Matching& seed) const override {
    const Tree& t1 = ctx.t1();
    const Tree& t2 = ctx.t2();
    // Pre-matched regions survive even the last rung: the script keeps the
    // settled subtrees (as moves at worst) instead of replaying them as
    // delete+insert. With an empty seed this is exactly RootOnlyMatching.
    Matching m = seed;
    if (!m.HasT1(t1.root()) && !m.HasT2(t2.root()) &&
        t1.label(t1.root()) == t2.label(t2.root())) {
      m.Add(t1.root(), t2.root());
    }
    return {std::move(m)};
  }

  DiffRung rung() const override { return DiffRung::kTopLevelReplace; }
};

}  // namespace

const Matcher& MatcherForRung(DiffRung rung) {
  static const ZsMatcher zs;
  static const CriteriaMatcher criteria;
  static const StructuralMatcher structural;
  static const TopLevelMatcher top_level;
  switch (rung) {
    case DiffRung::kOptimalZs:
      return zs;
    case DiffRung::kFastMatch:
      return criteria;
    case DiffRung::kKeyedStructural:
      return structural;
    case DiffRung::kTopLevelReplace:
      return top_level;
  }
  return top_level;
}

}  // namespace treediff
