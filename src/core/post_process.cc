#include "core/post_process.h"

#include <deque>
#include <map>
#include <utility>
#include <vector>

namespace treediff {

namespace {

bool Equal(const Tree& t1, NodeId c, const Tree& t2, NodeId cc,
           const CriteriaEvaluator& eval, const Matching& m) {
  if (t1.label(c) != t2.label(cc)) return false;
  if (t1.IsLeaf(c) != t2.IsLeaf(cc)) return false;
  return t1.IsLeaf(c) ? eval.LeafEqual(c, cc)
                      : eval.InternalEqual(c, cc, m);
}

}  // namespace

size_t PostProcessMatching(const Tree& t1, const Tree& t2,
                           const CriteriaEvaluator& eval,
                           Matching* matching) {
  size_t rematched = 0;
  // Top-down (pre-order) so that repaired parents guide their children.
  for (NodeId x : t1.PreOrder()) {
    const NodeId y = matching->PartnerOfT1(x);
    if (y == kInvalidNode) continue;
    for (NodeId c : t1.children(x)) {
      const NodeId c_partner = matching->PartnerOfT1(c);
      if (c_partner == kInvalidNode || t2.parent(c_partner) == y) continue;
      // c is matched across parents; look for a sibling slot under y that c
      // could take instead.
      for (NodeId cc : t2.children(y)) {
        const NodeId cc_partner = matching->PartnerOfT2(cc);
        if (cc_partner == c) continue;
        if (!Equal(t1, c, t2, cc, eval, *matching)) continue;
        if (cc_partner == kInvalidNode) {
          // Simple repair: take the free slot, releasing c's old partner.
          matching->Remove(c, c_partner);
          matching->Add(c, cc);
          ++rematched;
          break;
        }
        // Occupied slot: repair only if the displaced partner fits c's old
        // slot equally well — a swap, which unwinds the symmetric
        // cross-matches near-duplicate leaves cause (Section 8).
        if (t2.parent(c_partner) != y &&
            Equal(t1, cc_partner, t2, c_partner, eval, *matching)) {
          matching->Remove(c, c_partner);
          matching->Remove(cc_partner, cc);
          matching->Add(c, cc);
          matching->Add(cc_partner, c_partner);
          ++rematched;
          break;
        }
      }
    }
  }
  return rematched;
}

size_t CompleteContextMatching(const Tree& t1, const Tree& t2,
                               Matching* matching) {
  size_t added = 0;
  // Worklist of matched pairs whose children should be reconciled; newly
  // created pairs are appended so the completion cascades downward.
  std::deque<std::pair<NodeId, NodeId>> queue;
  for (const auto& [x, y] : matching->Pairs()) queue.emplace_back(x, y);

  while (!queue.empty()) {
    const auto [x, y] = queue.front();
    queue.pop_front();
    // Group unmatched children by (label, kind), preserving document order.
    std::map<std::pair<LabelId, bool>,
             std::pair<std::vector<NodeId>, std::vector<NodeId>>>
        groups;
    for (NodeId c : t1.children(x)) {
      if (!matching->HasT1(c)) {
        groups[{t1.label(c), t1.IsLeaf(c)}].first.push_back(c);
      }
    }
    for (NodeId c : t2.children(y)) {
      if (!matching->HasT2(c)) {
        groups[{t2.label(c), t2.IsLeaf(c)}].second.push_back(c);
      }
    }
    for (const auto& [slot, pair] : groups) {
      const size_t n = std::min(pair.first.size(), pair.second.size());
      for (size_t i = 0; i < n; ++i) {
        matching->Add(pair.first[i], pair.second[i]);
        ++added;
        queue.emplace_back(pair.first[i], pair.second[i]);
      }
    }
  }
  return added;
}

}  // namespace treediff
