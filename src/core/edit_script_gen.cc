#include "core/edit_script_gen.h"

#include <cassert>
#include <vector>

#include "lcs/lcs.h"
#include "tree/tree_index.h"

namespace treediff {

namespace {

/// The working state of Algorithm EditScript: `work` is the mutating copy of
/// the old tree; p1/p2 are the growing total matching M'; in_order marks are
/// the alignment bookkeeping of Figure 9. `work_index_` rides along on the
/// working tree: its eagerly-patched scalar tier serves the O(1) ChildIndex
/// lookups behind FindPos and the O(1) subtree leaf counts behind the
/// weighted edit distance, and its (lazily rebuilt) order tier supplies the
/// delete-phase postorder snapshot.
class ScriptGenerator {
 public:
  ScriptGenerator(const Tree& t1, const Tree& t2, const Matching& matching,
                  const ValueComparator* cmp, bool lcs_align,
                  const CostModel* costs, const Budget* budget,
                  const std::vector<std::pair<NodeId, NodeId>>* settled)
      : t2_(t2),
        work_(t1.Clone()),
        work_index_(work_),
        cmp_(cmp),
        costs_(costs),
        budget_(budget),
        lcs_align_(lcs_align),
        p1_(t1.id_bound(), kInvalidNode),
        p2_(t2.id_bound(), kInvalidNode),
        in_order1_(t1.id_bound(), 0),
        in_order2_(t2.id_bound(), 0) {
    for (const auto& [x, y] : matching.Pairs()) {
      p1_[static_cast<size_t>(x)] = y;
      p2_[static_cast<size_t>(y)] = x;
    }
    // Interiors of settled regions are op-free for the BFS scan (see the
    // header contract); mark the strict descendants of every settled T2
    // root for skipping. Disabled under weighted alignment — a zero-move-
    // cost model can emit zero-cost moves even inside identical regions.
    if (settled != nullptr && !settled->empty() &&
        !(lcs_align && costs != nullptr)) {
      skip2_.assign(static_cast<size_t>(t2.id_bound()), 0);
      std::vector<NodeId> stack;
      for (const auto& [a, b] : *settled) {
        if (p2_[static_cast<size_t>(b)] != a) continue;  // Defensive.
        for (NodeId c : t2.children(b)) stack.push_back(c);
        while (!stack.empty()) {
          const NodeId d = stack.back();
          stack.pop_back();
          skip2_[static_cast<size_t>(d)] = 1;
          for (NodeId c : t2.children(d)) stack.push_back(c);
        }
      }
    }
  }

  Status Run() {
    // Phase 1 (Figure 8, step 2): one breadth-first scan of T2 combining the
    // update, insert, align, and move phases. A budget trip aborts: a
    // half-generated script does not conform to the matching. The scan order
    // comes from T2's index when the pipeline attached one (the DiffContext
    // case); standalone callers fall back to a fresh traversal.
    const TreeIndex* i2 = t2_.attached_index();
    const std::vector<NodeId> bfs =
        i2 != nullptr ? i2->BfsOrder() : t2_.BfsOrder();
    for (NodeId x : bfs) {
      // A settled interior charges nothing and emits nothing: the prune is
      // where generation cost drops from O(document) to O(changed).
      if (!skip2_.empty() && skip2_[static_cast<size_t>(x)]) continue;
      if (!BudgetChargeNodes(budget_)) return BudgetStatus(budget_);
      NodeId w;
      if (x == t2_.root()) {
        w = Partner2(x);
        assert(w == work_.root());
      } else {
        const NodeId y = t2_.parent(x);
        const NodeId z = Partner2(y);  // (*) y was visited, hence matched.
        assert(z != kInvalidNode);
        if (Partner2(x) == kInvalidNode) {
          w = DoInsert(x, z);
        } else {
          w = Partner2(x);
          DoUpdateIfNeeded(w, x);
          if (Partner2(y) != work_.parent(w)) {
            DoMove(w, x, z);
          }
        }
      }
      AlignChildren(w, x);
    }

    // Phase 2 (step 3): post-order delete of unmatched nodes. Snapshot the
    // order first (the deletes dirty it); children precede parents, so every
    // delete is a leaf delete by the time it runs (Theorem C.2, second
    // stage).
    const std::vector<NodeId> order = work_index_.PostOrder();
    for (NodeId w : order) {
      if (!BudgetChargeNodes(budget_)) return BudgetStatus(budget_);
      if (p1_[static_cast<size_t>(w)] != kInvalidNode) continue;
      EditOp op = EditOp::Delete(w);
      if (costs_ != nullptr) op.cost = costs_->DeleteCost(work_, w);
      script_.Append(std::move(op));
      weighted_ += 1;
      TREEDIFF_RETURN_IF_ERROR(work_.DeleteLeaf(w));
    }
    return Status::Ok();
  }

  EditScriptResult TakeResult() && {
    EditScriptResult result{std::move(script_),
                            Matching(p1_.size(), p2_.size()),
                            std::move(work_)};
    for (size_t x = 0; x < p1_.size(); ++x) {
      if (p1_[x] != kInvalidNode && result.transformed.Alive(
                                        static_cast<NodeId>(x))) {
        result.total_matching.Add(static_cast<NodeId>(x), p1_[x]);
      }
    }
    result.weighted_edit_distance = weighted_;
    result.unweighted_edit_distance = result.script.size();
    result.intra_parent_moves = intra_moves_;
    result.inter_parent_moves = inter_moves_;
    return result;
  }

 private:
  NodeId Partner2(NodeId y) const { return p2_[static_cast<size_t>(y)]; }
  NodeId Partner1(NodeId w) const { return p1_[static_cast<size_t>(w)]; }

  void AddMatch(NodeId w, NodeId x) {
    if (static_cast<size_t>(w) >= p1_.size()) {
      p1_.resize(static_cast<size_t>(w) + 1, kInvalidNode);
      in_order1_.resize(static_cast<size_t>(w) + 1, 0);
    }
    p1_[static_cast<size_t>(w)] = x;
    p2_[static_cast<size_t>(x)] = w;
  }

  /// Insert phase for one unmatched T2 node `x` whose parent's partner is
  /// `z`: INS((w, l(x), v(x)), z, k).
  NodeId DoInsert(NodeId x, NodeId z) {
    const int k = FindPos(x, kInvalidNode, z);
    StatusOr<NodeId> inserted =
        work_.InsertLeaf(t2_.label(x), t2_.value(x), z, k);
    assert(inserted.ok());
    const NodeId w = *inserted;
    EditOp op = EditOp::Insert(w, t2_.label(x), t2_.value(x), z, k);
    if (costs_ != nullptr) op.cost = costs_->InsertCost(t2_, x);
    script_.Append(std::move(op));
    weighted_ += 1;
    AddMatch(w, x);
    MarkInOrder(w, x);
    return w;
  }

  /// Update phase for a matched pair (w, x) with differing values.
  void DoUpdateIfNeeded(NodeId w, NodeId x) {
    if (work_.value(w) == t2_.value(x)) return;
    const double cost =
        cmp_ != nullptr ? cmp_->Compare(work_, w, t2_, x) : 1.0;
    script_.Append(EditOp::Update(w, t2_.value(x), cost));
    TREEDIFF_CHECK_OK(work_.UpdateValue(w, t2_.value(x)));
  }

  /// Move phase for a matched pair (w, x) whose parents are not matched:
  /// MOV(w, z, k) with z the partner of x's parent.
  void DoMove(NodeId w, NodeId x, NodeId z) {
    const int k = FindPos(x, w, z);
    EditOp op = EditOp::Move(w, z, k);
    if (costs_ != nullptr) op.cost = costs_->MoveCost(work_, w);
    script_.Append(std::move(op));
    weighted_ += static_cast<size_t>(work_index_.LeafCount(w));
    ++inter_moves_;
    TREEDIFF_CHECK_OK(work_.MoveSubtree(w, z, k));
    MarkInOrder(w, x);
  }

  void MarkInOrder(NodeId w, NodeId x) {
    in_order1_[static_cast<size_t>(w)] = 1;
    in_order2_[static_cast<size_t>(x)] = 1;
  }

  /// Function FindPos (Figure 9), generalized to return an absolute 1-based
  /// insertion position in the working tree. `x` is the T2 node being
  /// placed; `w` is its partner in the working tree (kInvalidNode for an
  /// insert, where the node does not exist yet); `z` is the target parent in
  /// the working tree.
  ///
  /// The paper's step 5 counts only "in order" children of u's parent; we
  /// return the absolute position immediately to the right of u instead,
  /// which places the node correctly even when unmatched (doomed) siblings
  /// are interleaved, and compensates for the pending detachment when `w` is
  /// already a child of `z` to the left of the anchor.
  int FindPos(NodeId x, NodeId w, NodeId z) {
    const NodeId y = t2_.parent(x);
    // Rightmost in-order sibling of x to its left (Figure 9, steps 2-3).
    NodeId v = kInvalidNode;
    for (NodeId s : t2_.children(y)) {
      if (s == x) break;
      if (in_order2_[static_cast<size_t>(s)]) v = s;
    }
    if (v == kInvalidNode) return 1;
    const NodeId u = Partner2(v);
    assert(u != kInvalidNode);
    if (work_.parent(u) != z) {
      // Cannot happen when the invariants of Theorem C.2 hold; append at the
      // end as a safe fallback.
      assert(false && "FindPos anchor is not under the target parent");
      return static_cast<int>(work_.children(z).size()) + 1;
    }
    const int i = work_.ChildIndex(u);
    if (w != kInvalidNode && work_.parent(w) == z &&
        work_.ChildIndex(w) < i) {
      // w sits left of the anchor and will be detached first, shifting the
      // anchor one slot left.
      return i + 1;
    }
    return i + 2;
  }

  /// Function AlignChildren (Figure 9): aligns the mutual children of the
  /// matched pair (w, x) with the minimum number of intra-parent moves, via
  /// an LCS of the two child sequences (Lemma C.1).
  void AlignChildren(NodeId w, NodeId x) {
    // Step 1: mark all children of w and x "out of order".
    for (NodeId c : work_.children(w)) in_order1_[static_cast<size_t>(c)] = 0;
    for (NodeId c : t2_.children(x)) in_order2_[static_cast<size_t>(c)] = 0;

    // Step 2: S1 = children of w whose partners are children of x; S2
    // symmetric.
    std::vector<NodeId> s1, s2;
    for (NodeId c : work_.children(w)) {
      const NodeId partner = Partner1(c);
      if (partner != kInvalidNode && t2_.parent(partner) == x) {
        s1.push_back(c);
      }
    }
    for (NodeId c : t2_.children(x)) {
      const NodeId partner = Partner2(c);
      if (partner != kInvalidNode && work_.parent(partner) == w) {
        s2.push_back(c);
      }
    }
    if (s1.empty() && s2.empty()) return;

    // Steps 3-5: the set of children that stay put. The paper's strategy
    // is an LCS under equal(a, b) <=> (a, b) in M' (minimum moves, Lemma
    // C.1); the ablation baseline keeps a greedy increasing chain instead.
    // Under a non-uniform cost model, minimizing alignment *cost* means
    // keeping the heaviest (by move cost) common subsequence rather than
    // the longest — the natural generalization of Lemma C.1.
    if (lcs_align_ && costs_ != nullptr) {
      WeightedAlign(s1, s2);
    } else if (lcs_align_) {
      std::vector<LcsPair> lcs =
          Lcs(static_cast<int>(s1.size()), static_cast<int>(s2.size()),
              [&](int i, int j) {
                return Partner1(s1[static_cast<size_t>(i)]) ==
                       s2[static_cast<size_t>(j)];
              });
      for (const LcsPair& p : lcs) {
        in_order1_[static_cast<size_t>(s1[static_cast<size_t>(p.a_index)])] =
            1;
        in_order2_[static_cast<size_t>(s2[static_cast<size_t>(p.b_index)])] =
            1;
      }
    } else {
      // Greedy: scan S2 left to right, keeping each child whose partner
      // appears after the previously kept one in S1.
      std::vector<int> pos_in_s1(work_.id_bound(), -1);
      for (size_t i = 0; i < s1.size(); ++i) {
        pos_in_s1[static_cast<size_t>(s1[i])] = static_cast<int>(i);
      }
      int last_kept = -1;
      for (NodeId b : s2) {
        const NodeId a = Partner2(b);
        const int pos = pos_in_s1[static_cast<size_t>(a)];
        if (pos > last_kept) {
          last_kept = pos;
          in_order1_[static_cast<size_t>(a)] = 1;
          in_order2_[static_cast<size_t>(b)] = 1;
        }
      }
    }

    // Step 6: move every remaining matched child into place, left to right
    // in T2 order so each FindPos anchor is already aligned.
    for (NodeId b : s2) {
      if (in_order2_[static_cast<size_t>(b)]) continue;
      const NodeId a = Partner2(b);
      const int k = FindPos(b, a, w);
      EditOp op = EditOp::Move(a, w, k);
      if (costs_ != nullptr) op.cost = costs_->MoveCost(work_, a);
      script_.Append(std::move(op));
      weighted_ += static_cast<size_t>(work_index_.LeafCount(a));
      ++intra_moves_;
      TREEDIFF_CHECK_OK(work_.MoveSubtree(a, w, k));
      MarkInOrder(a, b);
    }
  }

  /// Heaviest-increasing-subsequence alignment: s2[j]'s partner occupies a
  /// unique position in s1, so the children that may stay put form an
  /// increasing subsequence of that permutation; we keep the one whose kept
  /// nodes carry the largest total move cost (O(k^2) DP over the children).
  void WeightedAlign(const std::vector<NodeId>& s1,
                     const std::vector<NodeId>& s2) {
    const size_t k = s2.size();
    if (k == 0) return;
    std::vector<int> pos_in_s1(work_.id_bound(), -1);
    for (size_t i = 0; i < s1.size(); ++i) {
      pos_in_s1[static_cast<size_t>(s1[i])] = static_cast<int>(i);
    }
    std::vector<int> perm(k);
    std::vector<double> weight(k);
    for (size_t j = 0; j < k; ++j) {
      const NodeId a = Partner2(s2[j]);
      perm[j] = pos_in_s1[static_cast<size_t>(a)];
      weight[j] = costs_->MoveCost(work_, a);
    }
    std::vector<double> best(k);
    std::vector<int> prev(k, -1);
    size_t best_end = 0;
    for (size_t j = 0; j < k; ++j) {
      best[j] = weight[j];
      for (size_t i = 0; i < j; ++i) {
        if (perm[i] < perm[j] && best[i] + weight[j] > best[j]) {
          best[j] = best[i] + weight[j];
          prev[j] = static_cast<int>(i);
        }
      }
      if (best[j] > best[best_end]) best_end = j;
    }
    for (int j = static_cast<int>(best_end); j >= 0; j = prev[j]) {
      const NodeId b = s2[static_cast<size_t>(j)];
      in_order2_[static_cast<size_t>(b)] = 1;
      in_order1_[static_cast<size_t>(Partner2(b))] = 1;
    }
  }

  const Tree& t2_;
  Tree work_;
  // Declared after work_ (it attaches to it in the constructor); detaches
  // automatically when TakeResult moves work_ out.
  TreeIndex work_index_;
  const ValueComparator* cmp_;
  const CostModel* costs_;
  const Budget* budget_;
  bool lcs_align_;
  std::vector<NodeId> p1_;
  std::vector<NodeId> p2_;
  std::vector<char> in_order1_;
  std::vector<char> in_order2_;
  std::vector<char> skip2_;
  EditScript script_;
  size_t weighted_ = 0;
  size_t intra_moves_ = 0;
  size_t inter_moves_ = 0;
};

}  // namespace

StatusOr<EditScriptResult> GenerateEditScript(
    const Tree& t1, const Tree& t2, const Matching& matching,
    const ValueComparator* update_cost_comparator, bool use_lcs_alignment,
    const CostModel* cost_model, const Budget* budget,
    const std::vector<std::pair<NodeId, NodeId>>* settled_subtrees) {
  if (t1.root() == kInvalidNode || t2.root() == kInvalidNode) {
    return Status::FailedPrecondition("both trees must be non-empty");
  }
  if (t1.label_table().get() != t2.label_table().get()) {
    return Status::FailedPrecondition(
        "trees being diffed must share one LabelTable");
  }

  // Validate the matching: live nodes, equal labels.
  Matching m = matching;
  for (const auto& [x, y] : m.Pairs()) {
    if (!t1.Alive(x) || !t2.Alive(y)) {
      return Status::InvalidArgument("matching references a dead node");
    }
    if (t1.label(x) != t2.label(y)) {
      return Status::FailedPrecondition(
          "matched pair (" + std::to_string(x) + ", " + std::to_string(y) +
          ") has different labels; no edit operation relabels a node");
    }
  }

  // Root handling (Section 4.1, insert phase): the scan requires matched
  // roots. If both roots are unmatched and agree on label, match them; if
  // they cannot match, the caller must wrap both trees (Tree::WrapRoot).
  if (m.PartnerOfT2(t2.root()) != t1.root()) {
    const bool both_free = !m.HasT1(t1.root()) && !m.HasT2(t2.root());
    if (both_free && t1.label(t1.root()) == t2.label(t2.root())) {
      m.Add(t1.root(), t2.root());
    } else {
      return Status::FailedPrecondition(
          "the tree roots must be matched to each other (wrap both trees "
          "with Tree::WrapRoot to diff trees with unmatchable roots)");
    }
  }

  ScriptGenerator gen(t1, t2, m, update_cost_comparator, use_lcs_alignment,
                      cost_model, budget, settled_subtrees);
  TREEDIFF_RETURN_IF_ERROR(gen.Run());
  EditScriptResult result = std::move(gen).TakeResult();

  // Theorem C.2 guarantees isomorphism; verify as a cheap O(N) safety net.
  if (!Tree::Isomorphic(result.transformed, t2)) {
    return Status::Internal(
        "generated script did not transform T1 into a tree isomorphic to T2");
  }
  return result;
}

}  // namespace treediff
