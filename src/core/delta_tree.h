#ifndef TREEDIFF_CORE_DELTA_TREE_H_
#define TREEDIFF_CORE_DELTA_TREE_H_

#include <string>
#include <vector>

#include "core/edit_script.h"
#include "core/matching.h"
#include "tree/tree.h"
#include "util/status.h"

namespace treediff {

/// Node annotations of a delta tree (Section 6). Exactly one per node.
enum class DeltaAnnotation {
  kIdentical,   // IDN: present unchanged in both versions.
  kUpdated,     // UPD(v): value updated; old value kept alongside.
  kInserted,    // INS(l, v): node newly inserted.
  kDeleted,     // DEL: subtree deleted; appears at its old position.
  kMoved,       // MOV(x): tombstone at the node's old position.
  kMoveMarker,  // MRK: the node at its new position (destination of a move).
};

/// Returns "IDN"/"UPD"/"INS"/"DEL"/"MOV"/"MRK".
const char* DeltaAnnotationName(DeltaAnnotation ann);

/// One node of a delta tree. Children are indices into DeltaTree::nodes().
struct DeltaNode {
  DeltaAnnotation annotation = DeltaAnnotation::kIdentical;
  LabelId label = kInvalidLabel;

  /// Current (new-version) value; for kDeleted and kMoved tombstones, the
  /// old-version value.
  std::string value;

  /// Previous value, set when the node's value was updated. A moved node may
  /// also be updated (the paper marks both simultaneously, Appendix A); in
  /// that case the annotation is kMoveMarker and old_value is non-empty.
  std::string old_value;
  bool value_updated = false;

  /// Links a kMoved tombstone with its kMoveMarker destination; -1 otherwise.
  int move_id = -1;

  /// Provenance: originating nodes in the old/new trees (kInvalidNode where
  /// not applicable, e.g. t2_node of a deletion tombstone).
  NodeId t1_node = kInvalidNode;
  NodeId t2_node = kInvalidNode;

  std::vector<int> children;
};

/// The delta tree of Section 6: the new version of the data annotated with
/// the changes, plus tombstones for deleted subtrees and for the old
/// positions of moved subtrees. Superimposing old and new this way is what
/// lets LaDiff render a single marked-up document (Section 7, Appendix A).
class DeltaTree {
 public:
  DeltaTree() = default;

  const std::vector<DeltaNode>& nodes() const { return nodes_; }
  const DeltaNode& node(int i) const { return nodes_[static_cast<size_t>(i)]; }
  int root() const { return root_; }
  bool empty() const { return nodes_.empty(); }

  /// Number of nodes carrying the given annotation.
  size_t CountAnnotation(DeltaAnnotation ann) const;

  /// Number of distinct moves represented (pairs of kMoved/kMoveMarker).
  size_t move_count() const { return static_cast<size_t>(next_move_id_); }

  /// Renders an s-expression with annotations, e.g.
  /// (document (paragraph:INS (sentence:INS "new"))). For debugging/tests.
  std::string ToDebugString(const LabelTable& labels) const;

 private:
  friend class DeltaTreeBuilder;

  std::vector<DeltaNode> nodes_;
  int root_ = -1;
  int next_move_id_ = 0;
};

/// Reconstructs the OLD version from a delta tree alone: IDN and MRK nodes
/// contribute their (old) values, UPD nodes their old_value, DEL and MOV
/// tombstones stand at their old positions, inserted nodes are dropped, and
/// the subtree of a moved node is recovered from its MRK destination and
/// grafted at the tombstone. The result is isomorphic to the original t1 —
/// the delta tree is a lossless superimposition of both versions (this is
/// the Section 6 correctness property, checked by property tests).
/// `labels` must be the table the original trees used.
StatusOr<Tree> ReconstructOldVersion(const DeltaTree& delta,
                                     std::shared_ptr<LabelTable> labels);

/// Reconstructs the NEW version from a delta tree alone: tombstones (DEL,
/// MOV) are dropped, everything else contributes its new value in order.
/// The result is isomorphic to t2.
StatusOr<Tree> ReconstructNewVersion(const DeltaTree& delta,
                                     std::shared_ptr<LabelTable> labels);

/// Builds the delta tree for `t1` with respect to `t2` from the outputs of
/// the matching and edit-script stages:
///
///  * `matching` is the "good matching" over ORIGINAL t1/t2 node ids (the
///    input to Algorithm EditScript, not the total matching — inserted nodes
///    must not appear matched);
///  * `script` is the conforming edit script, used to identify which matched
///    nodes were moved (both inter-parent and align-phase moves).
///
/// The construction mirrors Section 6: the skeleton is the new tree with
/// IDN/UPD/INS/MRK annotations; DEL tombstones (carrying their unmatched
/// subtrees) and MOV tombstones are spliced in at their old positions,
/// anchored after the delta node of their nearest left sibling that remains
/// in place.
StatusOr<DeltaTree> BuildDeltaTree(const Tree& t1, const Tree& t2,
                                   const Matching& matching,
                                   const EditScript& script);

}  // namespace treediff

#endif  // TREEDIFF_CORE_DELTA_TREE_H_
