#include "core/diff_context.h"

namespace treediff {

const char* DiffRungName(DiffRung rung) {
  switch (rung) {
    case DiffRung::kOptimalZs:
      return "OptimalZs";
    case DiffRung::kFastMatch:
      return "FastMatch";
    case DiffRung::kKeyedStructural:
      return "KeyedStructural";
    case DiffRung::kTopLevelReplace:
      return "TopLevelReplace";
  }
  return "?";
}

namespace {

const ValueComparator* ResolveComparator(
    const DiffOptions& options,
    std::unique_ptr<WordLcsComparator>* owned) {
  if (options.comparator != nullptr) return options.comparator;
  *owned = std::make_unique<WordLcsComparator>();
  return owned->get();
}

/// A lent index is used only when it really indexes `tree` (a mismatched
/// pointer would silently answer for the wrong tree); otherwise a fresh
/// index is built into `owned`.
const TreeIndex* ResolveIndex(const Tree& tree, const TreeIndex* lent,
                              std::unique_ptr<TreeIndex>* owned) {
  if (lent != nullptr && lent->attached() && &lent->tree() == &tree) {
    return lent;
  }
  *owned = std::make_unique<TreeIndex>(tree);
  return owned->get();
}

}  // namespace

DiffContext::DiffContext(const Tree& t1, const Tree& t2,
                         const DiffOptions& options)
    : t1_(t1),
      t2_(t2),
      options_(options),
      comparator_(ResolveComparator(options_, &owned_comparator_)),
      comparator_baseline_(comparator_->cache_stats()),
      index1_(ResolveIndex(t1, options_.index1, &owned_index1_)),
      index2_(ResolveIndex(t2, options_.index2, &owned_index2_)),
      evaluator_(*index1_, *index2_, comparator_,
                 MatchOptions{options_.leaf_threshold_f,
                              options_.internal_threshold_t},
                 options_.budget) {}

}  // namespace treediff
