#ifndef TREEDIFF_CORE_SCRIPT_IO_H_
#define TREEDIFF_CORE_SCRIPT_IO_H_

#include <string>
#include <string_view>

#include "core/edit_script.h"
#include "tree/label.h"
#include "util/status.h"

namespace treediff {

/// Text serialization of edit scripts, so deltas can be shipped between
/// systems (the data-warehousing scenario: compute the delta at the source,
/// apply it at the warehouse). The format is line-oriented and matches the
/// paper's notation:
///
///   INS((17, sentence, "new text"), 3, 2)
///   UPD(9, "changed")
///   MOV(5, 11, 1)
///   DEL(6)
///
/// String values use \" and \\ escapes; the format is line-oriented, so
/// values must not contain newlines (tree values produced by the document
/// parsers never do — whitespace is collapsed).
/// Update costs are not serialized (they are recomputed when needed);
/// parsed updates carry cost 1.

/// Serializes `script` (same output as EditScript::ToString).
std::string FormatEditScript(const EditScript& script,
                             const LabelTable& labels);

/// Parses a serialized script. Labels are interned into `labels`, which
/// must be the table of the tree the script will be applied to. Blank lines
/// and lines starting with '#' are skipped.
///
/// Rejects malformed input with kParseError and a line-numbered message —
/// both syntactic (bad shape, overflowing integers, unterminated strings)
/// and semantic (negative node ids, positions < 1, a MOV or INS naming
/// itself as parent, duplicate INS ids): scripts that can never apply
/// cleanly fail here with a precise diagnostic instead of a confusing
/// failure at apply time. Never crashes on arbitrary bytes.
StatusOr<EditScript> ParseEditScript(std::string_view text,
                                     LabelTable* labels);

}  // namespace treediff

#endif  // TREEDIFF_CORE_SCRIPT_IO_H_
