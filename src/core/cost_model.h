#ifndef TREEDIFF_CORE_COST_MODEL_H_
#define TREEDIFF_CORE_COST_MODEL_H_

#include <unordered_map>

#include "tree/tree.h"

namespace treediff {

/// The general cost model of Section 3.2: "the cost of an edit operation
/// depends on the type of operation and the nodes involved ... In general,
/// these costs may depend on the label and the value of x". The paper then
/// adopts c_D = c_I = c_M = 1; this interface restores the general form so
/// applications can price, say, a section move differently from a sentence
/// move.
///
/// Note the scope: Algorithm EditScript emits the *set* of operations the
/// matching determines (Theorem C.2) — the forced inserts/deletes/
/// inter-parent moves plus the count-minimal alignment moves. A non-uniform
/// model re-prices that script; it does not change which operations are
/// chosen (with non-uniform intra-parent move costs a weighted-LCS
/// alignment could in principle do better; the paper's algorithm, and ours,
/// minimizes the move count).
class CostModel {
 public:
  virtual ~CostModel() = default;

  /// Cost of inserting node `x` of tree `t` (the new tree).
  virtual double InsertCost(const Tree& t, NodeId x) const;

  /// Cost of deleting node `x` of tree `t` (the working/old tree).
  virtual double DeleteCost(const Tree& t, NodeId x) const;

  /// Cost of moving the subtree rooted at `x` of tree `t`.
  virtual double MoveCost(const Tree& t, NodeId x) const;
};

/// The paper's unit-cost model.
class UnitCostModel : public CostModel {};

/// Per-label costs with a default for unlisted labels. Example: charging
/// section moves 5 and sentence operations 1 makes script costs reflect
/// document-level impact.
class PerLabelCostModel : public CostModel {
 public:
  struct OpCosts {
    double insert = 1.0;
    double remove = 1.0;
    double move = 1.0;
  };

  PerLabelCostModel() = default;
  explicit PerLabelCostModel(OpCosts default_costs)
      : default_(default_costs) {}

  /// Sets the costs for one label.
  void SetCosts(LabelId label, OpCosts costs) { per_label_[label] = costs; }

  double InsertCost(const Tree& t, NodeId x) const override;
  double DeleteCost(const Tree& t, NodeId x) const override;
  double MoveCost(const Tree& t, NodeId x) const override;

 private:
  const OpCosts& For(LabelId label) const;

  OpCosts default_;
  std::unordered_map<LabelId, OpCosts> per_label_;
};

}  // namespace treediff

#endif  // TREEDIFF_CORE_COST_MODEL_H_
