#include "core/diff.h"

#include <optional>
#include <utility>
#include <vector>

#include "core/matcher.h"
#include "core/post_process.h"
#include "core/share_map.h"
#include "util/timer.h"

namespace treediff {

StatusOr<DiffResult> DiffTrees(const Tree& t1, const Tree& t2,
                               const DiffOptions& options) {
  if (t1.root() == kInvalidNode || t2.root() == kInvalidNode) {
    return Status::InvalidArgument("both trees must be non-empty");
  }
  if (t1.label_table().get() != t2.label_table().get()) {
    return Status::InvalidArgument(
        "trees being diffed must share one LabelTable");
  }
  if (options.leaf_threshold_f < 0.0 || options.leaf_threshold_f > 1.0) {
    return Status::InvalidArgument("leaf_threshold_f must be in [0, 1]");
  }
  if (options.internal_threshold_t < 0.5 ||
      options.internal_threshold_t > 1.0) {
    return Status::InvalidArgument(
        "internal_threshold_t must be in [1/2, 1]");
  }

  // One shared context: a TreeIndex per tree, the resolved comparator, and
  // the criteria evaluator. Every stage below reads these instead of
  // re-deriving per-tree state.
  DiffContext ctx(t1, t2, options);
  const Budget* budget = ctx.budget();

  DiffStats stats;
  DiffReport report;
  report.requested_rung = options.start_rung;
  WallTimer timer;

  // Phase 1: the Good Matching problem (Section 5), run down the DiffRung
  // ladder through the Matcher registry. A rung produces a matching only if
  // the budget held for its whole run; a declined rung (budget pre-flight
  // failure or mid-run exhaustion — a partial matching is discarded) steps
  // the ladder down one rung. The bounded rungs (kKeyedStructural,
  // kTopLevelReplace) never decline — they run without the
  // (sticky-exhausted) budget; they are O(n log n) / O(n), which is the
  // degradation contract: bounded work instead of an error.
  DiffRung rung = options.start_rung;
  std::optional<Matching> matching;
  std::vector<std::pair<NodeId, NodeId>> settled;
  if (options.reuse_matching != nullptr) {
    // Chain reuse (service layer): the caller vouches that this matching was
    // produced by a prior DiffTrees over byte-identical trees, so phase 1 is
    // skipped outright and generation proceeds from the cached matching.
    matching = *options.reuse_matching;
    report.matching_reused = true;
  } else {
    // The share-map pre-pass settles byte-identical subtrees wholesale
    // before the ladder runs, shrinking every matcher's working set to the
    // unsettled frontier. It runs uncharged (like the bounded low rungs) and
    // only while the budget still holds, so a budget-tripped request
    // degrades exactly as it would have without the pre-pass.
    Matching seed(t1.id_bound(), t2.id_bound());
    if (options.share_mode != ShareMode::kOff && BudgetOk(budget)) {
      ShareStats share;
      seed = PrematchSharedSubtrees(
          ctx, options.share_mode == ShareMode::kIndexed, &share, &settled);
      report.share_lookups = share.lookups;
      report.prune_settled_subtrees = share.settled_subtrees;
      report.prune_settled_nodes = share.settled_nodes;
      report.prune_collisions = share.collisions;
    }
    for (;;) {
      MatchResult attempt = MatcherForRung(rung).Run(ctx, seed);
      if (attempt.matching.has_value()) {
        matching = std::move(attempt.matching);
        break;
      }
      rung = static_cast<DiffRung>(static_cast<int>(rung) + 1);
    }
  }

  // The roots of the trees being compared always correspond (the generator
  // would add the pair anyway); making it explicit here lets the post
  // passes treat the root as matched context.
  if (matching->PartnerOfT2(t2.root()) != t1.root() &&
      !matching->HasT1(t1.root()) && !matching->HasT2(t2.root()) &&
      t1.label(t1.root()) == t2.label(t2.root())) {
    matching->Add(t1.root(), t2.root());
  }
  // The repair passes consult the criteria (and hence the budget); with an
  // exhausted budget they would no-op at best, and a requested
  // kTopLevelReplace must stay a bare replace. A reused matching is already
  // a phase-1 final product — re-running the passes could perturb it.
  if (!report.matching_reused && BudgetOk(budget) &&
      rung != DiffRung::kTopLevelReplace) {
    if (options.post_process) {
      stats.post_process_rematched =
          PostProcessMatching(t1, t2, ctx.evaluator(), &matching.value());
    }
    if (options.complete_context) {
      stats.context_completed =
          CompleteContextMatching(t1, t2, &matching.value());
    }
  }
  // The repair passes may have re-paired nodes inside a settled region; the
  // generator may only skip regions that survived intact. Only kIndexed
  // forwards the settled list: kReference deliberately generates over the
  // full trees, so the byte-identity discipline (reference vs indexed)
  // exercises the generator's interior-skipping as well as the share-map.
  if (options.share_mode == ShareMode::kIndexed) {
    FilterIntactSettled(t1, t2, *matching, &settled);
  } else {
    settled.clear();
  }
  stats.match_seconds = timer.ElapsedSeconds();
  stats.compare_calls = ctx.evaluator().compare_calls();
  stats.partner_checks = ctx.evaluator().partner_checks();

  // Phase 2: the Minimum Conforming Edit Script problem (Section 4). The
  // generator gets the budget only while it still holds — once exhausted
  // the remaining work is already bounded and must run to completion.
  timer.Restart();
  const Budget* gen_budget =
      (budget != nullptr && budget->exhausted()) ? nullptr : budget;
  StatusOr<EditScriptResult> gen =
      GenerateEditScript(t1, t2, *matching, &ctx.comparator(),
                         /*use_lcs_alignment=*/true, options.cost_model,
                         gen_budget, settled.empty() ? nullptr : &settled);
  if (!gen.ok() && IsExhaustion(gen.status().code())) {
    // The budget tripped mid-generation: fall to the last rung. Root-only
    // matching makes generation O(n); run it budget-free. The settled list
    // belongs to the discarded matching, so it must not be forwarded.
    rung = DiffRung::kTopLevelReplace;
    matching = RootOnlyMatching(t1, t2);
    gen = GenerateEditScript(t1, t2, *matching, &ctx.comparator(),
                             /*use_lcs_alignment=*/true, options.cost_model,
                             /*budget=*/nullptr);
  }
  if (!gen.ok()) return gen.status();
  stats.script_seconds = timer.ElapsedSeconds();

  stats.inserts = gen->script.num_inserts();
  stats.deletes = gen->script.num_deletes();
  stats.updates = gen->script.num_updates();
  stats.moves = gen->script.num_moves();
  stats.intra_parent_moves = gen->intra_parent_moves;
  stats.inter_parent_moves = gen->inter_parent_moves;
  stats.weighted_edit_distance = gen->weighted_edit_distance;
  stats.unweighted_edit_distance = gen->unweighted_edit_distance;
  stats.script_cost = gen->script.TotalCost();

  report.rung = rung;
  report.degraded =
      static_cast<int>(rung) > static_cast<int>(report.requested_rung);
  if (budget != nullptr) {
    report.exhaustion_code = budget->exhaustion_code();
    report.exhaustion_detail = budget->exhaustion_detail();
    report.nodes_visited = budget->nodes_visited();
    report.comparisons = budget->comparisons();
    report.peak_arena_bytes = budget->peak_arena_bytes();
    report.elapsed_seconds = budget->elapsed_seconds();
  } else {
    report.nodes_visited = t1.size() + t2.size();
    report.comparisons = stats.compare_calls + stats.partner_checks;
    report.elapsed_seconds = stats.match_seconds + stats.script_seconds;
  }
  // Report this run's cache traffic only: the comparator may be shared
  // across DiffTrees calls (the service reuses one per worker), so the
  // cumulative totals are diffed against the snapshot the context took at
  // construction.
  const ValueComparator::CacheStats cache = ctx.comparator().cache_stats();
  const ValueComparator::CacheStats& base = ctx.comparator_baseline();
  report.tokenize_cache_hits = cache.tokenize_hits - base.tokenize_hits;
  report.tokenize_cache_misses = cache.tokenize_misses - base.tokenize_misses;

  DiffResult result{std::move(*matching), std::move(gen->script), stats,
                    std::move(report)};
  return result;
}

StatusOr<DeltaTree> BuildDeltaTree(const Tree& t1, const Tree& t2,
                                   const DiffResult& result) {
  return BuildDeltaTree(t1, t2, result.matching, result.script);
}

}  // namespace treediff
