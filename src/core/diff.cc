#include "core/diff.h"

#include "core/fast_match.h"
#include "core/match.h"
#include "core/post_process.h"
#include "util/timer.h"

namespace treediff {

StatusOr<DiffResult> DiffTrees(const Tree& t1, const Tree& t2,
                               const DiffOptions& options) {
  if (t1.root() == kInvalidNode || t2.root() == kInvalidNode) {
    return Status::InvalidArgument("both trees must be non-empty");
  }
  if (t1.label_table().get() != t2.label_table().get()) {
    return Status::InvalidArgument(
        "trees being diffed must share one LabelTable");
  }
  if (options.leaf_threshold_f < 0.0 || options.leaf_threshold_f > 1.0) {
    return Status::InvalidArgument("leaf_threshold_f must be in [0, 1]");
  }
  if (options.internal_threshold_t < 0.5 ||
      options.internal_threshold_t > 1.0) {
    return Status::InvalidArgument(
        "internal_threshold_t must be in [1/2, 1]");
  }

  WordLcsComparator default_comparator;
  const ValueComparator* comparator = options.comparator != nullptr
                                          ? options.comparator
                                          : &default_comparator;

  MatchOptions match_options;
  match_options.leaf_threshold_f = options.leaf_threshold_f;
  match_options.internal_threshold_t = options.internal_threshold_t;
  CriteriaEvaluator eval(t1, t2, comparator, match_options);

  DiffStats stats;
  WallTimer timer;

  // Phase 1: the Good Matching problem (Section 5).
  Matching matching =
      options.use_fast_match
          ? ComputeFastMatch(t1, t2, eval, options.schema,
                             options.fallback_limit_k)
          : ComputeMatch(t1, t2, eval);
  // The roots of the trees being compared always correspond (the generator
  // would add the pair anyway); making it explicit here lets the post
  // passes treat the root as matched context.
  if (matching.PartnerOfT2(t2.root()) != t1.root() &&
      !matching.HasT1(t1.root()) && !matching.HasT2(t2.root()) &&
      t1.label(t1.root()) == t2.label(t2.root())) {
    matching.Add(t1.root(), t2.root());
  }
  if (options.post_process) {
    stats.post_process_rematched =
        PostProcessMatching(t1, t2, eval, &matching);
  }
  if (options.complete_context) {
    stats.context_completed = CompleteContextMatching(t1, t2, &matching);
  }
  stats.match_seconds = timer.ElapsedSeconds();
  stats.compare_calls = eval.compare_calls();
  stats.partner_checks = eval.partner_checks();

  // Phase 2: the Minimum Conforming Edit Script problem (Section 4).
  timer.Restart();
  StatusOr<EditScriptResult> gen =
      GenerateEditScript(t1, t2, matching, comparator,
                         /*use_lcs_alignment=*/true, options.cost_model);
  if (!gen.ok()) return gen.status();
  stats.script_seconds = timer.ElapsedSeconds();

  stats.inserts = gen->script.num_inserts();
  stats.deletes = gen->script.num_deletes();
  stats.updates = gen->script.num_updates();
  stats.moves = gen->script.num_moves();
  stats.intra_parent_moves = gen->intra_parent_moves;
  stats.inter_parent_moves = gen->inter_parent_moves;
  stats.weighted_edit_distance = gen->weighted_edit_distance;
  stats.unweighted_edit_distance = gen->unweighted_edit_distance;
  stats.script_cost = gen->script.TotalCost();

  DiffResult result{std::move(matching), std::move(gen->script), stats};
  return result;
}

StatusOr<DeltaTree> BuildDeltaTree(const Tree& t1, const Tree& t2,
                                   const DiffResult& result) {
  return BuildDeltaTree(t1, t2, result.matching, result.script);
}

}  // namespace treediff
