#include "core/diff.h"

#include <optional>
#include <utility>

#include "core/fast_match.h"
#include "core/keyed_match.h"
#include "core/match.h"
#include "core/post_process.h"
#include "util/timer.h"
#include "zs/zhang_shasha.h"

namespace treediff {

const char* DiffRungName(DiffRung rung) {
  switch (rung) {
    case DiffRung::kOptimalZs:
      return "OptimalZs";
    case DiffRung::kFastMatch:
      return "FastMatch";
    case DiffRung::kKeyedStructural:
      return "KeyedStructural";
    case DiffRung::kTopLevelReplace:
      return "TopLevelReplace";
  }
  return "Unknown";
}

namespace {

/// The last rung's matching: roots only (when their labels agree). The
/// generated script deletes every other old node and inserts every new one.
Matching RootOnlyMatching(const Tree& t1, const Tree& t2) {
  Matching m(t1.id_bound(), t2.id_bound());
  if (t1.label(t1.root()) == t2.label(t2.root())) {
    m.Add(t1.root(), t2.root());
  }
  return m;
}

}  // namespace

StatusOr<DiffResult> DiffTrees(const Tree& t1, const Tree& t2,
                               const DiffOptions& options) {
  if (t1.root() == kInvalidNode || t2.root() == kInvalidNode) {
    return Status::InvalidArgument("both trees must be non-empty");
  }
  if (t1.label_table().get() != t2.label_table().get()) {
    return Status::InvalidArgument(
        "trees being diffed must share one LabelTable");
  }
  if (options.leaf_threshold_f < 0.0 || options.leaf_threshold_f > 1.0) {
    return Status::InvalidArgument("leaf_threshold_f must be in [0, 1]");
  }
  if (options.internal_threshold_t < 0.5 ||
      options.internal_threshold_t > 1.0) {
    return Status::InvalidArgument(
        "internal_threshold_t must be in [1/2, 1]");
  }

  WordLcsComparator default_comparator;
  const ValueComparator* comparator = options.comparator != nullptr
                                          ? options.comparator
                                          : &default_comparator;

  const Budget* budget = options.budget;

  MatchOptions match_options;
  match_options.leaf_threshold_f = options.leaf_threshold_f;
  match_options.internal_threshold_t = options.internal_threshold_t;
  CriteriaEvaluator eval(t1, t2, comparator, match_options, budget);

  DiffStats stats;
  DiffReport report;
  report.requested_rung = options.start_rung;
  WallTimer timer;

  // Phase 1: the Good Matching problem (Section 5), run down the DiffRung
  // ladder. A rung produces a matching only if the budget held for its
  // whole run; a partial matching from an exhausted rung is discarded, and
  // the bounded rungs (kKeyedStructural, kTopLevelReplace) then run without
  // the (sticky-exhausted) budget — they are O(n log n) / O(n), which is
  // the degradation contract: bounded work instead of an error.
  DiffRung rung = options.start_rung;
  std::optional<Matching> matching;

  if (rung == DiffRung::kOptimalZs) {
    // Pre-flight: the ZS DP table is (n1+1)x(n2+1) doubles and the solver
    // visits every node; skip the rung outright when the explicit caps
    // cannot fit that, instead of burning deadline on a doomed start.
    const size_t n1 = t1.size();
    const size_t n2 = t2.size();
    const size_t table_bytes = (n1 + 1) * (n2 + 1) * sizeof(double);
    if (budget == nullptr ||
        (BudgetOk(budget) && budget->CouldAfford(n1 + n2, 0, table_bytes))) {
      ZsOptions zs_options;
      zs_options.budget = budget;
      ZsResult zs = ZhangShasha(t1, t2, zs_options);
      if (BudgetOk(budget)) {
        // A ZS mapping may pair nodes with different labels (relabels); our
        // edit model never relabels, so keep only the label-equal pairs.
        Matching m(t1.id_bound(), t2.id_bound());
        for (const auto& [x, y] : zs.mapping) {
          if (t1.label(x) == t2.label(y)) m.Add(x, y);
        }
        matching = std::move(m);
      }
    }
    if (!matching.has_value()) rung = DiffRung::kFastMatch;
  }

  if (!matching.has_value() && rung == DiffRung::kFastMatch) {
    if (BudgetOk(budget)) {
      Matching m = options.use_fast_match
                       ? ComputeFastMatch(t1, t2, eval, options.schema,
                                          options.fallback_limit_k)
                       : ComputeMatch(t1, t2, eval);
      if (BudgetOk(budget)) matching = std::move(m);
    }
    if (!matching.has_value()) rung = DiffRung::kKeyedStructural;
  }

  if (!matching.has_value() && rung == DiffRung::kKeyedStructural) {
    matching = ComputeStructuralMatch(t1, t2);
  }

  if (!matching.has_value()) {  // rung == kTopLevelReplace requested.
    matching = RootOnlyMatching(t1, t2);
  }

  // The roots of the trees being compared always correspond (the generator
  // would add the pair anyway); making it explicit here lets the post
  // passes treat the root as matched context.
  if (matching->PartnerOfT2(t2.root()) != t1.root() &&
      !matching->HasT1(t1.root()) && !matching->HasT2(t2.root()) &&
      t1.label(t1.root()) == t2.label(t2.root())) {
    matching->Add(t1.root(), t2.root());
  }
  // The repair passes consult the criteria (and hence the budget); with an
  // exhausted budget they would no-op at best, and a requested
  // kTopLevelReplace must stay a bare replace.
  if (BudgetOk(budget) && rung != DiffRung::kTopLevelReplace) {
    if (options.post_process) {
      stats.post_process_rematched =
          PostProcessMatching(t1, t2, eval, &matching.value());
    }
    if (options.complete_context) {
      stats.context_completed =
          CompleteContextMatching(t1, t2, &matching.value());
    }
  }
  stats.match_seconds = timer.ElapsedSeconds();
  stats.compare_calls = eval.compare_calls();
  stats.partner_checks = eval.partner_checks();

  // Phase 2: the Minimum Conforming Edit Script problem (Section 4). The
  // generator gets the budget only while it still holds — once exhausted
  // the remaining work is already bounded and must run to completion.
  timer.Restart();
  const Budget* gen_budget =
      (budget != nullptr && budget->exhausted()) ? nullptr : budget;
  StatusOr<EditScriptResult> gen =
      GenerateEditScript(t1, t2, *matching, comparator,
                         /*use_lcs_alignment=*/true, options.cost_model,
                         gen_budget);
  if (!gen.ok() && IsExhaustion(gen.status().code())) {
    // The budget tripped mid-generation: fall to the last rung. Root-only
    // matching makes generation O(n); run it budget-free.
    rung = DiffRung::kTopLevelReplace;
    matching = RootOnlyMatching(t1, t2);
    gen = GenerateEditScript(t1, t2, *matching, comparator,
                             /*use_lcs_alignment=*/true, options.cost_model,
                             /*budget=*/nullptr);
  }
  if (!gen.ok()) return gen.status();
  stats.script_seconds = timer.ElapsedSeconds();

  stats.inserts = gen->script.num_inserts();
  stats.deletes = gen->script.num_deletes();
  stats.updates = gen->script.num_updates();
  stats.moves = gen->script.num_moves();
  stats.intra_parent_moves = gen->intra_parent_moves;
  stats.inter_parent_moves = gen->inter_parent_moves;
  stats.weighted_edit_distance = gen->weighted_edit_distance;
  stats.unweighted_edit_distance = gen->unweighted_edit_distance;
  stats.script_cost = gen->script.TotalCost();

  report.rung = rung;
  report.degraded =
      static_cast<int>(rung) > static_cast<int>(report.requested_rung);
  if (budget != nullptr) {
    report.exhaustion_code = budget->exhaustion_code();
    report.exhaustion_detail = budget->exhaustion_detail();
    report.nodes_visited = budget->nodes_visited();
    report.comparisons = budget->comparisons();
    report.peak_arena_bytes = budget->peak_arena_bytes();
    report.elapsed_seconds = budget->elapsed_seconds();
  } else {
    report.nodes_visited = t1.size() + t2.size();
    report.comparisons = stats.compare_calls + stats.partner_checks;
    report.elapsed_seconds = stats.match_seconds + stats.script_seconds;
  }

  DiffResult result{std::move(*matching), std::move(gen->script), stats,
                    std::move(report)};
  return result;
}

StatusOr<DeltaTree> BuildDeltaTree(const Tree& t1, const Tree& t2,
                                   const DiffResult& result) {
  return BuildDeltaTree(t1, t2, result.matching, result.script);
}

}  // namespace treediff
