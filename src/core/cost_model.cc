#include "core/cost_model.h"

namespace treediff {

double CostModel::InsertCost(const Tree& t, NodeId x) const {
  (void)t;
  (void)x;
  return 1.0;
}

double CostModel::DeleteCost(const Tree& t, NodeId x) const {
  (void)t;
  (void)x;
  return 1.0;
}

double CostModel::MoveCost(const Tree& t, NodeId x) const {
  (void)t;
  (void)x;
  return 1.0;
}

const PerLabelCostModel::OpCosts& PerLabelCostModel::For(
    LabelId label) const {
  auto it = per_label_.find(label);
  return it == per_label_.end() ? default_ : it->second;
}

double PerLabelCostModel::InsertCost(const Tree& t, NodeId x) const {
  return For(t.label(x)).insert;
}

double PerLabelCostModel::DeleteCost(const Tree& t, NodeId x) const {
  return For(t.label(x)).remove;
}

double PerLabelCostModel::MoveCost(const Tree& t, NodeId x) const {
  return For(t.label(x)).move;
}

}  // namespace treediff
