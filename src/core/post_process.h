#ifndef TREEDIFF_CORE_POST_PROCESS_H_
#define TREEDIFF_CORE_POST_PROCESS_H_

#include "core/criteria.h"
#include "core/matching.h"
#include "tree/tree.h"

namespace treediff {

/// The Section 8 post-processing pass: FastMatch is only guaranteed optimal
/// when Matching Criterion 3 holds (no near-duplicate leaves). When it does
/// not, a leaf can latch onto a duplicate far from its context, producing a
/// spurious move. This pass repairs such mistakes:
///
///   Proceeding top-down, consider each matched pair (x, y). For each child
///   c of x matched to some c' with parent(c') != y, check whether c could
///   instead match a child c'' of y (same label, same structural kind,
///   compare(c, c'') <= f for leaves / Criterion 2 for internal nodes). If
///   c'' is unmatched, re-point the matching to (c, c''); if c'' is matched
///   and its partner fits c's old slot equally well, swap the two pairs
///   (repairing the symmetric cross-matches duplicates typically cause).
///
/// Returns the number of pairs re-matched. Mismatches that already
/// propagated to higher levels are not repaired (the paper measures an upper
/// bound on those in Table 1).
size_t PostProcessMatching(const Tree& t1, const Tree& t2,
                           const CriteriaEvaluator& eval, Matching* matching);

/// Context-completion pass (an extension beyond the paper, standard in
/// XML-diff practice): top-down over matched pairs (x, y), the remaining
/// unmatched children of x and y with the same (label, structural kind) are
/// paired up in document order, and the pass recurses into the new pairs.
///
/// This converts delete+insert pairs into updates for data-bearing trees
/// whose leaf values are too short for Matching Criterion 1 to ever hold
/// (e.g., "<price>12</price>" -> "<price>10</price>"). By Lemma 5.1 the
/// enlarged matching never yields a costlier script (an update costs
/// compare <= 2 = delete+insert); it can, however, pair semantically
/// unrelated siblings, which is why it is off by default for documents
/// (DiffOptions::complete_context).
///
/// Returns the number of pairs added.
size_t CompleteContextMatching(const Tree& t1, const Tree& t2,
                               Matching* matching);

}  // namespace treediff

#endif  // TREEDIFF_CORE_POST_PROCESS_H_
