#include "core/fast_match.h"

#include <algorithm>
#include <map>
#include <vector>

#include "lcs/lcs.h"

namespace treediff {

namespace {

/// Runs steps 2a-2e of Figure 11 on one label chain (`s1` from T1, `s2` from
/// T2, both in document order — the paper's chain_T(l)): LCS first, then the
/// Match-style scan over the leftovers.
void MatchChain(const std::vector<NodeId>& s1, const std::vector<NodeId>& s2,
                bool leaves, const CriteriaEvaluator& eval,
                int fallback_limit_k, Matching* m) {
  const Budget* budget = eval.budget();
  if (!BudgetChargeNodes(budget, s1.size() + s2.size())) return;
  auto equal = [&](NodeId x, NodeId y) {
    // Once the budget trips, the whole matching will be discarded by the
    // degradation ladder — but the LCS in flight cannot be aborted from its
    // equality callback. Answering "equal" makes Myers snake straight down
    // the diagonal, so it terminates in O(s1 + s2) instead of grinding out a
    // full-divergence run. The bogus pairs it yields are still label-legal
    // (a chain holds one label) and are thrown away with the rest.
    if (!BudgetOk(budget)) return true;
    return leaves ? eval.LeafEqual(x, y) : eval.InternalEqual(x, y, *m);
  };

  // Step 2c: lcs <- LCS(S1, S2, equal).
  std::vector<LcsPair> lcs =
      Lcs(static_cast<int>(s1.size()), static_cast<int>(s2.size()),
          [&](int i, int j) {
            return equal(s1[static_cast<size_t>(i)],
                         s2[static_cast<size_t>(j)]);
          });

  // Step 2d: adopt the LCS pairs.
  for (const LcsPair& p : lcs) {
    m->Add(s1[static_cast<size_t>(p.a_index)],
           s2[static_cast<size_t>(p.b_index)]);
  }

  // Step 2e: pair remaining unmatched nodes as in Algorithm Match. With a
  // positive fallback limit (the A(k) trade-off), each node examines at
  // most k candidates.
  for (NodeId x : s1) {
    if (!BudgetCheck(budget)) return;
    if (m->HasT1(x)) continue;
    int examined = 0;
    for (NodeId y : s2) {
      if (!BudgetCheck(budget)) return;
      if (m->HasT2(y)) continue;
      if (fallback_limit_k > 0 && ++examined > fallback_limit_k) break;
      if (equal(x, y)) {
        m->Add(x, y);
        break;
      }
    }
  }
}

/// Labels present in either tree's chain map, ascending (both maps are
/// LabelId-ordered, so this is a linear merge).
std::vector<LabelId> MergedLabels(
    const std::map<LabelId, std::vector<NodeId>>& a,
    const std::map<LabelId, std::vector<NodeId>>& b) {
  std::vector<LabelId> labels;
  labels.reserve(a.size() + b.size());
  auto ia = a.begin();
  auto ib = b.begin();
  while (ia != a.end() || ib != b.end()) {
    if (ib == b.end() || (ia != a.end() && ia->first < ib->first)) {
      labels.push_back((ia++)->first);
    } else if (ia == a.end() || ib->first < ia->first) {
      labels.push_back((ib++)->first);
    } else {
      labels.push_back(ia->first);
      ++ia;
      ++ib;
    }
  }
  return labels;
}

}  // namespace

Matching ComputeFastMatch(const Tree& t1, const Tree& t2,
                          const CriteriaEvaluator& eval,
                          const LabelSchema* schema, int fallback_limit_k,
                          const Matching* seed) {
  Matching m = seed != nullptr ? *seed
                               : Matching(t1.id_bound(), t2.id_bound());

  // The per-(label, kind) document-order chains are maintained by the
  // per-tree indexes; the seed rebuilt them here on every call.
  const TreeIndex& index1 = eval.index1();
  const TreeIndex& index2 = eval.index2();

  auto ordered_labels = [&](const std::map<LabelId, std::vector<NodeId>>& c1,
                            const std::map<LabelId, std::vector<NodeId>>& c2) {
    std::vector<LabelId> labels = MergedLabels(c1, c2);
    if (schema != nullptr) {
      std::stable_sort(labels.begin(), labels.end(),
                       [&](LabelId a, LabelId b) {
                         return schema->Rank(a) < schema->Rank(b);
                       });
    }
    return labels;
  };

  // With a pre-matched seed, each chain is filtered down to its unsettled
  // nodes before the LCS sees it: the settled region is invisible to the
  // chain algebra, so LCS cost tracks the edit, not the document. A node's
  // chain is processed exactly once, so filtering against the growing `m`
  // is filtering against the seed for that chain.
  const bool extend = seed != nullptr;
  std::vector<NodeId> f1;
  std::vector<NodeId> f2;
  auto unsettled = [&m](const std::vector<NodeId>& chain, bool first,
                        std::vector<NodeId>* out) -> const std::vector<NodeId>& {
    out->clear();
    for (NodeId v : chain) {
      if (first ? !m.HasT1(v) : !m.HasT2(v)) out->push_back(v);
    }
    return *out;
  };

  // Step 2: leaf labels first (the internal criterion needs leaf matches).
  // Exhaustion mid-way returns the partial matching built so far; callers
  // detect it via the budget itself.
  const Budget* budget = eval.budget();
  for (LabelId label : ordered_labels(index1.LeafChains(),
                                      index2.LeafChains())) {
    if (!BudgetCheckNow(budget)) break;
    const std::vector<NodeId>& s1 =
        extend ? unsettled(index1.LeafChain(label), true, &f1)
               : index1.LeafChain(label);
    const std::vector<NodeId>& s2 =
        extend ? unsettled(index2.LeafChain(label), false, &f2)
               : index2.LeafChain(label);
    MatchChain(s1, s2, /*leaves=*/true, eval, fallback_limit_k, &m);
  }
  // Step 3: internal labels.
  for (LabelId label : ordered_labels(index1.InternalChains(),
                                      index2.InternalChains())) {
    if (!BudgetCheckNow(budget)) break;
    const std::vector<NodeId>& s1 =
        extend ? unsettled(index1.InternalChain(label), true, &f1)
               : index1.InternalChain(label);
    const std::vector<NodeId>& s2 =
        extend ? unsettled(index2.InternalChain(label), false, &f2)
               : index2.InternalChain(label);
    MatchChain(s1, s2, /*leaves=*/false, eval, fallback_limit_k, &m);
  }
  return m;
}

}  // namespace treediff
