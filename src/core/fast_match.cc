#include "core/fast_match.h"

#include <algorithm>
#include <map>
#include <vector>

#include "lcs/lcs.h"

namespace treediff {

namespace {

/// Document-order chain of nodes with one label and one structural kind
/// (leaf or internal); the paper's chain_T(l).
struct Chain {
  std::vector<NodeId> t1_nodes;
  std::vector<NodeId> t2_nodes;
};

/// Runs steps 2a-2e of Figure 11 on one label chain: LCS first, then the
/// Match-style scan over the leftovers.
void MatchChain(const Chain& chain, bool leaves,
                const CriteriaEvaluator& eval, int fallback_limit_k,
                Matching* m) {
  const Budget* budget = eval.budget();
  const auto& s1 = chain.t1_nodes;
  const auto& s2 = chain.t2_nodes;
  if (!BudgetChargeNodes(budget, s1.size() + s2.size())) return;
  auto equal = [&](NodeId x, NodeId y) {
    // Once the budget trips, the whole matching will be discarded by the
    // degradation ladder — but the LCS in flight cannot be aborted from its
    // equality callback. Answering "equal" makes Myers snake straight down
    // the diagonal, so it terminates in O(s1 + s2) instead of grinding out a
    // full-divergence run. The bogus pairs it yields are still label-legal
    // (a chain holds one label) and are thrown away with the rest.
    if (!BudgetOk(budget)) return true;
    return leaves ? eval.LeafEqual(x, y) : eval.InternalEqual(x, y, *m);
  };

  // Step 2c: lcs <- LCS(S1, S2, equal).
  std::vector<LcsPair> lcs =
      Lcs(static_cast<int>(s1.size()), static_cast<int>(s2.size()),
          [&](int i, int j) {
            return equal(s1[static_cast<size_t>(i)],
                         s2[static_cast<size_t>(j)]);
          });

  // Step 2d: adopt the LCS pairs.
  for (const LcsPair& p : lcs) {
    m->Add(s1[static_cast<size_t>(p.a_index)],
           s2[static_cast<size_t>(p.b_index)]);
  }

  // Step 2e: pair remaining unmatched nodes as in Algorithm Match. With a
  // positive fallback limit (the A(k) trade-off), each node examines at
  // most k candidates.
  for (NodeId x : s1) {
    if (!BudgetCheck(budget)) return;
    if (m->HasT1(x)) continue;
    int examined = 0;
    for (NodeId y : s2) {
      if (!BudgetCheck(budget)) return;
      if (m->HasT2(y)) continue;
      if (fallback_limit_k > 0 && ++examined > fallback_limit_k) break;
      if (equal(x, y)) {
        m->Add(x, y);
        break;
      }
    }
  }
}

}  // namespace

Matching ComputeFastMatch(const Tree& t1, const Tree& t2,
                          const CriteriaEvaluator& eval,
                          const LabelSchema* schema, int fallback_limit_k) {
  Matching m(t1.id_bound(), t2.id_bound());

  // Build per-(label, kind) chains in document order. std::map keeps label
  // iteration deterministic.
  std::map<LabelId, Chain> leaf_chains;
  std::map<LabelId, Chain> internal_chains;
  for (NodeId x : t1.PreOrder()) {
    auto& chains = t1.IsLeaf(x) ? leaf_chains : internal_chains;
    chains[t1.label(x)].t1_nodes.push_back(x);
  }
  for (NodeId y : t2.PreOrder()) {
    auto& chains = t2.IsLeaf(y) ? leaf_chains : internal_chains;
    chains[t2.label(y)].t2_nodes.push_back(y);
  }

  auto ordered_labels = [&](const std::map<LabelId, Chain>& chains) {
    std::vector<LabelId> labels;
    labels.reserve(chains.size());
    for (const auto& [label, chain] : chains) labels.push_back(label);
    if (schema != nullptr) {
      std::stable_sort(labels.begin(), labels.end(),
                       [&](LabelId a, LabelId b) {
                         return schema->Rank(a) < schema->Rank(b);
                       });
    }
    return labels;
  };

  // Step 2: leaf labels first (the internal criterion needs leaf matches).
  // Exhaustion mid-way returns the partial matching built so far; callers
  // detect it via the budget itself.
  const Budget* budget = eval.budget();
  for (LabelId label : ordered_labels(leaf_chains)) {
    if (!BudgetCheckNow(budget)) break;
    MatchChain(leaf_chains[label], /*leaves=*/true, eval, fallback_limit_k, &m);
  }
  // Step 3: internal labels.
  for (LabelId label : ordered_labels(internal_chains)) {
    if (!BudgetCheckNow(budget)) break;
    MatchChain(internal_chains[label], /*leaves=*/false, eval, fallback_limit_k, &m);
  }
  return m;
}

}  // namespace treediff
