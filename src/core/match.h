#ifndef TREEDIFF_CORE_MATCH_H_
#define TREEDIFF_CORE_MATCH_H_

#include "core/criteria.h"
#include "core/matching.h"
#include "tree/tree.h"

namespace treediff {

/// Algorithm Match (Section 5.2, Figure 10): the simple O(n^2 c + mn)
/// matching algorithm. Proceeds bottom-up over T1 (so leaves are matched
/// before the internal-node criterion is evaluated); each unmatched T1 node
/// is compared against the unmatched T2 nodes with the same label, and the
/// first equal candidate is taken.
///
/// Under Matching Criteria 1-3 and the acyclic-labels condition the result
/// is the unique maximal matching (Theorem 5.2), so "first equal candidate"
/// is unambiguous; without Criterion 3 the result is a correct but possibly
/// sub-optimal matching.
///
/// `eval` carries the thresholds, the comparator, and the instrumentation
/// counters; it must have been built over the same (t1, t2).
///
/// `seed`, when non-null, is the pre-matched region (the share-map
/// pre-pass's wholesale pairs): the returned matching extends a copy of it,
/// and settled nodes on either side are skipped rather than re-derived.
Matching ComputeMatch(const Tree& t1, const Tree& t2,
                      const CriteriaEvaluator& eval,
                      const Matching* seed = nullptr);

}  // namespace treediff

#endif  // TREEDIFF_CORE_MATCH_H_
