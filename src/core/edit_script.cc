#include "core/edit_script.h"

#include <utility>

namespace treediff {

const char* EditOpKindName(EditOpKind kind) {
  switch (kind) {
    case EditOpKind::kInsert:
      return "INS";
    case EditOpKind::kDelete:
      return "DEL";
    case EditOpKind::kUpdate:
      return "UPD";
    case EditOpKind::kMove:
      return "MOV";
  }
  return "???";
}

EditOp EditOp::Insert(NodeId node, LabelId label, std::string value,
                      NodeId parent, int position) {
  EditOp op;
  op.kind = EditOpKind::kInsert;
  op.node = node;
  op.label = label;
  op.value = std::move(value);
  op.parent = parent;
  op.position = position;
  op.cost = 1.0;
  return op;
}

EditOp EditOp::Delete(NodeId node) {
  EditOp op;
  op.kind = EditOpKind::kDelete;
  op.node = node;
  op.cost = 1.0;
  return op;
}

EditOp EditOp::Update(NodeId node, std::string value, double cost) {
  EditOp op;
  op.kind = EditOpKind::kUpdate;
  op.node = node;
  op.value = std::move(value);
  op.cost = cost;
  return op;
}

EditOp EditOp::Move(NodeId node, NodeId parent, int position) {
  EditOp op;
  op.kind = EditOpKind::kMove;
  op.node = node;
  op.parent = parent;
  op.position = position;
  op.cost = 1.0;
  return op;
}

std::string EditOp::ToString(const LabelTable& labels) const {
  std::string out = EditOpKindName(kind);
  switch (kind) {
    case EditOpKind::kInsert:
      out.append("((");
      out.append(std::to_string(node));
      out.append(", ");
      out.append(labels.Name(label));
      out.append(", \"");
      out.append(value);
      out.append("\"), ");
      out.append(std::to_string(parent));
      out.append(", ");
      out.append(std::to_string(position));
      out.append(")");
      break;
    case EditOpKind::kDelete:
      out.append("(");
      out.append(std::to_string(node));
      out.append(")");
      break;
    case EditOpKind::kUpdate:
      out.append("(");
      out.append(std::to_string(node));
      out.append(", \"");
      out.append(value);
      out.append("\")");
      break;
    case EditOpKind::kMove:
      out.append("(");
      out.append(std::to_string(node));
      out.append(", ");
      out.append(std::to_string(parent));
      out.append(", ");
      out.append(std::to_string(position));
      out.append(")");
      break;
  }
  return out;
}

void EditScript::Append(EditOp op) {
  total_cost_ += op.cost;
  ++counts_[static_cast<int>(op.kind)];
  ops_.push_back(std::move(op));
}

Status EditScript::ApplyTo(Tree* tree) const {
  for (const EditOp& op : ops_) {
    switch (op.kind) {
      case EditOpKind::kInsert: {
        // An insert whose recorded id names a dead slot revives that node —
        // this is how inverse scripts (InvertScript) undo deletions while
        // preserving node identity.
        if (op.node >= 0 && static_cast<size_t>(op.node) < tree->id_bound() &&
            !tree->Alive(op.node)) {
          TREEDIFF_RETURN_IF_ERROR(
              tree->ReviveLeaf(op.node, op.parent, op.position));
          TREEDIFF_RETURN_IF_ERROR(tree->UpdateValue(op.node, op.value));
          break;
        }
        StatusOr<NodeId> id =
            tree->InsertLeaf(op.label, op.value, op.parent, op.position);
        if (!id.ok()) return id.status();
        if (*id != op.node) {
          return Status::FailedPrecondition(
              "insert allocated id " + std::to_string(*id) +
              " but the script recorded " + std::to_string(op.node) +
              "; was the script generated against this tree?");
        }
        break;
      }
      case EditOpKind::kDelete:
        TREEDIFF_RETURN_IF_ERROR(tree->DeleteLeaf(op.node));
        break;
      case EditOpKind::kUpdate:
        TREEDIFF_RETURN_IF_ERROR(tree->UpdateValue(op.node, op.value));
        break;
      case EditOpKind::kMove:
        TREEDIFF_RETURN_IF_ERROR(
            tree->MoveSubtree(op.node, op.parent, op.position));
        break;
    }
  }
  return Status::Ok();
}

std::string EditScript::ToString(const LabelTable& labels) const {
  std::string out;
  for (const EditOp& op : ops_) {
    out += op.ToString(labels);
    out += "\n";
  }
  return out;
}

StatusOr<EditScript> InvertScript(const EditScript& script,
                                  const Tree& tree) {
  Tree work = tree.Clone();
  std::vector<EditOp> reversed;
  reversed.reserve(script.size());

  for (const EditOp& op : script.ops()) {
    switch (op.kind) {
      case EditOpKind::kInsert: {
        reversed.push_back(EditOp::Delete(op.node));
        break;
      }
      case EditOpKind::kDelete: {
        if (!work.Alive(op.node)) {
          return Status::FailedPrecondition(
              "invert: delete of a node that is not live");
        }
        const NodeId parent = work.parent(op.node);
        const int position = work.ChildIndex(op.node) + 1;
        reversed.push_back(EditOp::Insert(op.node, work.label(op.node),
                                          work.value(op.node), parent,
                                          position));
        break;
      }
      case EditOpKind::kUpdate: {
        if (!work.Alive(op.node)) {
          return Status::FailedPrecondition(
              "invert: update of a node that is not live");
        }
        reversed.push_back(
            EditOp::Update(op.node, work.value(op.node), op.cost));
        break;
      }
      case EditOpKind::kMove: {
        if (!work.Alive(op.node)) {
          return Status::FailedPrecondition(
              "invert: move of a node that is not live");
        }
        const NodeId old_parent = work.parent(op.node);
        const int old_position = work.ChildIndex(op.node) + 1;
        reversed.push_back(EditOp::Move(op.node, old_parent, old_position));
        break;
      }
    }
    // Keep the working tree in lockstep so later inverses see the right
    // pre-state.
    EditScript single;
    single.Append(op);
    TREEDIFF_RETURN_IF_ERROR(single.ApplyTo(&work));
  }

  EditScript inverse;
  for (auto it = reversed.rbegin(); it != reversed.rend(); ++it) {
    inverse.Append(std::move(*it));
  }
  return inverse;
}

}  // namespace treediff
