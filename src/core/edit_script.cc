#include "core/edit_script.h"

#include <utility>

namespace treediff {

const char* EditOpKindName(EditOpKind kind) {
  switch (kind) {
    case EditOpKind::kInsert:
      return "INS";
    case EditOpKind::kDelete:
      return "DEL";
    case EditOpKind::kUpdate:
      return "UPD";
    case EditOpKind::kMove:
      return "MOV";
  }
  return "???";
}

EditOp EditOp::Insert(NodeId node, LabelId label, std::string value,
                      NodeId parent, int position) {
  EditOp op;
  op.kind = EditOpKind::kInsert;
  op.node = node;
  op.label = label;
  op.value = std::move(value);
  op.parent = parent;
  op.position = position;
  op.cost = 1.0;
  return op;
}

EditOp EditOp::Delete(NodeId node) {
  EditOp op;
  op.kind = EditOpKind::kDelete;
  op.node = node;
  op.cost = 1.0;
  return op;
}

EditOp EditOp::Update(NodeId node, std::string value, double cost) {
  EditOp op;
  op.kind = EditOpKind::kUpdate;
  op.node = node;
  op.value = std::move(value);
  op.cost = cost;
  return op;
}

EditOp EditOp::Move(NodeId node, NodeId parent, int position) {
  EditOp op;
  op.kind = EditOpKind::kMove;
  op.node = node;
  op.parent = parent;
  op.position = position;
  op.cost = 1.0;
  return op;
}

std::string EditOp::ToString(const LabelTable& labels) const {
  std::string out = EditOpKindName(kind);
  switch (kind) {
    case EditOpKind::kInsert:
      out.append("((");
      out.append(std::to_string(node));
      out.append(", ");
      out.append(labels.Name(label));
      out.append(", \"");
      out.append(value);
      out.append("\"), ");
      out.append(std::to_string(parent));
      out.append(", ");
      out.append(std::to_string(position));
      out.append(")");
      break;
    case EditOpKind::kDelete:
      out.append("(");
      out.append(std::to_string(node));
      out.append(")");
      break;
    case EditOpKind::kUpdate:
      out.append("(");
      out.append(std::to_string(node));
      out.append(", \"");
      out.append(value);
      out.append("\")");
      break;
    case EditOpKind::kMove:
      out.append("(");
      out.append(std::to_string(node));
      out.append(", ");
      out.append(std::to_string(parent));
      out.append(", ");
      out.append(std::to_string(position));
      out.append(")");
      break;
  }
  return out;
}

void EditScript::Append(EditOp op) {
  total_cost_ += op.cost;
  ++counts_[static_cast<int>(op.kind)];
  ops_.push_back(std::move(op));
}

namespace {

/// Replays one undo-log entry. Undo inserts always name an existing dead
/// slot (they reverse a delete of this apply), so they take the revive path.
Status ApplyUndoOp(Tree* tree, const EditOp& op) {
  switch (op.kind) {
    case EditOpKind::kInsert:
      TREEDIFF_RETURN_IF_ERROR(
          tree->ReviveLeaf(op.node, op.parent, op.position));
      return tree->UpdateValue(op.node, op.value);
    case EditOpKind::kDelete:
      return tree->DeleteLeaf(op.node);
    case EditOpKind::kUpdate:
      return tree->UpdateValue(op.node, op.value);
    case EditOpKind::kMove:
      return tree->MoveSubtree(op.node, op.parent, op.position);
  }
  return Status::Internal("unknown undo op kind");
}

}  // namespace

Status EditScript::ApplyTo(Tree* tree, const Budget* budget) const {
  // Validate-then-apply with an undo log: each op records its inverse (from
  // the pre-op state) right after it succeeds; on any failure the log is
  // replayed backwards and the arena tail minted by rolled-back inserts is
  // popped, leaving the tree indistinguishable from its pre-apply state.
  const size_t pre_bound = tree->id_bound();
  std::vector<EditOp> undo;
  undo.reserve(ops_.size());
  Status failure;
  size_t fail_index = 0;

  for (size_t i = 0; i < ops_.size(); ++i) {
    const EditOp& op = ops_[i];
    fail_index = i;
    if (!BudgetChargeNodes(budget)) {
      failure = BudgetStatus(budget);
      break;
    }
    switch (op.kind) {
      case EditOpKind::kInsert: {
        // An insert whose recorded id names a dead slot revives that node —
        // this is how inverse scripts (InvertScript) undo deletions while
        // preserving node identity.
        if (op.node >= 0 && static_cast<size_t>(op.node) < tree->id_bound() &&
            !tree->Alive(op.node)) {
          std::string dead_value = tree->value(op.node);
          failure = tree->ReviveLeaf(op.node, op.parent, op.position);
          if (!failure.ok()) break;
          undo.push_back(EditOp::Delete(op.node));
          failure = tree->UpdateValue(op.node, op.value);
          if (!failure.ok()) break;
          undo.push_back(
              EditOp::Update(op.node, std::move(dead_value), 0.0));
          break;
        }
        StatusOr<NodeId> id =
            tree->InsertLeaf(op.label, op.value, op.parent, op.position);
        if (!id.ok()) {
          failure = id.status();
          break;
        }
        undo.push_back(EditOp::Delete(*id));
        if (*id != op.node) {
          failure = Status::FailedPrecondition(
              "insert allocated id " + std::to_string(*id) +
              " but the script recorded " + std::to_string(op.node) +
              "; was the script generated against this tree?");
        }
        break;
      }
      case EditOpKind::kDelete: {
        if (!tree->Alive(op.node)) {
          failure = Status::InvalidArgument("delete: node is not live");
          break;
        }
        const NodeId del_parent = tree->parent(op.node);
        EditOp inverse = EditOp::Insert(
            op.node, tree->label(op.node), tree->value(op.node), del_parent,
            del_parent == kInvalidNode ? 1 : tree->ChildIndex(op.node) + 1);
        failure = tree->DeleteLeaf(op.node);
        if (failure.ok()) undo.push_back(std::move(inverse));
        break;
      }
      case EditOpKind::kUpdate: {
        if (!tree->Alive(op.node)) {
          failure = Status::InvalidArgument("update: node is not live");
          break;
        }
        EditOp inverse = EditOp::Update(op.node, tree->value(op.node), 0.0);
        failure = tree->UpdateValue(op.node, op.value);
        if (failure.ok()) undo.push_back(std::move(inverse));
        break;
      }
      case EditOpKind::kMove: {
        if (!tree->Alive(op.node)) {
          failure = Status::InvalidArgument("move: node is not live");
          break;
        }
        EditOp inverse = EditOp::Move(op.node, tree->parent(op.node),
                                      tree->ChildIndex(op.node) + 1);
        failure = tree->MoveSubtree(op.node, op.parent, op.position);
        if (failure.ok()) undo.push_back(std::move(inverse));
        break;
      }
    }
    if (!failure.ok()) break;
  }
  if (failure.ok()) return Status::Ok();

  // Roll back. A replay failure would mean the undo log itself is wrong —
  // an internal bug, not a property of the input script.
  for (auto it = undo.rbegin(); it != undo.rend(); ++it) {
    Status st = ApplyUndoOp(tree, *it);
    if (!st.ok()) {
      return Status::Internal("rollback failed (" + st.message() +
                              ") after op " + std::to_string(fail_index) +
                              " failed: " + failure.message());
    }
  }
  Status trunc = tree->TruncateDeadTail(pre_bound);
  if (!trunc.ok()) {
    return Status::Internal("rollback truncation failed: " + trunc.message());
  }
  return Status(failure.code(),
                "op " + std::to_string(fail_index) + " [" +
                    ops_[fail_index].ToString(tree->labels()) +
                    "] failed, tree rolled back: " + failure.message());
}

std::string EditScript::ToString(const LabelTable& labels) const {
  std::string out;
  for (const EditOp& op : ops_) {
    out += op.ToString(labels);
    out += "\n";
  }
  return out;
}

StatusOr<EditScript> InvertScript(const EditScript& script,
                                  const Tree& tree) {
  Tree work = tree.Clone();
  std::vector<EditOp> reversed;
  reversed.reserve(script.size());

  for (const EditOp& op : script.ops()) {
    switch (op.kind) {
      case EditOpKind::kInsert: {
        reversed.push_back(EditOp::Delete(op.node));
        break;
      }
      case EditOpKind::kDelete: {
        if (!work.Alive(op.node)) {
          return Status::FailedPrecondition(
              "invert: delete of a node that is not live");
        }
        const NodeId parent = work.parent(op.node);
        const int position = work.ChildIndex(op.node) + 1;
        reversed.push_back(EditOp::Insert(op.node, work.label(op.node),
                                          work.value(op.node), parent,
                                          position));
        break;
      }
      case EditOpKind::kUpdate: {
        if (!work.Alive(op.node)) {
          return Status::FailedPrecondition(
              "invert: update of a node that is not live");
        }
        reversed.push_back(
            EditOp::Update(op.node, work.value(op.node), op.cost));
        break;
      }
      case EditOpKind::kMove: {
        if (!work.Alive(op.node)) {
          return Status::FailedPrecondition(
              "invert: move of a node that is not live");
        }
        const NodeId old_parent = work.parent(op.node);
        const int old_position = work.ChildIndex(op.node) + 1;
        reversed.push_back(EditOp::Move(op.node, old_parent, old_position));
        break;
      }
    }
    // Keep the working tree in lockstep so later inverses see the right
    // pre-state.
    EditScript single;
    single.Append(op);
    TREEDIFF_RETURN_IF_ERROR(single.ApplyTo(&work));
  }

  EditScript inverse;
  for (auto it = reversed.rbegin(); it != reversed.rend(); ++it) {
    inverse.Append(std::move(*it));
  }
  return inverse;
}

}  // namespace treediff
