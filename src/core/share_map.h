#ifndef TREEDIFF_CORE_SHARE_MAP_H_
#define TREEDIFF_CORE_SHARE_MAP_H_

#include <cstddef>
#include <cstdint>
#include <unordered_map>
#include <utility>
#include <vector>

#include "core/diff_context.h"
#include "core/matching.h"
#include "tree/tree.h"
#include "tree/tree_index.h"

namespace treediff {

/// Exact subtree equality (labels, values, sibling order) — the collision
/// guard behind every fingerprint bucket. Both trees must share one
/// LabelTable (checked by the pipeline entry points).
bool SubtreesIdentical(const Tree& t1, NodeId x, const Tree& t2, NodeId y);

/// Matches every node of two identical subtrees pairwise. The subtrees must
/// satisfy SubtreesIdentical and both sides must be entirely unmatched.
void MatchSubtreePair(const Tree& t1, NodeId x, const Tree& t2, NodeId y,
                      Matching* m);

/// Per-run counters of the share-map pre-pass, surfaced in
/// DiffResult::report and the service metrics registry.
struct ShareStats {
  /// T1 subtrees probed against the other tree (indexed mode: share-map
  /// lookups; reference mode: document-order scans).
  size_t lookups = 0;

  /// Wholesale subtree pairs the pre-pass settled.
  size_t settled_subtrees = 0;

  /// Nodes covered by those pairs (per side).
  size_t settled_nodes = 0;

  /// Candidates whose fingerprint (or cheap filters, in reference mode)
  /// agreed but whose actual subtree comparison did not — the hash clashes
  /// the verification discipline exists to absorb.
  size_t collisions = 0;
};

/// The per-diff share-map: combined subtree fingerprint (TreeIndex::
/// SubtreeHash — structural and literal hashes mixed) -> the T2 nodes
/// carrying it, in document order. Lookups answer "which new-tree subtrees
/// could be byte-identical to this old-tree subtree" in O(1); the caller
/// must re-verify every candidate with SubtreesIdentical, so a fingerprint
/// collision can never place a wrong pair in the matching.
class ShareMap {
 public:
  /// Builds the map over every live node of the indexed tree. Forces the
  /// index's fingerprint tier.
  static ShareMap Build(const TreeIndex& index);

  /// Document-order nodes whose subtree fingerprint is `fingerprint`, or
  /// null when the map holds none.
  const std::vector<NodeId>* Candidates(uint64_t fingerprint) const {
    auto it = buckets_.find(fingerprint);
    return it == buckets_.end() ? nullptr : &it->second;
  }

  /// Appends `y` to the bucket of `fingerprint` without hashing any
  /// subtree. Exists so tests can plant a deliberate "collision" (a node
  /// whose subtree does NOT hash to the bucket it sits in) and prove the
  /// verification step rejects it.
  void AddForTest(uint64_t fingerprint, NodeId y) {
    buckets_[fingerprint].push_back(y);
  }

  size_t bucket_count() const { return buckets_.size(); }

 private:
  std::unordered_map<uint64_t, std::vector<NodeId>> buckets_;
};

/// The pruned-matching pre-pass: walks T1 top-down and wholesale-matches
/// every maximal subtree that has a byte-identical, still-unmatched twin in
/// T2, greedily in document order on both sides. Roots are never settled
/// (the generator owns the root pairing). Returns the seed matching the
/// matcher ladder extends; `settled` (optional) receives the wholesale
/// subtree root pairs for the script generator's interior-skipping.
///
/// The decision rule — "pair x with the first non-root T2 node in document
/// order whose subtree is identical and entirely unmatched (no earlier,
/// smaller settle inside it)" — is fixed; `use_share_map`
/// only selects how candidates are found. true (kIndexed) probes the
/// share-map built over ctx.index2() and verifies each candidate; false
/// (kReference) scans T2 in document order behind cheap scalar filters
/// (label, subtree size, leaf count) and compares directly. Identical
/// subtrees always share a fingerprint and buckets preserve document order,
/// so both implementations settle the exact same pairs — the property the
/// pruned-vs-unpruned byte-identity tests pin down.
Matching PrematchSharedSubtrees(
    const DiffContext& ctx, bool use_share_map, ShareStats* stats,
    std::vector<std::pair<NodeId, NodeId>>* settled = nullptr);

/// Drops from `settled` every subtree pair that is no longer wholly intact
/// in `m` (the post-matching repair passes may re-pair nodes inside a
/// settled region). The generator may only skip interiors that are still
/// perfectly paired, so the settled list must be re-validated after any
/// pass that edits the matching.
void FilterIntactSettled(const Tree& t1, const Tree& t2, const Matching& m,
                         std::vector<std::pair<NodeId, NodeId>>* settled);

}  // namespace treediff

#endif  // TREEDIFF_CORE_SHARE_MAP_H_
