#ifndef TREEDIFF_CORE_DELTA_QUERY_H_
#define TREEDIFF_CORE_DELTA_QUERY_H_

#include <functional>
#include <string>
#include <vector>

#include "core/delta_tree.h"
#include "tree/label.h"

namespace treediff {

/// Query and browsing facilities over delta trees — the Section 9 direction
/// ("designing and implementing query, browsing, and active rule languages
/// for hierarchical data based on our edit scripts and delta trees").
/// A DeltaQuery selects delta nodes by annotation, label, and position, and
/// reports change summaries per subtree; ActiveRules fire user predicates on
/// matching changes (the warehouse-trigger scenario of the introduction).

/// A bitmask of annotations (1 << static_cast<int>(DeltaAnnotation)).
using AnnotationMask = unsigned;

/// Mask helpers.
constexpr AnnotationMask MaskOf(DeltaAnnotation ann) {
  return 1u << static_cast<unsigned>(ann);
}
inline constexpr AnnotationMask kAnyChange =
    MaskOf(DeltaAnnotation::kUpdated) | MaskOf(DeltaAnnotation::kInserted) |
    MaskOf(DeltaAnnotation::kDeleted) | MaskOf(DeltaAnnotation::kMoved) |
    MaskOf(DeltaAnnotation::kMoveMarker);

/// One query hit: the delta node index and its path from the root, rendered
/// as "label[i]/label[j]/..." with sibling ordinals.
struct DeltaHit {
  int node = -1;
  std::string path;
};

/// Selects the delta nodes whose annotation is in `mask` (and, if `label`
/// is not kInvalidLabel, whose label matches), in document order. A node
/// whose value was updated counts as kUpdated even when its positional
/// annotation is kMoveMarker.
std::vector<DeltaHit> SelectChanges(const DeltaTree& delta,
                                    const LabelTable& labels,
                                    AnnotationMask mask,
                                    LabelId label = kInvalidLabel);

/// Per-subtree change counts, the "browsing" summary: how many inserts /
/// deletes / updates / moves occurred at or below each delta node.
struct ChangeSummary {
  size_t inserted = 0;
  size_t deleted = 0;
  size_t updated = 0;
  size_t moved = 0;  // Counted once per move (markers, not tombstones).

  size_t total() const { return inserted + deleted + updated + moved; }
};

/// Computes the summary for the subtree rooted at delta node `index` (the
/// whole delta when index is the root).
ChangeSummary SummarizeSubtree(const DeltaTree& delta, int index);

/// Renders a browsable change report: one line per *changed region* (a
/// maximal changed subtree), with its path and summary. Unchanged regions
/// are elided — the "browsing over changes" use case.
std::string RenderChangeReport(const DeltaTree& delta,
                               const LabelTable& labels);

/// An active rule (the introduction's warehouse/trigger scenario): fires
/// once per delta node whose annotation is in `mask` and whose label
/// matches (kInvalidLabel = any). `condition`, if set, further filters on
/// the node. Matches are delivered to the callback with their path.
struct ActiveRule {
  std::string name;
  AnnotationMask mask = kAnyChange;
  LabelId label = kInvalidLabel;
  std::function<bool(const DeltaNode&)> condition;
};

/// One rule firing.
struct RuleFiring {
  const ActiveRule* rule = nullptr;
  DeltaHit hit;
};

/// Evaluates every rule against the delta; firings are ordered by document
/// position, then by rule order.
std::vector<RuleFiring> EvaluateRules(const DeltaTree& delta,
                                      const LabelTable& labels,
                                      const std::vector<ActiveRule>& rules);

}  // namespace treediff

#endif  // TREEDIFF_CORE_DELTA_QUERY_H_
