#ifndef TREEDIFF_CORE_KEYED_MATCH_H_
#define TREEDIFF_CORE_KEYED_MATCH_H_

#include <functional>
#include <optional>
#include <string>

#include "core/criteria.h"
#include "core/matching.h"
#include "tree/tree.h"

namespace treediff {

/// Extracts the key of a node, or nullopt for keyless nodes. Keys need only
/// be unique per (tree, label); different labels live in different key
/// spaces.
using KeyFn =
    std::function<std::optional<std::string>(const Tree&, NodeId)>;

/// The keyed fast path the paper describes in Sections 1 and 5: "if the
/// information we are comparing does have unique identifiers, then our
/// algorithms can take advantage of them to quickly match fragments".
///
/// Nodes whose keys agree (same label, same key, same structural kind) are
/// matched directly in O(n) — one hash lookup per node, zero compare()
/// calls. Keyless nodes (and keyed nodes whose key disappeared) are left to
/// the value-based algorithms: pass the result as the starting matching of
/// ComputeHybridMatch, which runs FastMatch over the remainder.
///
/// Duplicate keys on either side are treated as keyless (the guarantee is
/// void), so the result is always a valid one-to-one matching.
///
/// All three entry points accept an optional `seed` — the pre-matched
/// region from the share-map pre-pass (core/share_map.h). The result
/// extends a copy of the seed and never re-derives or contradicts a settled
/// pair: keyed pairs that would collide with the seed are dropped.
Matching ComputeKeyedMatch(const Tree& t1, const Tree& t2,
                           const KeyFn& key_fn,
                           const Matching* seed = nullptr);

/// Keyed pre-pass + FastMatch over the unkeyed remainder. The returned
/// matching contains every keyed pair plus the criteria-based pairs for the
/// rest; suitable as input to GenerateEditScript.
Matching ComputeHybridMatch(const Tree& t1, const Tree& t2,
                            const KeyFn& key_fn,
                            const CriteriaEvaluator& eval,
                            const Matching* seed = nullptr);

/// A ready-made KeyFn for values of the form "key=K ...": nodes whose value
/// starts with "key=" are keyed by the token following it. Mirrors how
/// database dumps carry row identifiers inline.
std::optional<std::string> ValuePrefixKey(const Tree& tree, NodeId node);

/// A cheap purely structural matcher used as the degradation ladder's
/// next-to-last rung (core/diff.h): no value comparisons, no criteria
/// evaluation, O(n log n) worst case, so it runs to completion even when a
/// Budget has already exhausted.
///
///  1. Identical subtrees (labels, values, shapes) are matched greedily in
///     document order via bottom-up subtree hashing, all descendants at once.
///  2. Leftover leaves are matched by exact (label, value) in document order.
///  3. Leftover internal nodes are matched by label in document order.
///
/// The result is a valid matching for GenerateEditScript (labels of every
/// pair agree) but can be far from minimal — unlike FastMatch it never pays
/// for near-miss matches, so heavily edited nodes become delete+insert.
Matching ComputeStructuralMatch(const Tree& t1, const Tree& t2,
                                const Matching* seed = nullptr);

}  // namespace treediff

#endif  // TREEDIFF_CORE_KEYED_MATCH_H_
