#include "core/matching.h"

#include <cassert>

namespace treediff {

Matching::Matching(size_t t1_id_bound, size_t t2_id_bound)
    : t1_to_t2_(t1_id_bound, kInvalidNode),
      t2_to_t1_(t2_id_bound, kInvalidNode) {}

void Matching::Add(NodeId x, NodeId y) {
  assert(x >= 0 && static_cast<size_t>(x) < t1_to_t2_.size());
  assert(y >= 0 && static_cast<size_t>(y) < t2_to_t1_.size());
  assert(t1_to_t2_[static_cast<size_t>(x)] == kInvalidNode &&
         "T1 node already matched");
  assert(t2_to_t1_[static_cast<size_t>(y)] == kInvalidNode &&
         "T2 node already matched");
  t1_to_t2_[static_cast<size_t>(x)] = y;
  t2_to_t1_[static_cast<size_t>(y)] = x;
  ++size_;
}

void Matching::Remove(NodeId x, NodeId y) {
  assert(Contains(x, y));
  t1_to_t2_[static_cast<size_t>(x)] = kInvalidNode;
  t2_to_t1_[static_cast<size_t>(y)] = kInvalidNode;
  --size_;
}

void Matching::EnsureT1Bound(size_t bound) {
  if (bound > t1_to_t2_.size()) t1_to_t2_.resize(bound, kInvalidNode);
}

std::vector<std::pair<NodeId, NodeId>> Matching::Pairs() const {
  std::vector<std::pair<NodeId, NodeId>> pairs;
  pairs.reserve(size_);
  for (size_t x = 0; x < t1_to_t2_.size(); ++x) {
    if (t1_to_t2_[x] != kInvalidNode) {
      pairs.emplace_back(static_cast<NodeId>(x), t1_to_t2_[x]);
    }
  }
  return pairs;
}

}  // namespace treediff
