#ifndef TREEDIFF_CORE_MATCHER_H_
#define TREEDIFF_CORE_MATCHER_H_

#include <optional>

#include "core/diff_context.h"
#include "core/matching.h"

namespace treediff {

/// What one rung of the ladder produced. An empty `matching` means the rung
/// declined — its budget pre-flight failed or the budget exhausted mid-run —
/// and the driver steps down to the next rung.
struct MatchResult {
  std::optional<Matching> matching;
};

/// One rung of the DiffRung degradation ladder (see diff_context.h). Every
/// matcher consumes the shared DiffContext — the per-tree TreeIndexes, the
/// resolved comparator, the criteria evaluator, and the budget — instead of
/// re-deriving per-tree state. Implementations are stateless singletons
/// owned by the registry; Run is const and callable concurrently on
/// *different* contexts (a single context is not thread-safe).
class Matcher {
 public:
  virtual ~Matcher() = default;

  /// Extends a partial matching over the unsettled regions of the trees.
  /// `seed` carries the pre-matched region — the share-map pre-pass's
  /// wholesale subtree pairs (core/share_map.h), or an empty matching for a
  /// whole-tree solve. Every pair of `seed` appears in the result; the
  /// matcher only works nodes the seed left unsettled, which is what makes
  /// re-diff cost proportional to the edit instead of the document.
  virtual MatchResult Run(const DiffContext& ctx,
                          const Matching& seed) const = 0;

  /// The rung this matcher implements.
  virtual DiffRung rung() const = 0;

  /// DiffRungName(rung()).
  const char* name() const { return DiffRungName(rung()); }
};

/// The registry: the ladder's implementation for a rung. Never null; the
/// returned matcher lives for the program. DiffTrees walks rungs from
/// DiffOptions::start_rung downward, calling each matcher until one returns
/// a matching (kTopLevelReplace always does).
const Matcher& MatcherForRung(DiffRung rung);

/// The kTopLevelReplace matching: roots only (when their labels agree). The
/// generated script deletes every other old node and inserts every new one.
/// Exposed for the driver's phase-2 fallback (generation tripping the budget
/// falls to this rung directly).
Matching RootOnlyMatching(const Tree& t1, const Tree& t2);

}  // namespace treediff

#endif  // TREEDIFF_CORE_MATCHER_H_
