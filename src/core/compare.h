#ifndef TREEDIFF_CORE_COMPARE_H_
#define TREEDIFF_CORE_COMPARE_H_

#include <cstddef>
#include <string>
#include <unordered_map>
#include <vector>

#include "tree/tree.h"

namespace treediff {

/// The paper's `compare` function (Section 3.2): given two nodes, returns a
/// distance in [0, 2] between their values. Distances <= 1 mean "similar
/// enough that move+update beats delete+insert"; distances > 1 mean the
/// opposite. Implementations must be symmetric in the values.
///
/// Calls are counted (the r1 term of the Section 8 cost model); counters are
/// mutable so that const evaluators can be instrumented.
class ValueComparator {
 public:
  virtual ~ValueComparator() = default;

  /// Returns the distance in [0, 2] between v(x) in `t1` and v(y) in `t2`.
  double Compare(const Tree& t1, NodeId x, const Tree& t2, NodeId y) const {
    ++calls_;
    return CompareImpl(t1, x, t2, y);
  }

  /// Number of Compare invocations since construction or ResetCalls.
  size_t calls() const { return calls_; }
  void ResetCalls() { calls_ = 0; }

 protected:
  virtual double CompareImpl(const Tree& t1, NodeId x, const Tree& t2,
                             NodeId y) const = 0;

 private:
  mutable size_t calls_ = 0;
};

/// Exact comparison: distance 0 when the values are byte-identical, 2
/// otherwise. The natural choice for keyed or atomic values.
class ExactComparator : public ValueComparator {
 protected:
  double CompareImpl(const Tree& t1, NodeId x, const Tree& t2,
                     NodeId y) const override;
};

/// The LaDiff sentence comparator (Section 7): computes the LCS of the words
/// of the two sentences and counts the words not in the LCS, normalized into
/// [0, 2] as (|a| + |b| - 2*|LCS|) / max(|a|, |b|). Identical sentences score
/// 0, disjoint sentences approach 2.
///
/// Tokenizations are memoized per (tree, node) because the matching
/// algorithms compare the same sentence against many candidates. The cache
/// assumes node values do not change between Compare calls; clear it (or use
/// a fresh comparator) after mutating a tree.
class WordLcsComparator : public ValueComparator {
 public:
  /// If `normalize_words` is true, words are lowercased and stripped of
  /// surrounding punctuation before comparison, so small editorial changes
  /// ("The," vs "the") do not register.
  explicit WordLcsComparator(bool normalize_words = false)
      : normalize_words_(normalize_words) {}

  /// Drops all memoized tokenizations.
  void ClearCache() const { cache_.clear(); }

 protected:
  double CompareImpl(const Tree& t1, NodeId x, const Tree& t2,
                     NodeId y) const override;

 private:
  const std::vector<std::string>& Tokens(const Tree& t, NodeId x) const;

  struct CacheKey {
    const Tree* tree;
    NodeId node;
    bool operator==(const CacheKey& o) const {
      return tree == o.tree && node == o.node;
    }
  };
  struct CacheKeyHash {
    size_t operator()(const CacheKey& k) const {
      return std::hash<const void*>()(k.tree) * 1000003u ^
             std::hash<int>()(k.node);
    }
  };

  bool normalize_words_;
  mutable std::unordered_map<CacheKey, std::vector<std::string>, CacheKeyHash>
      cache_;
};

/// Compares two raw strings with the word-LCS metric (the same arithmetic as
/// WordLcsComparator, without trees or caching). Exposed for tests and for
/// the document mark-up layer.
double WordLcsDistance(const std::string& a, const std::string& b,
                       bool normalize_words = false);

}  // namespace treediff

#endif  // TREEDIFF_CORE_COMPARE_H_
