#ifndef TREEDIFF_CORE_COMPARE_H_
#define TREEDIFF_CORE_COMPARE_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "tree/tree.h"

namespace treediff {

/// The paper's `compare` function (Section 3.2): given two nodes, returns a
/// distance in [0, 2] between their values. Distances <= 1 mean "similar
/// enough that move+update beats delete+insert"; distances > 1 mean the
/// opposite. Implementations must be symmetric in the values.
///
/// Calls are counted (the r1 term of the Section 8 cost model); counters are
/// mutable so that const evaluators can be instrumented. Counting happens in
/// the non-virtual Compare wrapper, before any memoization, so cached and
/// uncached invocations are indistinguishable to the counter.
class ValueComparator {
 public:
  /// Hit/miss statistics of the comparator's tokenization memo (zeros for
  /// comparators that do not tokenize). Surfaced in DiffResult::report.
  struct CacheStats {
    size_t tokenize_hits = 0;
    size_t tokenize_misses = 0;
  };

  virtual ~ValueComparator() = default;

  /// Returns the distance in [0, 2] between v(x) in `t1` and v(y) in `t2`.
  double Compare(const Tree& t1, NodeId x, const Tree& t2, NodeId y) const {
    ++calls_;
    return CompareImpl(t1, x, t2, y);
  }

  /// Number of Compare invocations since construction or ResetCalls.
  size_t calls() const { return calls_; }
  void ResetCalls() { calls_ = 0; }

  virtual CacheStats cache_stats() const { return {}; }

 protected:
  virtual double CompareImpl(const Tree& t1, NodeId x, const Tree& t2,
                             NodeId y) const = 0;

 private:
  mutable size_t calls_ = 0;
};

/// Exact comparison: distance 0 when the values are byte-identical, 2
/// otherwise. The natural choice for keyed or atomic values. When both trees
/// carry a TreeIndex, unequal value hashes answer "not equal" without
/// touching the strings.
class ExactComparator : public ValueComparator {
 protected:
  double CompareImpl(const Tree& t1, NodeId x, const Tree& t2,
                     NodeId y) const override;
};

/// The LaDiff sentence comparator (Section 7): computes the LCS of the words
/// of the two sentences and counts the words not in the LCS, normalized into
/// [0, 2] as (|a| + |b| - 2*|LCS|) / max(|a|, |b|). Identical sentences score
/// 0, disjoint sentences approach 2.
///
/// Three layers of memoization, all keyed by 64-bit value hashes (served
/// from an attached TreeIndex when present, recomputed otherwise):
///
///  * equality fast path — equal hashes short-circuit to a single string
///    compare; unequal hashes skip string equality entirely;
///  * tokenization memo — values tokenize once per distinct *content* (the
///    seed tokenized once per (tree, node), so identical sentences at
///    different nodes tokenized repeatedly). Words are interned to dense
///    int32 ids and each entry keeps a token -> positions map, so the LCS
///    length is computed by Hunt–Szymanski (LIS over match positions) in
///    O(|a| + r log r), where r is the number of matching position pairs.
///    Matching probes mostly compare unrelated sentences, for which r is
///    near zero — where Myers' O((|a| + |b|) * D) is at its quadratic
///    worst — and the LCS length (hence the distance) is exact either way;
///  * pair memo — the distance for an unordered pair of value hashes is
///    computed once, however many node pairs share that content.
///
/// Hash-keyed caching stays correct across value updates (a changed value
/// changes its hash) but, like any fingerprint scheme, trusts 64-bit hashes
/// not to collide. Compare() counting is unaffected by cache hits.
class WordLcsComparator : public ValueComparator {
 public:
  /// If `normalize_words` is true, words are lowercased and stripped of
  /// surrounding punctuation before comparison, so small editorial changes
  /// ("The," vs "the") do not register.
  explicit WordLcsComparator(bool normalize_words = false)
      : normalize_words_(normalize_words) {}

  /// Drops all memoized state (tokenizations, pair distances, the word
  /// interning table) and zeroes the cache counters.
  void ClearCache() const {
    token_cache_.clear();
    pair_cache_.clear();
    word_ids_.clear();
    stats_ = {};
  }

  CacheStats cache_stats() const override { return stats_; }

 protected:
  double CompareImpl(const Tree& t1, NodeId x, const Tree& t2,
                     NodeId y) const override;

 private:
  /// One memoized tokenization: the word-id sequence plus the ascending
  /// positions of each distinct id, for the Hunt–Szymanski LCS.
  struct TokenEntry {
    std::vector<int32_t> ids;
    std::unordered_map<int32_t, std::vector<int32_t>> positions;
  };

  /// Tokenizes v(x) (memoized by `value_hash`) into interned word ids.
  const TokenEntry& Tokens(const Tree& t, NodeId x, uint64_t value_hash) const;

  bool normalize_words_;
  mutable std::unordered_map<uint64_t, TokenEntry> token_cache_;
  mutable std::unordered_map<uint64_t, double> pair_cache_;
  mutable std::unordered_map<std::string, int32_t> word_ids_;
  mutable CacheStats stats_;
};

/// Compares two raw strings with the word-LCS metric (the same arithmetic as
/// WordLcsComparator, without trees or caching). Exposed for tests and for
/// the document mark-up layer.
double WordLcsDistance(const std::string& a, const std::string& b,
                       bool normalize_words = false);

}  // namespace treediff

#endif  // TREEDIFF_CORE_COMPARE_H_
