#ifndef TREEDIFF_CORE_FAST_MATCH_H_
#define TREEDIFF_CORE_FAST_MATCH_H_

#include "core/criteria.h"
#include "core/matching.h"
#include "tree/schema.h"
#include "tree/tree.h"

namespace treediff {

/// Algorithm FastMatch (Section 5.3, Figure 11). For each label l, the nodes
/// labeled l are chained in document order in both trees and an LCS of the
/// two chains (under the criteria equality) matches the nodes that appear in
/// the same relative order; only the leftovers fall back to the quadratic
/// Algorithm Match scan. When the trees are nearly alike — the common case —
/// almost everything is matched by the LCS pass, giving the
/// O((ne + e^2)c + 2lne) bound of Appendix B.
///
/// Leaf chains are processed before internal chains so that the
/// internal-node criterion (which counts matched leaf descendants) is
/// well-defined. If `schema` is non-null, labels are processed in ascending
/// schema rank for determinism; otherwise in label-id order.
///
/// `eval` carries thresholds, comparator, and instrumentation counters.
///
/// `fallback_limit_k` implements the paper's Section 9 "parameterized
/// algorithm A(k)": each node left unmatched by the LCS pass examines at
/// most k candidates in the quadratic fallback scan (0 = unlimited, the
/// exact Figure 11 behaviour). Smaller k bounds the worst case at the cost
/// of possibly missing out-of-order matches — a controlled
/// optimality-for-efficiency trade (the result is still a correct matching,
/// only potentially smaller).
/// `seed`, when non-null, is the pre-matched region (the share-map
/// pre-pass's wholesale pairs): the returned matching extends a copy of it,
/// and every label chain is filtered down to unsettled nodes before the LCS
/// runs — the chains shrink to the changed regions, which is where the
/// incremental pipeline's work-proportional-to-edit behaviour comes from.
Matching ComputeFastMatch(const Tree& t1, const Tree& t2,
                          const CriteriaEvaluator& eval,
                          const LabelSchema* schema = nullptr,
                          int fallback_limit_k = 0,
                          const Matching* seed = nullptr);

}  // namespace treediff

#endif  // TREEDIFF_CORE_FAST_MATCH_H_
