#ifndef TREEDIFF_CORE_CRITERIA_H_
#define TREEDIFF_CORE_CRITERIA_H_

#include <cstddef>
#include <memory>

#include "core/compare.h"
#include "core/matching.h"
#include "tree/tree.h"
#include "tree/tree_index.h"
#include "util/budget.h"

namespace treediff {

/// Parameters of the matching criteria (Section 5.1).
struct MatchOptions {
  /// Matching Criterion 1: leaves x, y may match only if l(x) = l(y) and
  /// compare(v(x), v(y)) <= f, with 0 <= f <= 1.
  double leaf_threshold_f = 0.5;

  /// Matching Criterion 2: internal nodes x, y may match only if l(x) = l(y)
  /// and |common(x, y)| / max(|x|, |y|) > t, with 1/2 <= t <= 1.
  double internal_threshold_t = 0.6;
};

/// Evaluates the leaf and internal equality predicates of Section 5.2 over a
/// fixed pair of trees, with the instrumentation counters the Section 8
/// evaluation reports:
///
///  * `compare` invocations (r1) are counted by the ValueComparator;
///  * partner checks (r2) — the integer comparisons performed while
///    intersecting leaf descendants for |common(x, y)| — are counted here.
///
/// All per-tree precomputation (leaf counts, ancestry intervals, the leaf
/// sequence) is served by one TreeIndex per tree. In the pipeline those
/// indexes live in the DiffContext and are borrowed; the legacy tree-pair
/// constructor builds and owns a private pair for standalone use. Each
/// |common(x, y)| reads the contiguous leaf range of x from the T1 index and
/// checks each leaf's partner for containment under y in O(1).
///
/// Both trees must share one LabelTable and must not be mutated while the
/// evaluator is alive.
class CriteriaEvaluator {
 public:
  /// Standalone form: builds and owns a TreeIndex per tree. `budget`, when
  /// non-null, is charged one comparison per compare() call and per partner
  /// check; it must outlive the evaluator.
  CriteriaEvaluator(const Tree& t1, const Tree& t2,
                    const ValueComparator* comparator, MatchOptions options,
                    const Budget* budget = nullptr);

  /// Pipeline form: borrows the DiffContext's per-tree indexes (which must
  /// outlive the evaluator).
  CriteriaEvaluator(const TreeIndex& index1, const TreeIndex& index2,
                    const ValueComparator* comparator, MatchOptions options,
                    const Budget* budget = nullptr);

  /// Matching Criterion 1 for a leaf pair (x in T1, y in T2).
  bool LeafEqual(NodeId x, NodeId y) const;

  /// Matching Criterion 2 for an internal pair (x in T1, y in T2), given the
  /// leaf matches recorded in `m` so far.
  bool InternalEqual(NodeId x, NodeId y, const Matching& m) const;

  /// |common(x, y)| under matching `m`: the number of matched leaf pairs
  /// (w, z) with w under x and z under y.
  int CommonLeaves(NodeId x, NodeId y, const Matching& m) const;

  /// |x| for T1 / T2 nodes (number of leaf descendants; a leaf counts itself).
  int LeafCount1(NodeId x) const { return index1_->LeafCount(x); }
  int LeafCount2(NodeId y) const { return index2_->LeafCount(y); }

  /// The per-tree indexes this evaluator reads (borrowed or owned).
  const TreeIndex& index1() const { return *index1_; }
  const TreeIndex& index2() const { return *index2_; }

  const MatchOptions& options() const { return options_; }
  const ValueComparator& comparator() const { return *comparator_; }

  /// Number of compare() invocations so far (r1).
  size_t compare_calls() const { return comparator_->calls(); }

  /// Number of partner checks so far (r2).
  size_t partner_checks() const { return partner_checks_; }

  const Budget* budget() const { return budget_; }

 private:
  std::unique_ptr<TreeIndex> owned_index1_;
  std::unique_ptr<TreeIndex> owned_index2_;
  const TreeIndex* index1_;
  const TreeIndex* index2_;
  const Tree& t1_;
  const Tree& t2_;
  const ValueComparator* comparator_;
  MatchOptions options_;
  const Budget* budget_;
  mutable size_t partner_checks_ = 0;
};

}  // namespace treediff

#endif  // TREEDIFF_CORE_CRITERIA_H_
