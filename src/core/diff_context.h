#ifndef TREEDIFF_CORE_DIFF_CONTEXT_H_
#define TREEDIFF_CORE_DIFF_CONTEXT_H_

#include <memory>

#include "core/compare.h"
#include "core/cost_model.h"
#include "core/criteria.h"
#include "core/matching.h"
#include "tree/schema.h"
#include "tree/tree.h"
#include "tree/tree_index.h"
#include "util/budget.h"

namespace treediff {

/// The rungs of the degradation ladder, best first. DiffTrees starts at
/// DiffOptions::start_rung and steps DOWN whenever the budget exhausts, so a
/// budgeted call always returns OK with *some* conforming script rather than
/// failing on a large or adversarial input:
///
///  * kOptimalZs — the Zhang-Shasha optimal baseline (Section 2). Opt-in:
///    O(n^2 log^2 n) time and an O(n^2) DP table. Skipped up front when the
///    budget's explicit caps cannot possibly fit its cost.
///  * kFastMatch — the paper's two-phase method: the criteria-based matcher
///    (FastMatch, or Match when use_fast_match = false) + EditScript. The
///    default rung; with no budget this is exactly the pre-budget pipeline.
///  * kKeyedStructural — ComputeStructuralMatch: exact-subtree hashing plus
///    label/value bucketing, O(n log n), no value comparisons. Runs without
///    consulting the (already exhausted) budget.
///  * kTopLevelReplace — root-only matching: the script deletes every old
///    node and inserts every new one. O(n), the rung of last resort.
///
/// Each rung is implemented by a Matcher (see matcher.h); MatcherForRung
/// maps a rung to its implementation.
enum class DiffRung {
  kOptimalZs = 0,
  kFastMatch = 1,
  kKeyedStructural = 2,
  kTopLevelReplace = 3,
};

/// "OptimalZs", "FastMatch", "KeyedStructural", or "TopLevelReplace".
const char* DiffRungName(DiffRung rung);

/// How the share-map pre-pass (core/share_map.h) runs before the matcher
/// ladder. The pre-pass wholesale-matches identical subtrees so the
/// matchers and the script generator only work the unsettled remainder:
///
///  * kOff — no pre-pass; the matchers solve the whole trees (the exact
///    pre-share pipeline, byte-stable with it).
///  * kReference — the pre-pass decision rule evaluated by direct subtree
///    comparison (no fingerprint index). O(n^2) worst case; exists as the
///    verification baseline the pruned path is byte-compared against.
///  * kIndexed — the same decision rule answered through the per-diff
///    share-map (combined subtree fingerprints -> document-order node
///    lists, every candidate re-verified by actual subtree comparison).
///    Produces the identical matching to kReference by construction —
///    identical subtrees always share a fingerprint and bucket lists
///    preserve document order — at O(n + shared bytes) cost.
enum class ShareMode { kOff, kReference, kIndexed };

/// Options controlling the end-to-end change-detection pipeline.
struct DiffOptions {
  /// Matching Criterion 1 threshold f (leaves; 0 <= f <= 1).
  double leaf_threshold_f = 0.5;

  /// Matching Criterion 2 threshold t (internal nodes; 1/2 <= t <= 1). The
  /// paper's "match threshold" parameter, swept in Table 1.
  double internal_threshold_t = 0.6;

  /// Use Algorithm FastMatch (Section 5.3); when false, the simple Algorithm
  /// Match (Section 5.2) is used instead.
  bool use_fast_match = true;

  /// Run the Section 8 post-processing pass that repairs mismatches caused
  /// by Matching Criterion 3 violations.
  bool post_process = true;

  /// Run the context-completion pass (see CompleteContextMatching): under
  /// matched parents, pair leftover same-label children in order so short
  /// data values ("<price>12</price>" -> "<price>10</price>") surface as
  /// updates rather than delete+insert. Recommended for data-bearing XML;
  /// off by default to keep the paper's document behaviour.
  bool complete_context = false;

  /// Comparator for leaf values; when null, a WordLcsComparator owned by the
  /// DiffContext is used (the LaDiff sentence metric, Section 7).
  const ValueComparator* comparator = nullptr;

  /// Optional label schema; when set, FastMatch processes label chains in
  /// ascending rank order (deterministic and cache-friendly for documents).
  const LabelSchema* schema = nullptr;

  /// Optional general cost model (Section 3.2): prices inserts, deletes,
  /// and moves per node; null = the paper's unit costs. Affects the script
  /// cost accounting, not which operations are chosen.
  const CostModel* cost_model = nullptr;

  /// The Section 9 A(k) optimality/efficiency knob: bound on candidates
  /// examined per node in FastMatch's quadratic fallback (0 = exhaustive).
  /// Smaller values cap the worst case; out-of-order matches beyond the
  /// window are then represented as delete+insert instead of moves.
  int fallback_limit_k = 0;

  /// Optional pre-built indexes over the trees being diffed (the service's
  /// TreeCache hands out warmed indexes over frozen cached trees). When
  /// non-null and actually indexing the tree passed to DiffTrees, the
  /// DiffContext borrows the index instead of building its own — repeated
  /// diffs against a hot base skip the per-tree traversal precompute
  /// entirely. A borrowed index must outlive the call; for cross-thread
  /// sharing it must be warmed (TreeIndex::WarmAll) and its tree frozen.
  const TreeIndex* index1 = nullptr;
  const TreeIndex* index2 = nullptr;

  /// Optional resource budget (deadline / node / comparison / arena caps).
  /// Null means unlimited — the exact pre-budget pipeline, bit-identical
  /// outputs. Non-null makes DiffTrees degrade down the DiffRung ladder on
  /// exhaustion instead of running unbounded; the taken rung and counters
  /// are returned in DiffResult::report. The budget must outlive the call
  /// and must not be shared with a concurrent pipeline invocation.
  const Budget* budget = nullptr;

  /// Where on the ladder to start. The default, kFastMatch, is the paper's
  /// pipeline; kOptimalZs buys the optimal-baseline script when the budget
  /// affords it; the lower rungs force a cheap match up front.
  DiffRung start_rung = DiffRung::kFastMatch;

  /// Share-map pre-pass mode (see ShareMode). kOff preserves the exact
  /// pre-share pipeline; kIndexed is the incremental fast path. The
  /// pre-pass runs uncharged (its work is bounded, like the low ladder
  /// rungs) but is skipped entirely when the budget is already exhausted.
  ShareMode share_mode = ShareMode::kOff;

  /// A phase-1 matching to reuse verbatim: the matcher ladder is skipped
  /// and script generation runs directly on a copy of this matching. The
  /// caller asserts it was produced by DiffTrees over these same two trees
  /// (same node-id spaces) — the DiffService's matching cache replays a
  /// prior run's matching when the same (fingerprint1, fingerprint2) pair
  /// is served again, making the re-diff byte-identical by construction.
  /// Must outlive the call. Ignored when null.
  const Matching* reuse_matching = nullptr;
};

/// Everything one DiffTrees invocation shares across its stages: the two
/// input trees with one TreeIndex each (built once, consumed by matching,
/// criteria evaluation, Zhang-Shasha, and script generation), the resolved
/// comparator, the criteria evaluator with its instrumentation counters,
/// and the caller's options/budget/cost model. Matchers receive a const
/// DiffContext& (see matcher.h) rather than raw trees, so no stage redoes
/// per-tree traversal precomputation.
///
/// The context borrows `t1`, `t2`, and everything referenced by `options`;
/// all must outlive it. One context is not thread-safe (its counters and
/// any *owned* indexes mutate under the hood), but two contexts over the
/// same frozen trees with warmed borrowed indexes (DiffOptions::index1/2)
/// may run concurrently — the arrangement the DiffService relies on.
class DiffContext {
 public:
  DiffContext(const Tree& t1, const Tree& t2, const DiffOptions& options);

  const Tree& t1() const { return t1_; }
  const Tree& t2() const { return t2_; }
  const DiffOptions& options() const { return options_; }
  const TreeIndex& index1() const { return *index1_; }
  const TreeIndex& index2() const { return *index2_; }

  /// The caller's comparator, or the owned default WordLcsComparator.
  const ValueComparator& comparator() const { return *comparator_; }

  /// The comparator's cache counters as they stood when this context was
  /// built. A caller-supplied comparator accumulates cache traffic across
  /// diffs; per-run reporting subtracts this baseline so DiffResult::report
  /// never bleeds a previous run's hits into the next (satellite of the
  /// shared-comparator serving path).
  const ValueComparator::CacheStats& comparator_baseline() const {
    return comparator_baseline_;
  }

  const CriteriaEvaluator& evaluator() const { return evaluator_; }

  const Budget* budget() const { return options_.budget; }

 private:
  const Tree& t1_;
  const Tree& t2_;
  DiffOptions options_;
  std::unique_ptr<WordLcsComparator> owned_comparator_;
  const ValueComparator* comparator_;
  ValueComparator::CacheStats comparator_baseline_;
  // Built here unless DiffOptions::index1/index2 lend pre-built ones (the
  // tree-cache fast path); index1_/index2_ point at whichever is in use.
  std::unique_ptr<TreeIndex> owned_index1_;
  std::unique_ptr<TreeIndex> owned_index2_;
  const TreeIndex* index1_;
  const TreeIndex* index2_;
  CriteriaEvaluator evaluator_;
};

}  // namespace treediff

#endif  // TREEDIFF_CORE_DIFF_CONTEXT_H_
